//! Quickstart: build a small counterfeit-luxury SEO world, run the paper's
//! measurement pipeline over a short crawl window, and print what it found.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use search_seizure::analysis::{ecosystem, interventions};
use search_seizure::{Study, StudyConfig};
use ss_eco::ScenarioConfig;

fn main() {
    // A tiny world keeps this example fast; swap in `ScenarioConfig::small`
    // or `::paper` for bigger runs.
    let mut cfg = StudyConfig::new(ScenarioConfig::tiny(2014));
    cfg.monitored_terms = 6;
    cfg.crawler.serp_depth = 30;
    cfg.crawl_end = cfg.crawl_start + 28; // four weeks of daily crawling

    println!("Building the world and running a 4-week study…");
    let out = Study::new(cfg).run().expect("study runs");

    let db = &out.crawler.db;
    println!("\n== crawl summary ==");
    println!("PSR observations:        {}", db.psrs.len());
    println!(
        "poisoned doorway domains: {}",
        db.poisoned_domains().count()
    );
    println!("counterfeit stores found: {}", db.detected_stores().count());
    println!("test orders created:      {}", out.sampler.orders_created);
    println!("purchases completed:      {}", out.transactions.len());
    if let Some(s) = &out.supplier {
        println!("supplier records scraped: {}", s.records.len());
    }

    println!("\n== Table 1 (measured, paper values in parentheses) ==");
    print!("{}", ecosystem::table1(&out).to_markdown());

    println!("\n== campaigns (top of Table 2) ==");
    let t2 = ecosystem::table2(&out);
    for row in t2.rows.iter().take(8) {
        println!(
            "{:<16} doorways={:<4} stores={:<3} peak={:?} days",
            row.name, row.doorways, row.stores, row.peak_days
        );
    }

    println!("\n== interventions ==");
    let labels = interventions::labels(&out);
    println!(
        "hacked-label coverage: {:.2}% of {} PSRs",
        labels.coverage * 100.0,
        labels.total_psrs
    );
    let seizures = interventions::seizures(&out);
    match seizures.firms.is_empty() {
        true => println!("no seizures observed in this short window"),
        false => print!("{}", seizures.to_markdown()),
    }
}

//! The §6 recommendations as an experiment: sweep intervention
//! aggressiveness (search-engine detection coverage/latency and seizure
//! cadence) and measure the impact on poisoned-result exposure and
//! counterfeit order volume.
//!
//! ```text
//! cargo run --release --example intervention_whatif
//! ```

use search_seizure::{Study, StudyConfig, StudyOutput};

/// One sweep point's outcome.
struct Outcome {
    label: &'static str,
    psr_rate: f64,
    orders: u64,
    seized_stores: u64,
}

fn measure(label: &'static str, cfg: StudyConfig) -> Outcome {
    let out: StudyOutput = Study::new(cfg).run().expect("study runs");
    let seen: u64 = out
        .crawler
        .db
        .daily_counts
        .iter()
        .map(|c| u64::from(c.total_seen))
        .sum();
    let psr_rate = out.crawler.db.psrs.len() as f64 / seen.max(1) as f64;
    // True counterfeit order volume over the crawl window — the quantity
    // interventions exist to suppress (readable here because we own the
    // simulator; the paper could only estimate it).
    let orders: u64 = out.world.stores.iter().map(|s| s.orders_accrued).sum();
    let seized_stores = out
        .crawler
        .db
        .store_info
        .values()
        .filter(|s| s.seizure.is_some())
        .count() as u64;
    Outcome {
        label,
        psr_rate,
        orders,
        seized_stores,
    }
}

fn base_cfg(seed: u64) -> StudyConfig {
    let mut cfg = StudyConfig::fast_test(seed);
    cfg.crawl_end = cfg.crawl_start + 45;
    cfg
}

fn main() {
    let seed = 4242;
    println!("Sweeping intervention policies over identical 45-day worlds…\n");

    let mut outcomes = Vec::new();

    // Baseline: the 2013 status quo the paper measured.
    outcomes.push(measure(
        "status quo (paper's 2013 policies)",
        base_cfg(seed),
    ));

    // Search: detect everything, fast, and demote hard (§5.2.1's "search
    // rank penalization would need to be even more aggressive").
    let mut cfg = base_cfg(seed);
    cfg.scenario.search_policy.detect_prob = 0.9;
    cfg.scenario.search_policy.delay_min = 1;
    cfg.scenario.search_policy.delay_max = 4;
    cfg.scenario.search_policy.demote_penalty = 1.0;
    outcomes.push(measure(
        "aggressive search (90% coverage, 1-4d, hard demote)",
        cfg,
    ));

    // Labels only, no demotion: the warning-label policy in isolation.
    let mut cfg = base_cfg(seed);
    cfg.scenario.search_policy.detect_prob = 0.9;
    cfg.scenario.search_policy.delay_min = 1;
    cfg.scenario.search_policy.delay_max = 4;
    cfg.scenario.search_policy.demote_penalty = 0.0;
    outcomes.push(measure("labels only (no demotion)", cfg));

    // Seizure-heavy: brands file twice as often and react to younger
    // stores (§5.3.2's "far more aggressive" requirement).
    let mut cfg = base_cfg(seed);
    for p in &mut cfg.scenario.seizure_policies {
        p.case_interval = (p.case_interval / 2).max(2);
        p.target_lifetime /= 2;
    }
    outcomes.push(measure(
        "aggressive seizures (2x cadence, younger targets)",
        cfg,
    ));

    // Follow the money (§4.3.2's future work, implemented here): all three
    // settling processors drop counterfeit merchants mid-window.
    let mut cfg = base_cfg(seed);
    cfg.scenario.payment_policy = ss_eco::scenario::PaymentPolicy {
        enabled: true,
        start_day: cfg.crawl_start.day_index() + 15,
        blocked: vec!["realypay".into(), "mallpayment".into(), "globalbill".into()],
        migration_days: None,
    };
    outcomes.push(measure(
        "payment intervention (all processors, no migration)",
        cfg,
    ));

    // Everything at once.
    let mut cfg = base_cfg(seed);
    cfg.scenario.search_policy.detect_prob = 0.9;
    cfg.scenario.search_policy.delay_min = 1;
    cfg.scenario.search_policy.delay_max = 4;
    cfg.scenario.search_policy.demote_penalty = 1.0;
    for p in &mut cfg.scenario.seizure_policies {
        p.case_interval = (p.case_interval / 2).max(2);
        p.target_lifetime /= 2;
    }
    outcomes.push(measure("combined", cfg));

    let base_orders = outcomes[0].orders.max(1);
    println!(
        "{:<52} {:>9} {:>12} {:>8}",
        "policy", "PSR rate", "orders (Δ%)", "seized"
    );
    for o in &outcomes {
        let delta = (o.orders as f64 / base_orders as f64 - 1.0) * 100.0;
        println!(
            "{:<52} {:>8.2}% {:>9} ({delta:+.1}%) {:>6}",
            o.label,
            o.psr_rate * 100.0,
            o.orders,
            o.seized_stores,
        );
    }

    println!(
        "\nReading: demotion-backed search intervention suppresses exposure far \
         more than labels alone; seizure cadence without coverage barely moves \
         order volume (the paper's §6 conclusion); and cutting payment \
         processing — the intervention the paper flags as future work — \
         collapses revenue without touching search at all."
    );
}

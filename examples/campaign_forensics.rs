//! Campaign forensics: run the §4.2 identification pipeline, then show
//! what the L1 models actually learned — the handful of HTML features
//! that fingerprint each campaign's storefront template.
//!
//! ```text
//! cargo run --release --example campaign_forensics
//! ```

use search_seizure::analysis::validation;
use search_seizure::{Study, StudyConfig};

fn main() {
    let mut cfg = StudyConfig::fast_test(77);
    cfg.crawl_end = cfg.crawl_start + 21;
    println!("Crawling three weeks and training the campaign classifier…\n");
    let out = Study::new(cfg).run().expect("study runs");

    let v = validation::classifier(&out);
    println!("labeled set:              {} pages", v.labeled);
    println!("expert consultations:     {}", v.expert_queries);
    println!(
        "cross-validated accuracy: {:.1}% (chance {:.1}%)",
        v.cv_accuracy * 100.0,
        v.chance * 100.0
    );
    println!(
        "ground-truth precision:   {:.1}%   recall: {:.1}%",
        v.truth_precision * 100.0,
        v.truth_recall * 100.0
    );

    // Attributed stores per campaign.
    println!("\n== attributed storefronts ==");
    let mut per_class: Vec<(String, Vec<String>)> = Vec::new();
    for (id, class) in &out.attribution.store_class {
        let Some(c) = class else { continue };
        let name = out.attribution.class_names[*c].clone();
        let domain = out.crawler.db.domains.resolve(*id).to_owned();
        match per_class.iter_mut().find(|(n, _)| *n == name) {
            Some((_, list)) => list.push(domain),
            None => per_class.push((name, vec![domain])),
        }
    }
    per_class.sort_by_key(|c| std::cmp::Reverse(c.1.len()));
    for (name, domains) in per_class.iter().take(6) {
        println!(
            "{:<16} {} store(s): {}",
            name,
            domains.len(),
            domains.join(", ")
        );
    }

    // The interpretability payoff: campaign fingerprints.
    println!("\n== template fingerprints (top positive L1 weights) ==");
    for (name, _) in per_class.iter().take(4) {
        let Some(c) = out.attribution.class_index(name) else {
            continue;
        };
        let feats = out.attribution.top_features_of(c, 5);
        if feats.is_empty() {
            continue;
        }
        println!("{name}:");
        for (token, weight) in feats {
            println!("    {weight:>6.3}  {token}");
        }
    }

    let unknown = out
        .attribution
        .store_class
        .values()
        .filter(|c| c.is_none())
        .count();
    println!(
        "\n{} of {} detected stores left unattributed (the long tail the paper \
         could not name either).",
        unknown,
        out.attribution.store_class.len()
    );
}

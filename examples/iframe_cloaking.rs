//! Figure 1, live: the same doorway URL fetched as a search-engine crawler
//! and as a search-referred user, showing why iframe cloaking defeats
//! fetch-and-diff detection and requires a rendering crawler.
//!
//! ```text
//! cargo run --release --example iframe_cloaking
//! ```

use ss_crawl::{dagger, vangogh};
use ss_eco::{ScenarioConfig, World};
use ss_types::{SimDate, Url};
use ss_web::cloak::CloakMode;
use ss_web::http::{Fetcher, Request};

fn main() {
    let mut world = World::build(ScenarioConfig::tiny(99)).expect("world builds");
    world.run_until(SimDate::from_day_index(ss_types::CRAWL_START_DAY + 5));
    let day = world.day;

    // Find a live doorway from an iframe-cloaking campaign.
    let (campaign_name, domain, term) = world
        .campaigns
        .iter()
        .filter(|c| matches!(c.cloak, CloakMode::Iframe { .. }))
        .flat_map(|c| c.doorways.iter().map(move |d| (c, d)))
        .find(|(_, d)| d.is_live(day))
        .map(|(c, d)| {
            (
                c.name.to_owned(),
                d.domain,
                world.term_text(d.terms[0]).to_owned(),
            )
        })
        .expect("an iframe-cloaking doorway is live");

    let url = Url::root(world.domains.get(domain).name.clone());
    println!("Doorway {url} (campaign {campaign_name}), targeted term: {term:?}\n");

    // 1. Fetch as Googlebot.
    let (bot, _) = world.fetch(&Request::crawler(url.clone()));
    println!(
        "As Googlebot:        {} bytes, status {}",
        bot.body.len(),
        bot.status
    );

    // 2. Fetch as a search-referred browser.
    let (user, _) = world.fetch(&Request::browser_from(
        url.clone(),
        dagger::google_referrer(&term),
    ));
    println!(
        "As search user:      {} bytes, status {}",
        user.body.len(),
        user.status
    );
    println!("Bytes identical:     {}", bot.body == user.body);

    // 3. Dagger (fetch-and-diff) is blind to this.
    let dagger_verdict = dagger::check(&world, &url, &term, 6);
    println!(
        "\nDagger verdict:      {:?}  ← the §3.1.1 blind spot",
        dagger_verdict.cloaked
    );

    // 4. VanGogh renders the page — and catches the payload.
    let vangogh_verdict = vangogh::check(&world, &url, &term, 6);
    println!("VanGogh verdict:     {:?}", vangogh_verdict.cloaked);
    if let Some(landing) = &vangogh_verdict.landing {
        println!("Store behind iframe: {landing}");
    }

    // 5. Show the payload itself.
    let doc = ss_web::Document::parse(&user.body);
    if let Some(script) = doc.scripts().first() {
        println!("\nEmbedded payload (first lines):");
        for line in script.lines().take(6) {
            println!("    {line}");
        }
    }
}

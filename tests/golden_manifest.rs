//! Golden snapshot of the run manifest's deterministic half.
//!
//! A fixed-seed fast-test study must reproduce the checked-in headline
//! observables — PSR count, seizure-notice count, estimated orders per
//! campaign — and the deterministic metric registry, byte for byte. Any
//! behavioural drift in the crawl, the ecosystem, the sampler, or
//! attribution shows up here as a diff against
//! `tests/golden/manifest_small.json`.
//!
//! When a change *intends* to shift behaviour, regenerate the snapshot:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p search-seizure --test golden_manifest
//! ```
//!
//! then commit the updated JSON alongside the change. The golden file
//! deliberately excludes every wall-clock field (span timings, per-day
//! elapsed milliseconds): only what the run *did* is pinned, never how
//! fast it did it.

use search_seizure::{Study, StudyConfig};
use serde::{Serialize as _, Value};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/manifest_small.json"
);
const GOLDEN_SEED: u64 = 101;

/// The pinned projection: headline + deterministic metrics, no clocks.
fn golden_value() -> Value {
    golden_value_at_threads(1)
}

/// Same projection with every worker pool (crawl, tick, analysis scan)
/// pointed at `threads`.
fn golden_value_at_threads(threads: usize) -> Value {
    let mut cfg = StudyConfig::fast_test(GOLDEN_SEED);
    cfg.set_threads(threads);
    let out = Study::new(cfg).run().expect("study runs");
    Value::Map(vec![
        ("seed".into(), Value::UInt(GOLDEN_SEED)),
        (
            "window".into(),
            Value::Seq(vec![
                Value::UInt(u64::from(out.manifest.window.0)),
                Value::UInt(u64::from(out.manifest.window.1)),
            ]),
        ),
        ("headline".into(), out.manifest.headline.serialize()),
        ("metrics".into(), out.metrics.metrics_value()),
    ])
}

#[test]
fn manifest_matches_golden_snapshot() {
    let rendered = serde_json::to_string_pretty(&golden_value()).expect("manifest renders") + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden file");
        eprintln!("golden manifest regenerated at {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden file {GOLDEN_PATH} ({e}); \
             regenerate with UPDATE_GOLDEN=1 cargo test --test golden_manifest"
        )
    });
    if rendered != golden {
        // Line-level first-diff beats dumping two multi-KB documents.
        let diff_line = rendered
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("first diff at line {}: {a:?} vs golden {b:?}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "documents diverge in length: {} vs golden {} lines",
                    rendered.lines().count(),
                    golden.lines().count()
                )
            });
        panic!(
            "run manifest drifted from the golden snapshot ({diff_line}). \
             If the behaviour change is intentional, regenerate with \
             UPDATE_GOLDEN=1 cargo test --test golden_manifest and commit \
             the new {GOLDEN_PATH}."
        );
    }
}

/// Thread-count invariance, pinned to the same bytes: every worker pool
/// at 2 and at 8 threads must reproduce the golden projection exactly.
#[test]
fn golden_projection_is_bit_identical_across_thread_counts() {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return; // the snapshot is being rewritten by the test above
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden file {GOLDEN_PATH} ({e}); \
             regenerate with UPDATE_GOLDEN=1 cargo test --test golden_manifest"
        )
    });
    for threads in [2usize, 8] {
        let rendered = serde_json::to_string_pretty(&golden_value_at_threads(threads))
            .expect("renders")
            + "\n";
        assert_eq!(
            rendered, golden,
            "golden projection diverged at {threads} threads"
        );
    }
}

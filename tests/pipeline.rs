//! End-to-end integration: run the complete study on a small world and
//! check that every dataset the paper collected exists and is coherent.

use search_seizure::analysis::{ecosystem, figures};
use search_seizure::{Study, StudyConfig};

fn study() -> search_seizure::StudyOutput {
    Study::new(StudyConfig::fast_test(101))
        .run()
        .expect("study runs")
}

#[test]
fn tables_and_figures_regenerate() {
    let out = study();

    // Table 1: rows per monitored vertical, non-trivial counts.
    let t1 = ecosystem::table1(&out);
    assert_eq!(t1.rows.len(), out.monitored.len());
    assert!(t1.total.0 > 0, "no PSRs counted");
    assert!(t1.total.1 > 0, "no doorways counted");
    assert!(t1.total.2 > 0, "no stores counted");
    assert!(t1.attributed_psr_fraction > 0.0 && t1.attributed_psr_fraction <= 1.0);
    let md = t1.to_markdown();
    assert!(md.contains("| Vertical |"));

    // Table 2: campaigns with doorway counts and peaks.
    let t2 = ecosystem::table2(&out);
    assert!(!t2.rows.is_empty(), "no campaigns in Table 2");
    assert!(t2.rows.windows(2).all(|w| w[0].doorways >= w[1].doorways));
    assert!(t2.mean_peak_days >= 0.0);

    // Figure 2 for the first vertical.
    let f2 = figures::fig2(&out, 0, 4);
    assert!(f2.poisoned_pct.min_max().is_some());
    let csv = f2.to_csv();
    assert!(csv.lines().count() > 2);
    assert!(csv.starts_with("day,poisoned_pct"));

    // Figure 3: one row per vertical, envelopes ordered.
    let (rows, series) = figures::fig3(&out);
    assert_eq!(rows.len(), out.monitored.len());
    for r in &rows {
        assert!(r.top10.0 <= r.top10.1);
        assert!(r.top100.0 <= r.top100.1);
    }
    let text = figures::fig3_text(&rows, &series, 24);
    assert!(text.contains(&rows[0].name));
}

#[test]
fn ecosystem_is_skewed_and_churn_is_low() {
    let out = study();
    // §5.1: a handful of large campaigns should dominate attributed PSRs.
    let top5 = ecosystem::top_k_psr_share(&out, 5);
    let top_all = ecosystem::top_k_psr_share(&out, usize::MAX);
    assert!((top_all - 1.0).abs() < 1e-9);
    assert!(top5 > 0.5, "top-5 campaigns only carry {top5} of PSRs");

    // §4.1.2: daily churn settles low after warm-up.
    let churn = ecosystem::mean_daily_churn(&out);
    assert!(churn < 0.4, "mean churn {churn}");
}

#[test]
fn order_side_is_consistent_with_search_side() {
    let out = study();
    // Stores under order monitoring were all detected by the crawler.
    for domain in out.sampler.stores.keys() {
        assert!(
            out.crawler.db.domains.get(domain).is_some(),
            "monitored store {domain} never seen by the crawler"
        );
    }
    // Sampled order numbers are monotone per store.
    for mon in out.sampler.stores.values() {
        for pair in mon.samples.windows(2) {
            assert!(
                pair[1].order_number > pair[0].order_number,
                "order numbers must increase at {}",
                mon.domain
            );
        }
    }
}

#[test]
fn study_output_is_identical_across_crawl_thread_counts() {
    // The parallel crawl fan-out must not leak scheduling into results:
    // the whole study — PSRs, orders, purchases, attribution — has to be
    // identical whether verticals are crawled serially or on 2 or 8 threads.
    let run = |threads: usize| {
        let mut cfg = StudyConfig::fast_test(101);
        cfg.crawler.threads = threads;
        Study::new(cfg).run().expect("study runs")
    };
    let base = run(1);
    for threads in [2usize, 8] {
        let out = run(threads);
        assert_eq!(
            out.crawler.db.psrs, base.crawler.db.psrs,
            "PSR log diverged at {threads} threads"
        );
        assert_eq!(
            out.sampler.orders_created, base.sampler.orders_created,
            "test-order count diverged at {threads} threads"
        );
        assert_eq!(
            out.transactions.len(),
            base.transactions.len(),
            "purchase count diverged at {threads} threads"
        );
        assert_eq!(
            out.attribution.store_class.len(),
            base.attribution.store_class.len(),
            "attribution size diverged at {threads} threads"
        );
        // Telemetry rides the same determinism rule: per-worker crawl
        // registries merge in vertical order, so the deterministic half of
        // the study's registry (counters + histograms, spans excluded)
        // renders byte-identically at any thread count.
        assert_eq!(
            out.metrics.metrics_json(),
            base.metrics.metrics_json(),
            "metric registry diverged at {threads} threads"
        );
        assert_eq!(
            out.manifest.headline.psrs, base.manifest.headline.psrs,
            "manifest headline diverged at {threads} threads"
        );
    }
}

#[test]
fn study_output_is_identical_across_tick_thread_counts() {
    // Same rule for the simulation plane: tick-stage planners draw from
    // keyed RNG streams and replay in index order, so the whole world —
    // event log, store counters, traffic, eco.* metrics — must be
    // bit-identical whether stages plan serially or on 2 or 8 workers.
    let run = |threads: usize| {
        let mut cfg = StudyConfig::fast_test(101);
        cfg.tick_threads = threads;
        Study::new(cfg).run().expect("study runs")
    };
    let base = run(1);
    let base_fp = base.world.state_fingerprint();
    for threads in [2usize, 8] {
        let out = run(threads);
        assert_eq!(
            out.world.events.all(),
            base.world.events.all(),
            "ground-truth event log diverged at {threads} tick threads"
        );
        assert_eq!(
            out.world.state_fingerprint(),
            base_fp,
            "world state diverged at {threads} tick threads"
        );
        assert_eq!(
            out.crawler.db.psrs, base.crawler.db.psrs,
            "PSR log diverged at {threads} tick threads"
        );
        assert_eq!(
            out.metrics.metrics_json(),
            base.metrics.metrics_json(),
            "metric registry diverged at {threads} tick threads"
        );
        assert_eq!(
            out.manifest.headline.psrs, base.manifest.headline.psrs,
            "manifest headline diverged at {threads} tick threads"
        );
    }
}

#[test]
fn set_threads_drives_all_planes() {
    let mut cfg = StudyConfig::fast_test(7);
    cfg.set_threads(4);
    assert_eq!(cfg.crawler.threads, 4);
    assert_eq!(cfg.tick_threads, 4);
    assert_eq!(cfg.analysis_threads, 4);
    cfg.set_threads(0); // clamped: 0 means "serial", never a dead pool
    assert_eq!(cfg.crawler.threads, 1);
    assert_eq!(cfg.tick_threads, 1);
    assert_eq!(cfg.analysis_threads, 1);
}

#[test]
fn telemetry_spans_every_stage_with_a_broad_metric_surface() {
    let study = Study::new(StudyConfig::fast_test(101));
    let stage_names = study.stage_names();
    let out = study.run().expect("study runs");

    // Every scheduled stage ran under its own span, once per study day.
    let study_days = out.window.1.days_since(out.window.0) + 1;
    for name in &stage_names {
        let span = out
            .metrics
            .span_stats(&format!("stage.{name}"))
            .unwrap_or_else(|| panic!("no span for stage {name}"));
        assert_eq!(span.count as i64, study_days, "stage {name} span count");
    }
    assert_eq!(out.manifest.stage_timings.len(), stage_names.len());

    // The registry spans all layers: crawl, ecosystem, orders, pipeline —
    // well past the 12-distinct-metric floor.
    let names = out.metrics.metric_names();
    let base_names: std::collections::HashSet<&str> = names
        .iter()
        .map(|n| n.split('{').next().expect("split never empty"))
        .collect();
    assert!(
        base_names.len() >= 12,
        "only {} distinct metrics: {base_names:?}",
        base_names.len()
    );
    for prefix in ["crawl.", "eco.", "orders.", "pipeline."] {
        assert!(
            base_names.iter().any(|n| n.starts_with(prefix)),
            "no {prefix}* metric recorded; have {base_names:?}"
        );
    }

    // Counters agree with the datasets they describe.
    assert_eq!(
        out.metrics.counter_total("crawl.psrs"),
        out.crawler.db.psrs.len() as u64
    );
    assert_eq!(
        out.metrics.counter_total("orders.samples"),
        out.sampler.orders_created as u64
    );
    assert_eq!(
        out.metrics.counter_total("pipeline.purchases"),
        out.transactions.len() as u64
    );

    // The manifest carries the per-day trace and the headline.
    assert_eq!(out.manifest.days.len() as i64, study_days);
    assert_eq!(out.manifest.headline.psrs, out.crawler.db.psrs.len() as u64);
    assert!(out.manifest.days.windows(2).all(|w| w[0].psrs <= w[1].psrs));
}

#[test]
fn supplier_ledger_matches_world_ledger() {
    let out = study();
    let ds = out.supplier.as_ref().expect("supplier scraped");
    assert_eq!(
        ds.records.len(),
        out.world.supplier.records.len(),
        "scrape should recover the full ledger"
    );
}

//! State-plane integration: checkpoint/resume equivalence, forked
//! intervention arms, and rejection of damaged checkpoints.
//!
//! The contract under test is the tentpole guarantee of the state plane:
//! a run that checkpoints and a run resumed from that checkpoint — at
//! any thread count — reproduce the uninterrupted run's deterministic
//! projection (headline + metrics, the same projection the golden
//! manifest test pins) and its final `run_fingerprint`. Wall-clock
//! fields are excluded by construction.

use search_seizure::state::{self, CheckpointError, RunState};
use search_seizure::{RunCheckpoint, RunOptions, Study, StudyConfig, StudyOutput};
use serde::{Serialize as _, Value};
use ss_types::snapshot::{encode_framed, Snapshot, SnapshotError};

/// The deterministic projection of a run: seed, window, headline, and
/// the metric registry — everything the golden manifest pins, nothing
/// wall-clock.
fn projection(out: &StudyOutput) -> String {
    let v = Value::Map(vec![
        ("seed".into(), Value::UInt(out.manifest.seed)),
        (
            "window".into(),
            Value::Seq(vec![
                Value::UInt(u64::from(out.manifest.window.0)),
                Value::UInt(u64::from(out.manifest.window.1)),
            ]),
        ),
        ("headline".into(), out.manifest.headline.serialize()),
        ("metrics".into(), out.metrics.metrics_value()),
    ]);
    serde_json::to_string_pretty(&v).expect("projection renders")
}

/// Fresh scratch directory under the system temp dir.
fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ss-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn checkpoint_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("read checkpoint dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "ssnp"))
        .collect();
    files.sort();
    files
}

/// An interrupted-and-resumed run is indistinguishable from an
/// uninterrupted one: same projection, same run fingerprint, at 1, 2,
/// and 8 threads — and the act of checkpointing itself perturbs nothing.
#[test]
fn checkpointed_resume_matches_uninterrupted_run() {
    const SEED: u64 = 81;
    let dir = temp_dir("resume");

    let base = Study::new(StudyConfig::fast_test(SEED))
        .run()
        .expect("uninterrupted run");
    let base_proj = projection(&base);
    let base_fp = base.run_fingerprint();

    // Same run, dropping a checkpoint every 6 crawl days.
    let checkpointed = Study::new(StudyConfig::fast_test(SEED))
        .run_with(RunOptions {
            resume_from: None,
            checkpoint_every: Some(6),
            checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
        })
        .expect("checkpointing run");
    assert_eq!(
        projection(&checkpointed),
        base_proj,
        "checkpointing must not perturb the deterministic projection"
    );
    assert_eq!(checkpointed.run_fingerprint(), base_fp);

    // fast_test covers 15 crawl days; every-6 drops two checkpoints.
    let files = checkpoint_files(&dir);
    assert_eq!(
        files.len(),
        2,
        "expected checkpoints at +6 and +12 days, found {files:?}"
    );

    // Resume the earliest checkpoint at several worker-pool sizes: the
    // finished run must land on the identical projection + fingerprint.
    for threads in [1usize, 2, 8] {
        let mut cfg = StudyConfig::fast_test(SEED);
        cfg.set_threads(threads);
        let resumed = Study::new(cfg)
            .run_with(RunOptions {
                resume_from: Some(files[0].to_string_lossy().into_owned()),
                checkpoint_every: None,
                checkpoint_dir: None,
            })
            .expect("resumed run");
        assert_eq!(
            projection(&resumed),
            base_proj,
            "resumed projection diverged at {threads} threads"
        );
        assert_eq!(
            resumed.run_fingerprint(),
            base_fp,
            "run fingerprint diverged at {threads} threads"
        );
        // The resumed manifest still spans the whole window and carries
        // the pre-checkpoint day records.
        assert_eq!(resumed.manifest.window, base.manifest.window);
        assert_eq!(resumed.manifest.days.len(), base.manifest.days.len());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// One checkpoint forks into several intervention arms: the baseline arm
/// (offset 0) reproduces the original run's headline, while an arm that
/// pulls a scripted seizure into the remaining window ends in a
/// different world.
#[test]
fn forked_arms_share_one_checkpoint() {
    const SEED: u64 = 82;
    let dir = temp_dir("sweep");
    let cfg = || {
        let mut c = StudyConfig::fast_test(SEED);
        c.crawl_end = c.crawl_start + 12;
        c
    };

    let full = Study::new(cfg())
        .run_with(RunOptions {
            resume_from: None,
            checkpoint_every: Some(5),
            checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
        })
        .expect("full run");
    let files = checkpoint_files(&dir);
    assert!(!files.is_empty(), "no checkpoint written");
    let bytes = std::fs::read(&files[0]).expect("read checkpoint");

    // Arm 1: untouched fork — must reproduce the original run exactly.
    let baseline_ckpt = RunCheckpoint::decode(&bytes).expect("decode baseline arm");
    let baseline = Study::new(cfg())
        .resume(baseline_ckpt)
        .expect("baseline arm runs");
    assert_eq!(
        format!("{:?}", baseline.manifest.headline),
        format!("{:?}", full.manifest.headline),
        "baseline arm must reproduce the original headline"
    );
    assert_eq!(baseline.run_fingerprint(), full.run_fingerprint());

    // Arm 2: pull the scripted PHP?P= seizure (day 219) into the
    // remaining window. The fork diverges from the baseline world.
    let mut shifted_ckpt = RunCheckpoint::decode(&bytes).expect("decode shifted arm");
    shifted_ckpt.world.shift_scripted_seizures(-80);
    let shifted = Study::new(cfg()).resume(shifted_ckpt).expect("shifted arm");
    assert_ne!(
        shifted.run_fingerprint(),
        baseline.run_fingerprint(),
        "shifting a seizure into the window must change the outcome"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Damaged, mistyped, or mismatched checkpoints are rejected with typed
/// errors — never a panic, never a silently wrong world.
#[test]
fn damaged_checkpoints_are_rejected_with_typed_errors() {
    let dir = temp_dir("reject");
    let cfg = StudyConfig::fast_test(83);
    // A day-0 checkpoint is enough: build + warmup, no crawl days.
    let state = RunState::build(&cfg).expect("state builds");
    let path = dir.join("checkpoint-day0131.ssnp");
    state::save_checkpoint(&state, &cfg, &path).expect("save");
    let bytes = std::fs::read(&path).expect("read back");
    assert!(state::load_checkpoint(&path).is_ok());

    // Truncations anywhere: typed error, never panic.
    for n in [0usize, 3, 11, bytes.len() / 2, bytes.len() - 1] {
        let p = dir.join("truncated.ssnp");
        std::fs::write(&p, &bytes[..n]).expect("write");
        match state::load_checkpoint(&p) {
            Err(CheckpointError::Snapshot(
                SnapshotError::Truncated | SnapshotError::IntegrityMismatch,
            )) => {}
            Err(other) => panic!("truncated at {n}: unexpected error {other:?}"),
            Ok(_) => panic!("truncated at {n}: checkpoint accepted"),
        }
    }

    // A flipped byte in the middle fails the integrity hash.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x20;
    let p = dir.join("flipped.ssnp");
    std::fs::write(&p, &flipped).expect("write");
    match state::load_checkpoint(&p) {
        Err(e) => assert_eq!(
            e,
            CheckpointError::Snapshot(SnapshotError::IntegrityMismatch)
        ),
        Ok(_) => panic!("flipped byte accepted"),
    }

    // A frame from a future format version is refused, not misread.
    let p = dir.join("future.ssnp");
    let future = encode_framed(RunCheckpoint::TAG, RunCheckpoint::VERSION + 1, |_| {});
    std::fs::write(&p, &future).expect("write");
    match state::load_checkpoint(&p) {
        Err(CheckpointError::Snapshot(SnapshotError::WrongVersion { tag, .. })) => {
            assert_eq!(tag, RunCheckpoint::TAG);
        }
        Err(other) => panic!("expected WrongVersion, got {other:?}"),
        Ok(_) => panic!("future-version frame accepted"),
    }

    // Some other subsystem's frame is not a run checkpoint.
    let p = dir.join("wrong-tag.ssnp");
    std::fs::write(&p, encode_framed("psr-store", 1, |_| {})).expect("write");
    match state::load_checkpoint(&p) {
        Err(CheckpointError::Snapshot(SnapshotError::WrongTag { expected, .. })) => {
            assert_eq!(expected, RunCheckpoint::TAG);
        }
        Err(other) => panic!("expected WrongTag, got {other:?}"),
        Ok(_) => panic!("foreign frame accepted"),
    }

    // Not a snapshot file at all.
    let p = dir.join("not-a-snapshot.ssnp");
    std::fs::write(&p, b"definitely not a checkpoint").expect("write");
    match state::load_checkpoint(&p) {
        Err(e) => assert_eq!(e, CheckpointError::Snapshot(SnapshotError::BadMagic)),
        Ok(_) => panic!("non-snapshot bytes accepted"),
    }

    // Missing file.
    assert!(matches!(
        state::load_checkpoint(&dir.join("no-such-file.ssnp")),
        Err(CheckpointError::Io(_))
    ));

    // Resuming under a semantically different config is refused, and the
    // study-level API surfaces it as a typed `Error::Checkpoint`.
    match Study::new(StudyConfig::fast_test(84)).run_with(RunOptions {
        resume_from: Some(path.to_string_lossy().into_owned()),
        checkpoint_every: None,
        checkpoint_dir: None,
    }) {
        Err(ss_types::Error::Checkpoint(msg)) => {
            assert!(msg.contains("different study config"), "message: {msg}");
        }
        Err(other) => panic!("expected Error::Checkpoint, got {other:?}"),
        Ok(_) => panic!("wrong config must not resume"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}

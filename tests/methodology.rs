//! Methodology validation against ground truth: the experiments the paper
//! ran on samples (§4.1.1, §4.1.3, §4.2.2), run exhaustively here because
//! the reproduction owns the world.

use search_seizure::analysis::validation;
use search_seizure::{Study, StudyConfig};

fn study() -> search_seizure::StudyOutput {
    Study::new(StudyConfig::fast_test(103))
        .run()
        .expect("study runs")
}

#[test]
fn detection_has_no_false_positives_and_few_false_negatives() {
    let out = study();
    let v = validation::detection(&out);
    // §4.1 argues cloaking removes false positives; our detector inherits
    // that property (legit sites never cloak by construction, so any FP is
    // a pipeline bug).
    assert_eq!(v.false_positives, 0, "false positives: {v:?}");
    assert!(v.true_positives > 0);
    // §4.1.3 found a 1.2% FN rate; allow a loose ceiling at tiny scale.
    assert!(v.fn_rate < 0.25, "FN rate {}", v.fn_rate);
    // Store detection: everything flagged is truly a storefront.
    assert_eq!(v.store_false_positives, 0, "store FPs");
    assert!(v.store_true_positives > 0);
}

#[test]
fn classifier_beats_chance_by_a_wide_margin() {
    let out = study();
    let v = validation::classifier(&out);
    assert!(
        v.cv_accuracy > 10.0 * v.chance,
        "cv {} vs chance {}",
        v.cv_accuracy,
        v.chance
    );
    assert!(v.labeled > 0);
    // Ground-truth precision of confident attributions.
    assert!(v.truth_precision > 0.6, "precision {}", v.truth_precision);
}

#[test]
fn term_bias_check_finds_same_campaigns_with_different_terms() {
    let mut out = study();
    let bias = validation::term_bias(&mut out);
    assert!(
        bias.verticals > 0,
        "no doorway-derived verticals to compare"
    );
    assert!(bias.total_terms > 0);
    // The two methodologies pick mostly different strings…
    assert!(
        bias.overlapping_terms < bias.total_terms,
        "term sets should not be identical"
    );
    // …but both surface poisoned results (§4.1.1's conclusion that the
    // campaigns, not the term choice, drive the findings).
    assert!(bias.original_psr_rate > 0.0);
    assert!(bias.alternate_psr_rate > 0.0);
}

#[test]
fn attribution_timelines_track_true_campaign_activity() {
    // Needs a window long enough to cover activity transitions; over a
    // two-week window every campaign's juice is near-constant and the
    // correlation is undefined noise.
    let mut cfg = StudyConfig::fast_test(103);
    cfg.crawl_end = cfg.crawl_start + 60;
    let out = Study::new(cfg).run().expect("study runs");
    let fidelity = validation::attribution_timeline_fidelity(&out);
    assert!(!fidelity.is_empty(), "no campaign timelines scored");
    // Among campaigns with meaningful signal (|r| > 0.3), the clear
    // majority must track true activity positively.
    let strong: Vec<f64> = fidelity
        .values()
        .copied()
        .filter(|r| r.abs() > 0.3)
        .collect();
    assert!(
        !strong.is_empty(),
        "no campaign produced a strong timeline signal"
    );
    let positive = strong.iter().filter(|r| **r > 0.0).count();
    assert!(
        positive * 3 >= strong.len() * 2,
        "strong timeline correlations should be positive; got {positive}/{} ({fidelity:?})",
        strong.len()
    );
}

#[test]
fn rendering_crawler_is_what_catches_iframe_cloaking() {
    // The §3.1.1 ablation: disable rendering and the iframe-cloaked
    // doorway population disappears from the detections.
    let a = validation::detector_ablation(117, 8);
    assert!(a.full_poisoned > 0);
    assert!(
        a.full_poisoned > a.dagger_only_poisoned,
        "rendering must add detections: full={} dagger={}",
        a.full_poisoned,
        a.dagger_only_poisoned
    );
    assert!(a.rendering_exclusive > 0);
    // Every rendering-exclusive catch is a genuine iframe-cloaking doorway.
    assert_eq!(
        a.rendering_exclusive_iframe, a.rendering_exclusive,
        "rendering-exclusive detections must all be iframe cloaking"
    );
    assert!(a.full_psrs >= a.dagger_only_psrs);
}

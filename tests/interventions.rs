//! Intervention causality: the study's core findings (§5.2–§5.3) must
//! emerge from the pipeline, and the interventions must actually bite.

use search_seizure::analysis::{figures, interventions};
use search_seizure::{Study, StudyConfig};

fn study(seed: u64) -> search_seizure::StudyOutput {
    Study::new(StudyConfig::fast_test(seed))
        .run()
        .expect("study runs")
}

#[test]
fn label_coverage_is_partial_and_delayed() {
    let out = study(107);
    let l = interventions::labels(&out);
    assert!(l.total_psrs > 0);
    // §5.2.2: the label covers a small fraction of PSRs — never zero,
    // never most of them.
    assert!(
        l.coverage < 0.4,
        "label coverage implausibly high: {}",
        l.coverage
    );
    // The root-only policy leaves coverage on the table whenever labels
    // were observed at all.
    if l.labeled_psrs > 0 {
        assert!(l.could_have_labeled >= l.labeled_psrs);
        if let Some(delay) = l.delay {
            assert!(delay.mean_lo <= delay.mean_hi);
            assert!(delay.mean_hi >= 1.0, "labels cannot land instantly");
        }
    }
}

#[test]
fn seizures_are_observed_with_lifetimes_and_reactions() {
    // A longer window so seizure cadences land inside the crawl.
    let mut cfg = StudyConfig::fast_test(109);
    cfg.crawl_end = cfg.crawl_start + 95;
    let out = Study::new(cfg).run().expect("study runs");
    let s = interventions::seizures(&out);
    assert!(!s.firms.is_empty(), "no seizures observed in 95 days");
    for firm in &s.firms {
        assert!(firm.cases > 0);
        assert!(firm.observed_stores > 0);
        assert!(
            firm.seized_total >= firm.observed_stores,
            "court docs list the bulk"
        );
        if let Some(l) = firm.store_lifetime {
            assert!(l.mean_lo <= l.mean_hi);
        }
    }
    // Coverage is partial (§5.3.1: 3.9% of stores).
    assert!(s.seized_store_fraction < 0.9);
    // The markdown table renders.
    assert!(s.to_markdown().contains("| Firm |"));
}

#[test]
fn seizure_observation_lags_truth_but_not_wildly() {
    let mut cfg = StudyConfig::fast_test(109);
    cfg.crawl_end = cfg.crawl_start + 95;
    let out = Study::new(cfg).run().expect("study runs");
    if let Some(lag) = interventions::seizure_observation_lag(&out) {
        // Re-verification runs every few days; the observation lag should
        // be on that order, not weeks.
        assert!(lag <= 20.0, "observation lag {lag} days");
    }
}

#[test]
fn stronger_search_policy_cuts_psr_exposure() {
    // The §6 what-if, in miniature: crank detection coverage and the
    // demotion penalty, and poisoned exposure must drop.
    let weak = study(111);

    let mut strong_cfg = StudyConfig::fast_test(111);
    strong_cfg.scenario.search_policy.detect_prob = 0.9;
    strong_cfg.scenario.search_policy.delay_min = 1;
    strong_cfg.scenario.search_policy.delay_max = 3;
    strong_cfg.scenario.search_policy.demote_penalty = 1.0;
    let strong = Study::new(strong_cfg).run().expect("study runs");

    let psr_rate = |out: &search_seizure::StudyOutput| -> f64 {
        let seen: u64 = out
            .crawler
            .db
            .daily_counts
            .iter()
            .map(|c| u64::from(c.total_seen))
            .sum();
        out.crawler.db.psrs.len() as f64 / seen.max(1) as f64
    };
    let weak_rate = psr_rate(&weak);
    let strong_rate = psr_rate(&strong);
    assert!(
        strong_rate < weak_rate,
        "aggressive policy should reduce PSR rate: weak={weak_rate} strong={strong_rate}"
    );
}

#[test]
fn figure4_panels_correlate_visibility_with_orders() {
    let mut cfg = StudyConfig::fast_test(113);
    cfg.crawl_end = cfg.crawl_start + 60;
    let out = Study::new(cfg).run().expect("study runs");
    // Find any attributed campaign with a sampled store.
    let mut found = 0;
    for name in out.attribution.class_names.clone() {
        if let Some(panel) = figures::fig4(&out, &name) {
            if let Some(v) = panel.volume.as_ref() {
                found += 1;
                // Cumulative volume never decreases over observed samples.
                let obs: Vec<f64> = v.observed().map(|(_, x)| x).collect();
                assert!(
                    obs.windows(2).all(|w| w[1] >= w[0]),
                    "volume must be cumulative"
                );
                let csv = panel.to_csv();
                assert!(csv.contains("psrs_top100"));
            }
        }
    }
    assert!(found > 0, "no Figure 4 panel could be built");
}

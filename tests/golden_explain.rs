//! Golden snapshot of a `repro explain` causal chain, plus the
//! thread-count determinism contract for the trace plane.
//!
//! The explain layer walks three planes at once (the persisted tick
//! event trail, the columnar PSR scan, and the attribution artifacts),
//! so its rendered chain is a sensitive integration probe: any drift in
//! intervention timing, doorway lifecycle, or attribution shows up as a
//! diff against `tests/golden/explain_small.txt`.
//!
//! When a change *intends* to shift behaviour, regenerate the snapshot:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p search-seizure --test golden_explain
//! ```
//!
//! The chain contains simulation dates only — never wall-clock — so the
//! snapshot is stable across machines and thread counts.

use std::sync::OnceLock;

use search_seizure::analysis::interventions;
use search_seizure::{explain, Study, StudyConfig, StudyOutput};
use ss_eco::domains::SiteKind;
use ss_obs::TraceLevel;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/explain_small.txt"
);
const GOLDEN_SEED: u64 = 101;

fn traced_run(threads: usize) -> StudyOutput {
    let mut cfg = StudyConfig::fast_test(GOLDEN_SEED);
    cfg.set_threads(threads);
    cfg.set_trace(TraceLevel::Event);
    Study::new(cfg).run().expect("study runs")
}

/// The serial traced run, shared by both tests in this binary.
fn shared_run() -> &'static StudyOutput {
    static RUN: OnceLock<StudyOutput> = OnceLock::new();
    RUN.get_or_init(|| traced_run(1))
}

/// The campaign behind the earliest seizure notice the crawler actually
/// observed — deterministic (sorted by observation day, then domain),
/// and guaranteed to overlap the intervention metrics Table 3 tabulates.
fn seized_campaign_name(out: &StudyOutput) -> String {
    let world = &out.world;
    let db = &out.crawler.db;
    let mut observed: Vec<(ss_types::SimDate, String)> = db
        .store_info
        .iter()
        .filter_map(|(id, info)| {
            info.seizure
                .as_ref()
                .map(|(day, _)| (*day, db.domains.resolve(*id).to_owned()))
        })
        .collect();
    observed.sort();
    let (_, name) = observed
        .first()
        .expect("the golden window observes at least one seizure notice");
    let dn = ss_types::DomainName::parse(name).expect("crawled domains parse");
    let did = world.domains.lookup(&dn).expect("crawled domain exists");
    match world.domains.get(did).kind {
        SiteKind::Storefront { store } => world
            .campaigns
            .row(world.store(store).campaign)
            .name
            .to_owned(),
        _ => panic!("seizure notice on a non-storefront domain"),
    }
}

#[test]
fn explain_chain_matches_golden_snapshot() {
    let out = shared_run();
    let name = seized_campaign_name(out);
    let chain = explain::explain_campaign(out, &name).expect("campaign resolves");
    let rendered = chain.render();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden file");
        eprintln!("golden explain chain regenerated at {GOLDEN_PATH}");
        return;
    }

    // Cross-checks against the intervention analyses the chain must
    // agree with (both read the same seizure/penalty planes).
    assert!(
        rendered.contains("filed a seizure case"),
        "seized campaign's chain lacks the case step:\n{rendered}"
    );
    let seizures = interventions::seizures(out);
    assert!(
        seizures.firms.iter().any(|f| rendered.contains(&f.firm)),
        "the filing firm in the chain must be one Table 3 tabulates:\n{rendered}"
    );
    let steps = chain.steps();
    assert!(
        steps.windows(2).all(|w| w[0].0 <= w[1].0),
        "chain steps must be chronological"
    );

    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden file {GOLDEN_PATH} ({e}); \
             regenerate with UPDATE_GOLDEN=1 cargo test --test golden_explain"
        )
    });
    if rendered != golden {
        let diff_line = rendered
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("first diff at line {}: {a:?} vs golden {b:?}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "documents diverge in length: {} vs golden {} lines",
                    rendered.lines().count(),
                    golden.lines().count()
                )
            });
        panic!(
            "explain chain drifted from the golden snapshot ({diff_line}). \
             If the behaviour change is intentional, regenerate with \
             UPDATE_GOLDEN=1 cargo test --test golden_explain and commit \
             the new {GOLDEN_PATH}."
        );
    }
}

/// The deterministic half of the trace plane — flight-recorder contents
/// and the persisted event trail — must be bit-identical no matter how
/// many workers the crawl and tick planes fan out to.
#[test]
fn flight_recorder_is_bit_identical_across_thread_counts() {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return; // golden regeneration runs the snapshot test only
    }
    let base = shared_run();
    assert!(
        !base.world.recorder.is_empty() && !base.crawler.recorder.is_empty(),
        "traced run must populate both recorders"
    );
    for threads in [2usize, 8] {
        let out = traced_run(threads);
        assert_eq!(
            out.world.recorder.render(),
            base.world.recorder.render(),
            "tick-plane recorder diverged at {threads} threads"
        );
        assert_eq!(
            out.crawler.recorder.render(),
            base.crawler.recorder.render(),
            "crawl-plane recorder diverged at {threads} threads"
        );
        assert_eq!(
            out.world.event_trail, base.world.event_trail,
            "persisted event trail diverged at {threads} threads"
        );
    }
}

//! The one-pass aggregation layer against ground truth: the fused scan
//! must equal a hand-written per-module recomputation (the pre-refactor
//! shape) on randomly seeded small worlds, stay bit-identical across
//! scan thread counts, and report exactly the pass counts it performs.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;
use search_seizure::analysis::scan::StudyScan;
use search_seizure::{Study, StudyConfig, StudyOutput};
use ss_obs::Registry;
use ss_stats::DailySeries;
use ss_types::SimDate;

fn study(seed: u64) -> StudyOutput {
    Study::new(StudyConfig::fast_test(seed))
        .run()
        .expect("study runs")
}

/// Recomputes every scan product with direct row loops (one independent
/// pass per module, exactly how the analyses worked before the shared
/// scan) and asserts the fused result matches.
fn assert_scan_matches_reference(out: &StudyOutput) {
    let db = &out.crawler.db;
    let scan = &out.scan;
    let (start, end) = out.window;
    let sparse = || DailySeries::new(start, end);

    // Counts module: totals and the root-only label policy's gap.
    assert_eq!(scan.rows, db.psrs.len() as u64);
    let labeled = db.psrs.iter().filter(|p| p.labeled).count() as u64;
    assert_eq!(scan.labeled_psrs, labeled);
    let labeled_domains: HashSet<u32> = db
        .psrs
        .iter()
        .filter(|p| p.labeled)
        .map(|p| p.domain)
        .collect();
    let first_label_day: HashMap<u32, SimDate> = labeled_domains
        .iter()
        .filter_map(|d| {
            db.doorway_info
                .get(d)
                .and_then(|i| i.label_seen)
                .map(|(f, _)| (*d, f))
        })
        .collect();
    let missed = db
        .psrs
        .iter()
        .filter(|p| {
            !p.labeled
                && first_label_day
                    .get(&p.domain)
                    .map(|f| p.day >= *f)
                    .unwrap_or(false)
        })
        .count() as u64;
    assert_eq!(scan.label_missed, missed);

    // Class module: per-campaign counts, doorway sets, daily series.
    for (c, cls) in scan.classes.iter().enumerate() {
        let of_class = || {
            db.psrs
                .iter()
                .filter(move |p| out.attribution.psr_class(p) == Some(c))
        };
        assert_eq!(cls.psrs, of_class().count() as u64, "class {c} psrs");
        let doorways: HashSet<u32> = of_class().map(|p| p.domain).collect();
        assert_eq!(cls.doorways, doorways, "class {c} doorways");
        let (mut daily, mut top10, mut lab) = (sparse(), sparse(), sparse());
        for p in of_class() {
            daily.add(p.day, 1.0);
            if p.rank <= 10 {
                top10.add(p.day, 1.0);
            }
            if p.labeled {
                lab.add(p.day, 1.0);
            }
        }
        assert_eq!(cls.daily, daily, "class {c} daily");
        assert_eq!(cls.daily_top10, top10, "class {c} top10");
        assert_eq!(cls.labeled, lab, "class {c} labeled");
    }

    // Vertical module: Table-1 sets and the Figure-2 series.
    let seizure_day: HashMap<u32, SimDate> = db
        .store_info
        .iter()
        .filter_map(|(id, s)| s.seizure.as_ref().map(|(d, _)| (*id, *d)))
        .collect();
    assert_eq!(scan.verticals.len(), out.monitored.len());
    for (vi, v) in scan.verticals.iter().enumerate() {
        let of_vert = || db.psrs.iter().filter(move |p| p.vertical == vi as u16);
        assert_eq!(v.psrs, of_vert().count() as u64, "vertical {vi} psrs");
        let doorways: HashSet<u32> = of_vert().map(|p| p.domain).collect();
        assert_eq!(v.doorways, doorways, "vertical {vi} doorways");
        let stores: HashSet<u32> = of_vert()
            .filter_map(|p| p.landing)
            .filter(|l| db.store_info.get(l).map(|s| s.is_store).unwrap_or(false))
            .collect();
        assert_eq!(v.stores, stores, "vertical {vi} stores");
        let campaigns: HashSet<usize> = of_vert()
            .filter_map(|p| out.attribution.psr_class(&p))
            .collect();
        assert_eq!(v.campaigns, campaigns, "vertical {vi} campaigns");
        let (mut poisoned, mut penalized) = (sparse(), sparse());
        let mut per_class: HashMap<Option<usize>, DailySeries> = HashMap::new();
        for p in of_vert() {
            poisoned.add(p.day, 1.0);
            let seized = p
                .landing
                .and_then(|l| seizure_day.get(&l))
                .map(|d| *d <= p.day)
                .unwrap_or(false);
            if p.labeled || seized {
                penalized.add(p.day, 1.0);
            }
            per_class
                .entry(out.attribution.psr_class(&p))
                .or_insert_with(sparse)
                .add(p.day, 1.0);
        }
        assert_eq!(v.poisoned, poisoned, "vertical {vi} poisoned");
        assert_eq!(v.penalized, penalized, "vertical {vi} penalized");
        assert_eq!(v.per_class, per_class, "vertical {vi} per-class");
    }

    // Landing module: per-store series and the (store, vertical) pairs.
    let mut landings: HashMap<u32, (DailySeries, DailySeries)> = HashMap::new();
    let mut landing_verticals: HashSet<(u32, u16)> = HashSet::new();
    for p in &db.psrs {
        let Some(l) = p.landing else { continue };
        landing_verticals.insert((l, p.vertical));
        let entry = landings.entry(l).or_insert_with(|| (sparse(), sparse()));
        entry.0.add(p.day, 1.0);
        if p.rank <= 10 {
            entry.1.add(p.day, 1.0);
        }
    }
    assert_eq!(scan.landing_verticals, landing_verticals);
    assert_eq!(scan.landings.len(), landings.len());
    for (l, (daily, top10)) in landings {
        let got = &scan.landings[&l];
        assert_eq!(got.daily, daily, "landing {l} daily");
        assert_eq!(got.daily_top10, top10, "landing {l} top10");
    }

    // Churn module: per-day doorway sets.
    let mut day_domains: HashMap<SimDate, HashSet<u32>> = HashMap::new();
    for p in &db.psrs {
        day_domains.entry(p.day).or_default().insert(p.domain);
    }
    assert_eq!(scan.day_domains, day_domains);
}

// Property test over randomly seeded worlds. Full studies are expensive,
// so the case count is capped by hand instead of using the `proptest!`
// driver's fixed budget — a few random worlds is the point here, not case
// volume: every case cross-checks ~20 scan products in full.
#[test]
fn fused_scan_equals_per_module_recomputation() {
    let mut rng = TestRng::for_test(concat!(
        module_path!(),
        "::fused_scan_equals_per_module_recomputation"
    ));
    for _ in 0..3 {
        let seed = rng.below(1000);
        let out = study(seed);
        assert_scan_matches_reference(&out);

        // The driver's own legacy shape (five separate passes over the
        // same aggregators) must agree too.
        let obs = Registry::new();
        let per_module = StudyScan::compute_per_module(
            &out.crawler.db,
            &out.attribution,
            out.monitored.len(),
            out.window,
            &obs,
        );
        prop_assert_eq!(&per_module, &out.scan, "seed {}", seed);
    }
}

#[test]
fn scan_is_bit_identical_across_thread_counts() {
    let out = study(101);
    for threads in [2usize, 8] {
        let obs = Registry::new();
        let scan = StudyScan::compute(
            &out.crawler.db,
            &out.attribution,
            out.monitored.len(),
            out.window,
            threads,
            &obs,
        );
        assert_eq!(
            scan, out.scan,
            "scan diverged at {threads} analysis threads"
        );
    }
}

#[test]
fn scan_counts_exactly_its_passes() {
    let out = study(101);
    // The study itself performed exactly one corpus pass.
    assert_eq!(out.metrics.counter_total("analysis.passes"), 1);
    assert_eq!(
        out.metrics.counter_total("analysis.rows_scanned"),
        out.crawler.db.psrs.len() as u64
    );

    // Fused recompute: one more pass, regardless of thread count.
    let obs = Registry::new();
    let _ = StudyScan::compute(
        &out.crawler.db,
        &out.attribution,
        out.monitored.len(),
        out.window,
        4,
        &obs,
    );
    assert_eq!(obs.counter_total("analysis.passes"), 1);

    // Legacy per-module shape: five passes, five times the rows.
    let obs = Registry::new();
    let _ = StudyScan::compute_per_module(
        &out.crawler.db,
        &out.attribution,
        out.monitored.len(),
        out.window,
        &obs,
    );
    assert_eq!(obs.counter_total("analysis.passes"), 5);
    assert_eq!(
        obs.counter_total("analysis.rows_scanned"),
        5 * out.crawler.db.psrs.len() as u64
    );
}

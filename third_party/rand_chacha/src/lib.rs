//! Minimal offline stand-in for `rand_chacha`: a genuine ChaCha stream
//! cipher core (8 rounds) behind the `ChaCha8Rng` name the workspace uses.
//!
//! The keystream is real ChaCha — Bernstein's quarter-round over a
//! 16-word state with a 64-bit block counter — so output quality matches
//! the upstream crate even though only the `RngCore`/`SeedableRng`
//! surface is reproduced. Word order within a block follows the natural
//! state layout, which is sufficient for every consumer in this
//! workspace (none pin golden keystream values).

use rand_core::{RngCore, SeedableRng};

/// A ChaCha random number generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Stream id / nonce (state words 14..16).
    stream: [u32; 2],
    /// Current block's keystream.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    index: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Dumps the full generator state as `(key, stream, counter, index)`.
    ///
    /// `counter`/`index` address the *next* keystream word: `index < 16`
    /// means the word at `index` of block `counter - 1` is next (the
    /// counter has already advanced past the buffered block), `index == 16`
    /// means block `counter` will be generated on the next draw. Because
    /// the buffered block is a pure function of `(key, stream, counter)`,
    /// the buffer itself need not be exported.
    pub fn dump_state(&self) -> ([u32; 8], [u32; 2], u64, u8) {
        (self.key, self.stream, self.counter, self.index as u8)
    }

    /// Rebuilds a generator from [`Self::dump_state`] output; the restored
    /// generator continues the keystream exactly where the dump left off.
    /// Returns `None` if `index > 16` (an impossible position).
    pub fn from_state(key: [u32; 8], stream: [u32; 2], counter: u64, index: u8) -> Option<Self> {
        if index > 16 {
            return None;
        }
        let mut rng = ChaCha8Rng {
            key,
            counter,
            stream,
            buf: [0; 16],
            index: 16,
        };
        if index < 16 {
            // Mid-block: regenerate the buffered block deterministically.
            // `refill` consumes the counter it starts from, so step back to
            // the block the dump was reading and let refill re-advance.
            rng.counter = counter.wrapping_sub(1);
            rng.refill();
            rng.index = index as usize;
        }
        Some(rng)
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream[0];
        state[15] = self.stream[1];
        let input = state;
        for _ in 0..4 {
            // One double round: a column round then a diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: [0; 2],
            buf: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..21 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn dump_and_restore_resume_mid_block() {
        // Every position within and at the edge of a block must restore to
        // an identical continuation, including the never-drawn state.
        for drawn in 0..40usize {
            let mut a = ChaCha8Rng::seed_from_u64(77);
            for _ in 0..drawn {
                a.next_u32();
            }
            let (key, stream, counter, index) = a.dump_state();
            let mut b = ChaCha8Rng::from_state(key, stream, counter, index).unwrap();
            for i in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64(), "drawn={drawn} draw={i}");
            }
        }
        assert!(ChaCha8Rng::from_state([0; 8], [0; 2], 0, 17).is_none());
    }

    #[test]
    fn keystream_looks_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(1234);
        let n = 40_000;
        let ones: u32 = (0..n).map(|_| r.next_u32().count_ones()).sum();
        let frac = ones as f64 / (n as f64 * 32.0);
        assert!((frac - 0.5).abs() < 0.005, "bit balance {frac}");
    }
}

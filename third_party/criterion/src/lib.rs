//! Minimal offline stand-in for `criterion`.
//!
//! Provides the macro/type surface the workspace's benches compile
//! against (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `Bencher::iter`/`iter_batched`, `BatchSize`, `black_box`) backed by a
//! simple wall-clock harness: per sample it runs enough iterations to
//! cover a minimum measurement window, then reports the median, minimum,
//! and mean per-iteration time. No warm-up plots, statistics, or HTML
//! reports — just honest numbers on stdout, which is what an offline CI
//! lane can actually consume.

use std::time::{Duration, Instant};

/// Re-export of the compiler's optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped per measurement; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream; one per measurement here.
    SmallInput,
    /// Large inputs: few per batch upstream; one per measurement here.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Benchmark driver: collects samples and prints a summary per bench.
pub struct Criterion {
    sample_size: usize,
    min_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            min_sample_time: Duration::from_millis(8),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            min_sample_time: self.min_sample_time,
        };
        // One warm-up pass (discarded), then the measured samples.
        f(&mut b);
        b.samples.clear();
        while b.samples.len() < self.sample_size {
            f(&mut b);
        }
        b.samples.truncate(self.sample_size);
        report(name, &mut b.samples);
        self
    }
}

/// Passed to the bench closure; measures one routine.
pub struct Bencher {
    /// Per-iteration nanoseconds, one entry per completed sample.
    samples: Vec<f64>,
    min_sample_time: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many times as needed to fill the
    /// sample window. Appends one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let started = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = started.elapsed();
            if elapsed >= self.min_sample_time {
                self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
                return;
            }
        }
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut spent = Duration::ZERO;
        let mut iters = 0u64;
        loop {
            let input = setup();
            let started = Instant::now();
            black_box(routine(black_box(input)));
            spent += started.elapsed();
            iters += 1;
            if spent >= self.min_sample_time {
                self.samples.push(spent.as_nanos() as f64 / iters as f64);
                return;
            }
        }
    }
}

fn report(name: &str, samples: &mut [f64]) {
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<40} time: [min {} | median {} | mean {}]",
        fmt_ns(samples[0]),
        fmt_ns(median),
        fmt_ns(mean),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmarks; supports both the positional and the
/// `name/config/targets` forms of the upstream macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_one_sample_per_call() {
        let mut b = Bencher {
            samples: Vec::new(),
            min_sample_time: Duration::from_micros(50),
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert_eq!(b.samples.len(), 2);
        assert!(b.samples.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn iter_batched_excludes_setup_cost() {
        let mut b = Bencher {
            samples: Vec::new(),
            min_sample_time: Duration::from_micros(10),
        };
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.samples.len(), 1);
    }

    #[test]
    fn bench_function_reports_requested_samples() {
        let mut c = Criterion {
            sample_size: 3,
            min_sample_time: Duration::from_micros(20),
        };
        let mut calls = 0u32;
        c.bench_function("stub-self-test", |b| {
            calls += 1;
            b.iter(|| black_box(1u32) + 1)
        });
        assert!(calls >= 4, "warm-up plus three samples, got {calls}");
    }
}

//! Minimal offline stand-in for the `rand_core` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of the `rand` ecosystem API it actually uses. This crate
//! provides the two core traits (`RngCore`, `SeedableRng`) with the same
//! shapes and the same `seed_from_u64` expansion (SplitMix64) as the real
//! crate, so seeded streams stay stable if the real dependency is ever
//! restored.

/// A random number generator core: the raw word stream.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with a PCG32 stream (the same
    /// scheme rand_core 0.6 uses), then builds the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let x = *state;
            let xorshifted = (((x >> 18) ^ x) >> 27) as u32;
            let rot = (x >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(4) {
            chunk.copy_from_slice(&pcg32(&mut state));
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
    }

    #[test]
    fn fill_bytes_consumes_whole_words() {
        let mut r = Counter(0);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], &1u64.to_le_bytes());
        assert_eq!(&buf[8..], &2u64.to_le_bytes()[..3]);
    }
}

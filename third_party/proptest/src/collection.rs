//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Generates `Vec`s of elements from `elem` with a length in `len`.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { elem, len }
}

/// Strategy produced by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

//! Tiny regex-subset string generator backing `&str` strategies.
//!
//! Supported syntax (everything the workspace's patterns use):
//! - literal characters, including `\x` escapes
//! - character classes `[a-z0-9]` with ranges and literal members
//! - groups `( … )`
//! - repetition `{n}` / `{m,n}` on the preceding atom
//!
//! Unsupported constructs panic with the offending pattern, so a new
//! test pattern fails loudly rather than generating garbage.

use crate::TestRng;

enum Atom {
    Literal(char),
    /// Inclusive `(lo, hi)` ranges; single members are `(c, c)`.
    Class(Vec<(char, char)>),
    Group(Vec<Piece>),
}

struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let (pieces, consumed) = parse_seq(pattern, &chars, 0, None);
    assert_eq!(consumed, chars.len(), "unbalanced pattern: {pattern}");
    let mut out = String::new();
    emit_seq(&pieces, rng, &mut out);
    out
}

fn parse_seq(
    pattern: &str,
    chars: &[char],
    mut i: usize,
    until: Option<char>,
) -> (Vec<Piece>, usize) {
    let mut pieces = Vec::new();
    while i < chars.len() {
        if Some(chars[i]) == until {
            return (pieces, i + 1);
        }
        let atom = match chars[i] {
            '[' => {
                let (class, next) = parse_class(pattern, chars, i + 1);
                i = next;
                Atom::Class(class)
            }
            '(' => {
                let (inner, next) = parse_seq(pattern, chars, i + 1, Some(')'));
                i = next;
                Atom::Group(inner)
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling escape in pattern: {pattern}");
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c if "|*+?.^$".contains(c) => {
                panic!("regex construct `{c}` not supported by the proptest stand-in: {pattern}")
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{…}} in pattern: {pattern}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse()
                        .unwrap_or_else(|_| panic!("bad repeat `{spec}` in {pattern}")),
                    hi.parse()
                        .unwrap_or_else(|_| panic!("bad repeat `{spec}` in {pattern}")),
                ),
                None => {
                    let n = spec
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat `{spec}` in {pattern}"));
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repeat in pattern: {pattern}");
        pieces.push(Piece { atom, min, max });
    }
    assert!(until.is_none(), "unclosed group in pattern: {pattern}");
    (pieces, i)
}

fn parse_class(pattern: &str, chars: &[char], mut i: usize) -> (Vec<(char, char)>, usize) {
    let mut ranges = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = chars[i];
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
            let hi = chars[i + 2];
            assert!(lo <= hi, "inverted class range in pattern: {pattern}");
            ranges.push((lo, hi));
            i += 3;
        } else {
            ranges.push((lo, lo));
            i += 1;
        }
    }
    assert!(i < chars.len(), "unclosed class in pattern: {pattern}");
    assert!(!ranges.is_empty(), "empty class in pattern: {pattern}");
    (ranges, i + 1)
}

fn emit_seq(pieces: &[Piece], rng: &mut TestRng, out: &mut String) {
    for piece in pieces {
        let reps = piece.min + rng.below(u64::from(piece.max - piece.min) + 1) as u32;
        for _ in 0..reps {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|&(lo, hi)| u64::from(hi as u32 - lo as u32) + 1)
                        .sum();
                    let mut pick = rng.below(total);
                    for &(lo, hi) in ranges {
                        let size = u64::from(hi as u32 - lo as u32) + 1;
                        if pick < size {
                            out.push(
                                char::from_u32(lo as u32 + pick as u32).expect("valid class char"),
                            );
                            break;
                        }
                        pick -= size;
                    }
                }
                Atom::Group(inner) => emit_seq(inner, rng, out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_n(pattern: &str, n: usize) -> Vec<String> {
        let mut rng = TestRng::for_test(pattern);
        (0..n).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn classes_respect_bounds_and_members() {
        for s in gen_n("[a-z0-9]{1,10}", 200) {
            assert!((1..=10).contains(&s.chars().count()), "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()),
                "{s:?}"
            );
        }
    }

    #[test]
    fn printable_ascii_class_spans_space_to_tilde() {
        let all: String = gen_n("[ -~]{0,200}", 100).concat();
        assert!(all.chars().all(|c| (' '..='~').contains(&c)));
        assert!(
            all.chars().any(|c| !c.is_ascii_alphanumeric()),
            "should hit punctuation"
        );
    }

    #[test]
    fn groups_repeat_as_units() {
        for s in gen_n("(/[a-z0-9]{1,6}){0,3}", 200) {
            if s.is_empty() {
                continue;
            }
            assert!(s.starts_with('/'), "{s:?}");
            let segs: Vec<&str> = s.split('/').skip(1).collect();
            assert!((1..=3).contains(&segs.len()), "{s:?}");
            assert!(segs.iter().all(|seg| (1..=6).contains(&seg.len())), "{s:?}");
        }
    }

    #[test]
    fn plain_literals_pass_through() {
        assert!(gen_n("hacked", 5).iter().all(|s| s == "hacked"));
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn unsupported_constructs_fail_loudly() {
        generate("a|b", &mut TestRng::for_test("x"));
    }
}

//! Minimal offline stand-in for `proptest`.
//!
//! Reproduces the subset of the API this workspace's property tests use:
//! the `proptest!` macro (both `name in strategy` and `name: Type`
//! parameter forms), integer/float range strategies, tuple strategies,
//! `Just`, `prop_oneof!`, `.prop_map`, `proptest::collection::vec`, and
//! string strategies over a small regex subset (char classes, groups,
//! `{m,n}` repetition, literals).
//!
//! Differences from upstream, by design: inputs are generated from a
//! fixed per-test seed (hash of the test's module path and name) so runs
//! are fully deterministic, there is no shrinking, and `prop_assert!`
//! panics immediately like `assert!`. Each test runs [`CASES`] cases.

use std::ops::{Range, RangeInclusive};

pub mod collection;
mod regexish;

/// Number of generated cases per property test.
pub const CASES: u32 = 64;

/// Deterministic SplitMix64 generator feeding all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary test identifier (FNV-1a hash).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (widening multiply; `bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Draws one input.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }

    /// Type-erases one alternative.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = V>>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(s)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let x = (self.start as f64
                    + rng.unit_f64() * (self.end as f64 - self.start as f64)) as $t;
                // Rounding may land exactly on the excluded endpoint.
                if x >= self.end { self.start } else { x }
            }
        }
    )*};
}

float_strategy!(f32, f64);

/// String strategies from a regex-subset pattern (see [`regexish`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regexish::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

/// Types with a canonical strategy, used for `name: Type` parameters.
pub trait Arbitrary: Sized {
    /// Draws one value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2e6 - 1e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.unit_f64() * 2e6 - 1e6) as f32
    }
}

/// The canonical strategy for `T` (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Runs each test body over [`CASES`] deterministic inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __pt_rng = $crate::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __pt_case in 0..$crate::CASES {
                    let _ = __pt_case;
                    $crate::__proptest_bind!(__pt_rng; $($params)*);
                    $body
                }
            }
        )*
    };
}

/// Binds one test parameter per step (`x in strategy` or `x: Type`).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
}

/// Like `assert!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Like `assert_ne!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::boxed($strat)),+])
    };
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        Just, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_typed_params_bind(x in 3u32..10, flip: bool, f in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(u8::from(flip) <= 1);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            pairs in crate::collection::vec((0u32..5, 0.0f64..1.0), 2..6),
        ) {
            prop_assert!((2..6).contains(&pairs.len()));
            for (a, b) in pairs {
                prop_assert!(a < 5 && (0.0..1.0).contains(&b));
            }
        }
    }

    #[test]
    fn oneof_and_map_cover_all_alternatives() {
        let strat = prop_oneof![Just(0u8), Just(1u8), (2u8..4).prop_map(|x| x)];
        let mut rng = TestRng::for_test("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn same_test_name_same_inputs() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

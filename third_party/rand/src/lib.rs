//! Minimal offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Only the slice of the API this workspace uses is provided: the `Rng`
//! extension trait (`gen`, `gen_range`, `gen_bool`), the `Standard`
//! distribution for primitives and const-generic arrays, uniform sampling
//! over integer and float ranges, and `seq::SliceRandom::shuffle`.
//! Algorithms follow the real crate where cheap (widening-multiply uniform
//! integers, 53-bit floats, Fisher–Yates), so the statistical properties
//! the simulation's tests assert hold just as they would upstream.

pub use rand_core::{RngCore, SeedableRng};

pub mod distributions;
pub mod seq;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// User-facing extension methods over any `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct SplitMix(u64);
    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SplitMix(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval_uniformly() {
        let mut r = SplitMix(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn array_sampling_fills_every_lane() {
        let mut r = SplitMix(3);
        let a: [u64; 8] = r.gen();
        let b: [u64; 8] = r.gen();
        assert_ne!(a, b);
        assert!(a.iter().all(|&x| x != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut r = SplitMix(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}

//! Sequence helpers: `SliceRandom::shuffle` (Fisher–Yates).

use crate::Rng;

/// Extension methods on slices that consume randomness.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, identical element-swap
    /// order to rand 0.8: walks from the back, swapping with a uniform
    /// index below).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly picks one element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

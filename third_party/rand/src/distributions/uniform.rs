//! Uniform sampling over ranges, the engine behind `Rng::gen_range`.
//!
//! Mirrors rand 0.8's structure — a `SampleUniform` trait per element
//! type plus blanket `SampleRange` impls for `Range`/`RangeInclusive` —
//! because the blanket impls are what let type inference flow from a
//! call like `gen_range(2..5).min(len)` back into the literals.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Element types that can be drawn uniformly from a bounded interval.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// A range that knows how to sample a single uniform value from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Unbiased uniform integer in `[0, bound)` via Lemire's widening-multiply
/// rejection method (the same family of algorithm rand 0.8 uses).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = bound.wrapping_neg() % bound; // number of biased low values
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_below(rng, span + 1) as $t)
                } else {
                    lo.wrapping_add(uniform_below(rng, span) as $t)
                }
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let unit: f64 = crate::distributions::Distribution::sample(
                    &crate::distributions::Standard,
                    rng,
                );
                let x = (lo as f64 + unit * (hi as f64 - lo as f64)) as $t;
                // Rounding can land on the excluded endpoint of a
                // half-open range; fold it back to the start.
                if !_inclusive && x >= hi { lo } else { x }
            }
        }
    )*};
}

uniform_float!(f32, f64);

//! Distributions: `Standard` for primitives and arrays, uniform ranges.

use crate::RngCore;

pub mod uniform;

/// Types that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over its range for
/// integers, uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
}

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<f64> for Standard {
    /// 53-bit precision uniform in `[0, 1)`, as in rand 0.8.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// 24-bit precision uniform in `[0, 1)`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl<T, const N: usize> Distribution<[T; N]> for Standard
where
    Standard: Distribution<T>,
{
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [T; N] {
        std::array::from_fn(|_| Standard.sample(rng))
    }
}

//! Minimal offline stand-in for `serde_derive`.
//!
//! Supports `#[derive(Serialize)]` on non-generic structs with named
//! fields — the only shape this workspace derives. Implemented directly
//! on the `proc_macro` token API (no `syn`/`quote`, which the offline
//! build cannot fetch): we walk the token trees to collect field names,
//! then emit an `impl serde::Serialize` that builds the field map in
//! declaration order.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes (`#[…]`, including doc comments) and visibility.
    let mut name = None;
    let mut body = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(ref p) if p.as_char() == '#' => {
                // Consume the attribute's bracket group.
                tokens.next();
            }
            TokenTree::Ident(ref id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(id)) => name = Some(id.to_string()),
                    other => panic!("derive(Serialize): expected struct name, got {other:?}"),
                }
                // Next significant token decides the shape. Named-field
                // structs go straight to a brace group; anything else
                // (generics, tuple structs, unit structs) is unsupported.
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        body = Some(g.stream());
                    }
                    other => panic!(
                        "derive(Serialize) stub supports only plain named-field \
                         structs; `{}` has unexpected token {other:?}",
                        name.as_deref().unwrap_or("?")
                    ),
                }
                break;
            }
            _ => {}
        }
    }

    let name = name.expect("derive(Serialize): no `struct` keyword found");
    let body = body.expect("derive(Serialize): no struct body found");
    let fields = field_names(body);

    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::serialize(&self.{f})),"
            )
        })
        .collect();

    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Map(::std::vec![{entries}])\n\
             }}\n\
         }}"
    );
    out.parse()
        .expect("derive(Serialize): generated impl parses")
}

/// Collects field names from the brace-group token stream of a
/// named-field struct: `#[attr]* vis? name : Type ,` repeated. Commas
/// inside parenthesized groups are invisible here (they live in nested
/// `Group`s), but commas inside angle-bracketed generics are top-level
/// punctuation, so we track `<`/`>` depth while skipping type tokens.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    'fields: loop {
        // Skip attributes and visibility, then read the field name.
        let fname = loop {
            match tokens.next() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    // `pub(crate)` carries a parenthesized group.
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("derive(Serialize): unexpected token {other:?}"),
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive(Serialize): expected `:` after `{fname}`, got {other:?}"),
        }
        fields.push(fname);
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => continue 'fields,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    fields
}

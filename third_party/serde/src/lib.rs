//! Minimal offline stand-in for `serde`'s serialization half.
//!
//! The real serde serializes through a visitor (`Serializer`); this stub
//! collapses that to an owned [`Value`] tree, which is all `serde_json`'s
//! pretty-printer (the only consumer in this workspace) needs. The derive
//! macro is re-exported from the companion `serde_derive` crate, so
//! `#[derive(serde::Serialize)]` on plain named-field structs works
//! unchanged.

// Lets the derive macro's generated `::serde::…` paths resolve even when
// expanded inside this crate's own tests (the same trick upstream uses).
extern crate self as serde;

pub use serde_derive::Serialize;

/// An owned, serializer-agnostic data tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (from `Option::None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, `Vec`, tuples).
    Seq(Vec<Value>),
    /// Key-ordered map (struct fields, in declaration order).
    Map(Vec<(String, Value)>),
}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serializer-agnostic tree.
    fn serialize(&self) -> Value;
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}
impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

macro_rules! ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
    };
}

impl Serialize for Value {
    /// A `Value` is already the serialized tree; hand-assembled trees
    /// (e.g. metric exports) can thus be passed straight to `serde_json`.
    fn serialize(&self) -> Value {
        self.clone()
    }
}

ser_tuple!(A: 0);
ser_tuple!(A: 0, B: 1);
ser_tuple!(A: 0, B: 1, C: 2);
ser_tuple!(A: 0, B: 1, C: 2, D: 3);
ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.serialize(), Value::UInt(3));
        assert_eq!((-2i64).serialize(), Value::Int(-2));
        assert_eq!(1.5f64.serialize(), Value::Float(1.5));
        assert_eq!("x".serialize(), Value::Str("x".into()));
        assert_eq!(Option::<u32>::None.serialize(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![("a".to_owned(), 1u64), ("b".to_owned(), 2u64)];
        assert_eq!(
            v.serialize(),
            Value::Seq(vec![
                Value::Seq(vec![Value::Str("a".into()), Value::UInt(1)]),
                Value::Seq(vec![Value::Str("b".into()), Value::UInt(2)]),
            ])
        );
    }

    #[test]
    fn derive_emits_declaration_ordered_map() {
        #[derive(crate::Serialize)]
        struct Row {
            name: String,
            hits: u64,
        }
        // The derive emits paths via `::serde`, which inside this crate's
        // tests resolves through the extern-crate name, i.e. this crate.
        let row = Row {
            name: "n".into(),
            hits: 7,
        };
        let v = Serialize::serialize(&row);
        assert_eq!(
            v,
            Value::Map(vec![
                ("name".into(), Value::Str("n".into())),
                ("hits".into(), Value::UInt(7)),
            ])
        );
    }
}

//! Minimal offline stand-in for `serde_json`: renders the vendored
//! `serde::Value` tree as JSON. Only the entry points this workspace
//! calls (`to_string`, `to_string_pretty`) are provided.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The value-tree model cannot actually fail, but
/// the signature mirrors upstream so call sites keep their `Result`
/// handling.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Ryū-style shortest form is overkill; Rust's Display for
                // f64 is already round-trippable. JSON has no non-finite
                // literals, so those become null (as upstream's default).
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            container(out, '[', ']', indent, depth, items.len(), |out, i| {
                render(&items[i], indent, depth + 1, out)
            });
        }
        Value::Map(entries) => {
            container(out, '{', '}', indent, depth, entries.len(), |out, i| {
                let (k, v) = &entries[i];
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(v, indent, depth + 1, out);
            });
        }
    }
}

fn container(
    out: &mut String,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(serde::Serialize)]
    struct Row {
        name: String,
        share: f64,
        pair: (u32, u32),
        tags: Vec<String>,
        note: Option<String>,
    }

    #[test]
    fn pretty_prints_nested_structs() {
        let rows = vec![Row {
            name: "coco \"vip\"".into(),
            share: 0.5,
            pair: (1, 2),
            tags: vec!["a".into()],
            note: None,
        }];
        let s = to_string_pretty(&rows).expect("serializes");
        let expected = r#"[
  {
    "name": "coco \"vip\"",
    "share": 0.5,
    "pair": [
      1,
      2
    ],
    "tags": [
      "a"
    ],
    "note": null
  }
]"#;
        assert_eq!(s, expected);
    }

    #[test]
    fn compact_form_has_no_whitespace() {
        let s = to_string(&vec![1u32, 2]).expect("serializes");
        assert_eq!(s, "[1,2]");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let s = to_string(&2.0f64).expect("serializes");
        assert_eq!(s, "2.0");
    }
}

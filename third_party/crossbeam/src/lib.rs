//! Minimal offline stand-in for `crossbeam`, providing the scoped-thread
//! API the crawler's parallel fan-out uses.
//!
//! Built directly on `std::thread::scope` (stable since Rust 1.63), which
//! did not exist when crossbeam's scoped threads were designed. One
//! deliberate deviation from upstream: closures receive the [`thread::Scope`]
//! **by value** (it is `Copy` — a wrapper around `&std::thread::Scope`)
//! instead of by reference, which sidesteps a lifetime knot in the
//! delegation. Call sites that ignore the scope argument (`|_| …`) or
//! re-spawn from it are source-compatible either way.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of joining a scoped thread: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle for spawning more threads inside the scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// A handle to join one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from the enclosing scope.
        pub fn spawn<F, T>(self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(self)),
            }
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope in which borrowed-data threads can be spawned; all
    /// threads are joined before `scope` returns. Returns `Err` with the
    /// panic payload if the closure or an unjoined child panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let data = &data;
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|i| s.spawn(move |_| data[i * 2] + data[i * 2 + 1]))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<u64>()
        })
        .expect("scope completes");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_from_scope_handle() {
        let n = crate::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21u32).join().expect("inner") * 2)
                .join()
                .expect("outer")
        })
        .expect("scope completes");
        assert_eq!(n, 42);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let r = crate::thread::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("boom") });
            h.join().is_err()
        });
        assert!(matches!(r, Ok(true)));
    }
}

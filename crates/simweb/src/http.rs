//! The HTTP-shaped interface between the crawler and the simulated web.
//!
//! The paper's detectors hinge on exactly the fields modeled here: the
//! `User-Agent` (Dagger fetches each page once as Googlebot and once as a
//! browser, §4.1.2), the `Referer` (compromised doorways only redirect
//! visitors arriving *from a search results page*, §3.1.1; AWStats reports
//! referrers, §5.2.3), `Set-Cookie` (store detection keys on payment /
//! e-commerce / analytics cookies, §4.1.3), and redirects (redirect
//! cloaking; seizure notices).

use ss_types::Url;

/// Who is fetching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UserAgent {
    /// A human visitor's browser (renders JavaScript when the caller asks).
    Browser,
    /// A search-engine crawler self-identifying as Googlebot. Cloaked sites
    /// key off this (server-side cloaking), and real crawlers do not render
    /// JS at scale — which is the assumption iframe cloaking exploits.
    GoogleBot,
}

impl UserAgent {
    /// The header string sent on the wire.
    pub fn header_value(self) -> &'static str {
        match self {
            UserAgent::Browser => {
                "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 Safari/537.36"
            }
            UserAgent::GoogleBot => "Mozilla/5.0 (compatible; Googlebot/2.1)",
        }
    }
}

/// A fetch request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The URL to fetch.
    pub url: Url,
    /// Which agent identity to present.
    pub user_agent: UserAgent,
    /// The `Referer` header, when the navigation came from another page.
    /// `None` models direct visits, proxies that strip the header, email
    /// clients, and HTTPS→HTTP transitions (§5.2.3 footnote).
    pub referrer: Option<Url>,
}

impl Request {
    /// A direct browser visit with no referrer.
    pub fn browser(url: Url) -> Self {
        Request { url, user_agent: UserAgent::Browser, referrer: None }
    }

    /// A browser visit that arrived by clicking a link on `referrer`.
    pub fn browser_from(url: Url, referrer: Url) -> Self {
        Request { url, user_agent: UserAgent::Browser, referrer: Some(referrer) }
    }

    /// A search-engine crawler visit.
    pub fn crawler(url: Url) -> Self {
        Request { url, user_agent: UserAgent::GoogleBot, referrer: None }
    }
}

/// A cookie set by a response. Only the name matters for the paper's store
/// detection heuristics, but we keep the value for realism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cookie {
    /// Cookie name, e.g. `zenid` or `cnzz_a`.
    pub name: String,
    /// Opaque value.
    pub value: String,
}

/// A fetch response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (200, 302, 404, …).
    pub status: u16,
    /// Redirect target for 3xx responses.
    pub location: Option<Url>,
    /// Cookies set by this response.
    pub cookies: Vec<Cookie>,
    /// The HTML body (empty for redirects and errors).
    pub body: String,
}

impl Response {
    /// A 200 response carrying `body`.
    pub fn ok(body: String) -> Self {
        Response { status: 200, location: None, cookies: Vec::new(), body }
    }

    /// A 302 redirect to `to`.
    pub fn redirect(to: Url) -> Self {
        Response { status: 302, location: Some(to), cookies: Vec::new(), body: String::new() }
    }

    /// A 404 response.
    pub fn not_found() -> Self {
        Response {
            status: 404,
            location: None,
            cookies: Vec::new(),
            body: "<html><body><h1>404 Not Found</h1></body></html>".into(),
        }
    }

    /// Attaches cookies (builder style).
    pub fn with_cookies(mut self, cookies: Vec<Cookie>) -> Self {
        self.cookies = cookies;
        self
    }

    /// Whether this response is an HTTP redirect.
    pub fn is_redirect(&self) -> bool {
        (300..400).contains(&self.status) && self.location.is_some()
    }
}

/// The interface every consumer of the simulated web speaks.
///
/// Implemented by `ss-eco`'s `World`. `fetch` takes `&mut self` because the
/// web is stateful in exactly the ways the paper exploits: storefronts
/// allocate order numbers when a visitor reaches checkout, and AWStats logs
/// record every page view.
pub trait Web {
    /// Serves one request.
    fn fetch(&mut self, req: &Request) -> Response;

    /// Follows redirects (HTTP only — JS redirects need a renderer) up to
    /// `max_hops`, returning the chain of URLs visited and the final
    /// response. The chain always contains at least the request URL.
    fn fetch_following(&mut self, req: &Request, max_hops: usize) -> (Vec<Url>, Response) {
        let mut chain = vec![req.url.clone()];
        let mut current = req.clone();
        let mut resp = self.fetch(&current);
        let mut hops = 0;
        while resp.is_redirect() && hops < max_hops {
            let next = resp.location.clone().expect("is_redirect checked location");
            // The redirect carries the original referrer onward, which is
            // how storefronts see search-engine referrers via doorways.
            current = Request {
                url: next.clone(),
                user_agent: current.user_agent,
                referrer: current.referrer.clone(),
            };
            chain.push(next);
            resp = self.fetch(&current);
            hops += 1;
        }
        (chain, resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::DomainName;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    /// A toy web for exercising the default redirect-following logic.
    struct ToyWeb;
    impl Web for ToyWeb {
        fn fetch(&mut self, req: &Request) -> Response {
            match req.url.host.as_str() {
                "a.com" => Response::redirect(url("http://b.com/")),
                "b.com" => Response::redirect(url("http://c.com/")),
                "loop.com" => Response::redirect(url("http://loop.com/")),
                _ => Response::ok(format!("<p>host {}</p>", req.url.host)),
            }
        }
    }

    #[test]
    fn follows_redirect_chain() {
        let mut web = ToyWeb;
        let (chain, resp) = web.fetch_following(&Request::browser(url("http://a.com/")), 10);
        let hosts: Vec<&str> = chain.iter().map(|u| u.host.as_str()).collect();
        assert_eq!(hosts, ["a.com", "b.com", "c.com"]);
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("c.com"));
    }

    #[test]
    fn redirect_loops_are_bounded() {
        let mut web = ToyWeb;
        let (chain, resp) = web.fetch_following(&Request::browser(url("http://loop.com/")), 5);
        assert_eq!(chain.len(), 6);
        assert!(resp.is_redirect());
    }

    #[test]
    fn request_constructors() {
        let u = url("http://x.com/p");
        let r = Request::browser_from(u.clone(), url("http://google.com/search?q=x"));
        assert_eq!(r.user_agent, UserAgent::Browser);
        assert_eq!(r.referrer.as_ref().unwrap().host, DomainName::parse("google.com").unwrap());
        assert_eq!(Request::crawler(u).user_agent, UserAgent::GoogleBot);
    }

    #[test]
    fn response_helpers() {
        assert!(Response::redirect(url("http://x.com/")).is_redirect());
        assert!(!Response::ok(String::new()).is_redirect());
        assert_eq!(Response::not_found().status, 404);
    }
}

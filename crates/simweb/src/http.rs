//! The HTTP-shaped interface between the crawler and the simulated web.
//!
//! The paper's detectors hinge on exactly the fields modeled here: the
//! `User-Agent` (Dagger fetches each page once as Googlebot and once as a
//! browser, §4.1.2), the `Referer` (compromised doorways only redirect
//! visitors arriving *from a search results page*, §3.1.1; AWStats reports
//! referrers, §5.2.3), `Set-Cookie` (store detection keys on payment /
//! e-commerce / analytics cookies, §4.1.3), and redirects (redirect
//! cloaking; seizure notices).

use ss_types::{DomainName, Url};

/// Who is fetching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UserAgent {
    /// A human visitor's browser (renders JavaScript when the caller asks).
    Browser,
    /// A search-engine crawler self-identifying as Googlebot. Cloaked sites
    /// key off this (server-side cloaking), and real crawlers do not render
    /// JS at scale — which is the assumption iframe cloaking exploits.
    GoogleBot,
}

impl UserAgent {
    /// The header string sent on the wire.
    pub fn header_value(self) -> &'static str {
        match self {
            UserAgent::Browser => {
                "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 Safari/537.36"
            }
            UserAgent::GoogleBot => "Mozilla/5.0 (compatible; Googlebot/2.1)",
        }
    }
}

/// A fetch request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The URL to fetch.
    pub url: Url,
    /// Which agent identity to present.
    pub user_agent: UserAgent,
    /// The `Referer` header, when the navigation came from another page.
    /// `None` models direct visits, proxies that strip the header, email
    /// clients, and HTTPS→HTTP transitions (§5.2.3 footnote).
    pub referrer: Option<Url>,
}

impl Request {
    /// A direct browser visit with no referrer.
    pub fn browser(url: Url) -> Self {
        Request {
            url,
            user_agent: UserAgent::Browser,
            referrer: None,
        }
    }

    /// A browser visit that arrived by clicking a link on `referrer`.
    pub fn browser_from(url: Url, referrer: Url) -> Self {
        Request {
            url,
            user_agent: UserAgent::Browser,
            referrer: Some(referrer),
        }
    }

    /// A search-engine crawler visit.
    pub fn crawler(url: Url) -> Self {
        Request {
            url,
            user_agent: UserAgent::GoogleBot,
            referrer: None,
        }
    }
}

/// A cookie set by a response. Only the name matters for the paper's store
/// detection heuristics, but we keep the value for realism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cookie {
    /// Cookie name, e.g. `zenid` or `cnzz_a`.
    pub name: String,
    /// Opaque value.
    pub value: String,
}

/// A fetch response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (200, 302, 404, …).
    pub status: u16,
    /// Redirect target for 3xx responses.
    pub location: Option<Url>,
    /// Cookies set by this response.
    pub cookies: Vec<Cookie>,
    /// The HTML body (empty for redirects and errors).
    pub body: String,
}

impl Response {
    /// A 200 response carrying `body`.
    pub fn ok(body: String) -> Self {
        Response {
            status: 200,
            location: None,
            cookies: Vec::new(),
            body,
        }
    }

    /// A 302 redirect to `to`.
    pub fn redirect(to: Url) -> Self {
        Response {
            status: 302,
            location: Some(to),
            cookies: Vec::new(),
            body: String::new(),
        }
    }

    /// A 404 response.
    pub fn not_found() -> Self {
        Response {
            status: 404,
            location: None,
            cookies: Vec::new(),
            body: "<html><body><h1>404 Not Found</h1></body></html>".into(),
        }
    }

    /// Attaches cookies (builder style).
    pub fn with_cookies(mut self, cookies: Vec<Cookie>) -> Self {
        self.cookies = cookies;
        self
    }

    /// Whether this response is an HTTP redirect.
    pub fn is_redirect(&self) -> bool {
        (300..400).contains(&self.status) && self.location.is_some()
    }
}

/// A state change a fetch *would* cause, reified as a value.
///
/// Serving a page is a pure read ([`Fetcher::fetch`]); anything the visit
/// would mutate comes back as a `SideEffect` for the caller to commit (or
/// deliberately drop) through [`Web::apply`]. This split is what lets the
/// crawler fan out over `&World` across threads, and it encodes a
/// methodological invariant from the paper: the measurement apparatus
/// observes the market without perturbing it — only the purchase
/// programme (§4.3), which knowingly places test orders, applies effects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SideEffect {
    /// A visitor reached `/checkout` on `host` and the storefront handed
    /// out its next order number. Committing this advances the store's
    /// monotone order counter — the invariant purchase-pair estimation
    /// (§4.3.1) rests on.
    OrderAllocated {
        /// The storefront's serving domain at fetch time.
        host: DomainName,
    },
}

/// The read plane: serving any request without changing the world.
///
/// Implemented by `ss-eco`'s `World` over `&self`. Every mutation the
/// visit implies is returned as [`SideEffect`]s alongside the response.
pub trait Fetcher {
    /// Serves one request, returning the response and the effects the
    /// visit would have on the world.
    fn fetch(&self, req: &Request) -> (Response, Vec<SideEffect>);

    /// Follows redirects (HTTP only — JS redirects need a renderer) up to
    /// `max_hops`, returning the chain of URLs visited, the final
    /// response, and the accumulated effects of every hop. The chain
    /// always contains at least the request URL.
    fn fetch_following(
        &self,
        req: &Request,
        max_hops: usize,
    ) -> (Vec<Url>, Response, Vec<SideEffect>) {
        let mut chain = vec![req.url.clone()];
        let mut current = req.clone();
        let (mut resp, mut effects) = self.fetch(&current);
        let mut hops = 0;
        while resp.is_redirect() && hops < max_hops {
            let next = resp.location.clone().expect("is_redirect checked location");
            // The redirect carries the original referrer onward, which is
            // how storefronts see search-engine referrers via doorways.
            current = Request {
                url: next.clone(),
                user_agent: current.user_agent,
                referrer: current.referrer.clone(),
            };
            chain.push(next);
            let (next_resp, next_effects) = self.fetch(&current);
            resp = next_resp;
            effects.extend(next_effects);
            hops += 1;
        }
        (chain, resp, effects)
    }
}

/// The tick plane: a fetchable world that can also commit fetch effects.
///
/// `apply` is the single choke point through which every fetch-time
/// mutation flows. Callers that *should* perturb the world (the purchase
/// programme, the order sampler) use the `*_apply` conveniences; the
/// crawler and AWStats sweeps stay on [`Fetcher`] and drop effects.
pub trait Web: Fetcher {
    /// Commits the state changes of one or more fetches, in order.
    fn apply(&mut self, effects: Vec<SideEffect>);

    /// Fetches and immediately commits the visit's effects — the behavior
    /// of a real visitor hitting the live site.
    fn fetch_apply(&mut self, req: &Request) -> Response {
        let (resp, effects) = self.fetch(req);
        self.apply(effects);
        resp
    }

    /// [`Fetcher::fetch_following`], committing effects of every hop.
    fn fetch_following_apply(&mut self, req: &Request, max_hops: usize) -> (Vec<Url>, Response) {
        let (chain, resp, effects) = self.fetch_following(req, max_hops);
        self.apply(effects);
        (chain, resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::DomainName;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    /// A toy web for exercising the default redirect-following logic and
    /// the effect-accumulation contract.
    struct ToyWeb;
    impl Fetcher for ToyWeb {
        fn fetch(&self, req: &Request) -> (Response, Vec<SideEffect>) {
            let host = req.url.host.clone();
            match req.url.host.as_str() {
                "a.com" => (Response::redirect(url("http://b.com/")), Vec::new()),
                "b.com" => (
                    Response::redirect(url("http://c.com/")),
                    vec![SideEffect::OrderAllocated { host }],
                ),
                "loop.com" => (Response::redirect(url("http://loop.com/")), Vec::new()),
                _ => (
                    Response::ok(format!("<p>host {}</p>", req.url.host)),
                    vec![SideEffect::OrderAllocated { host }],
                ),
            }
        }
    }

    #[test]
    fn follows_redirect_chain_and_accumulates_effects() {
        let web = ToyWeb;
        let (chain, resp, effects) =
            web.fetch_following(&Request::browser(url("http://a.com/")), 10);
        let hosts: Vec<&str> = chain.iter().map(|u| u.host.as_str()).collect();
        assert_eq!(hosts, ["a.com", "b.com", "c.com"]);
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("c.com"));
        // Effects arrive in hop order: b.com's, then c.com's.
        let effect_hosts: Vec<&str> = effects
            .iter()
            .map(|SideEffect::OrderAllocated { host }| host.as_str())
            .collect();
        assert_eq!(effect_hosts, ["b.com", "c.com"]);
    }

    #[test]
    fn redirect_loops_are_bounded() {
        let web = ToyWeb;
        let (chain, resp, _) = web.fetch_following(&Request::browser(url("http://loop.com/")), 5);
        assert_eq!(chain.len(), 6);
        assert!(resp.is_redirect());
    }

    #[test]
    fn fetch_apply_commits_what_fetch_reports() {
        /// A web that counts committed orders, mutable only via `apply`.
        struct CountingWeb {
            committed: u32,
        }
        impl Fetcher for CountingWeb {
            fn fetch(&self, req: &Request) -> (Response, Vec<SideEffect>) {
                (
                    Response::ok(format!("order {}", self.committed + 1)),
                    vec![SideEffect::OrderAllocated {
                        host: req.url.host.clone(),
                    }],
                )
            }
        }
        impl Web for CountingWeb {
            fn apply(&mut self, effects: Vec<SideEffect>) {
                self.committed += effects.len() as u32;
            }
        }

        let mut web = CountingWeb { committed: 0 };
        let r1 = web.fetch_apply(&Request::browser(url("http://s.com/checkout")));
        let r2 = web.fetch_apply(&Request::browser(url("http://s.com/checkout")));
        assert_eq!(r1.body, "order 1");
        assert_eq!(r2.body, "order 2");
        // A pure fetch observes without advancing the counter.
        let (r3, effects) = web.fetch(&Request::browser(url("http://s.com/checkout")));
        let (r4, _) = web.fetch(&Request::browser(url("http://s.com/checkout")));
        assert_eq!(r3.body, r4.body);
        assert_eq!(effects.len(), 1);
        assert_eq!(web.committed, 2);
    }

    #[test]
    fn request_constructors() {
        let u = url("http://x.com/p");
        let r = Request::browser_from(u.clone(), url("http://google.com/search?q=x"));
        assert_eq!(r.user_agent, UserAgent::Browser);
        assert_eq!(
            r.referrer.as_ref().unwrap().host,
            DomainName::parse("google.com").unwrap()
        );
        assert_eq!(Request::crawler(u).user_agent, UserAgent::GoogleBot);
    }

    #[test]
    fn response_helpers() {
        assert!(Response::redirect(url("http://x.com/")).is_redirect());
        assert!(!Response::ok(String::new()).is_redirect());
        assert_eq!(Response::not_found().status, 404);
    }
}

//! Iframe-cloaking payload generation at four obfuscation levels.
//!
//! §3.1.1: "The JavaScript implementation is frequently obfuscated to
//! further complicate analysis and in some cases the iframe itself is
//! dynamically generated." The four levels here span that spectrum; all of
//! them produce the same observable effect when rendered — a full-viewport
//! iframe loading the store — which is exactly the invariant the VanGogh
//! detector (and our property tests) check.

use rand::Rng;
use ss_types::rng::SimRng;

/// Builds the iframe-cloaking `<script>` body for `target` at the given
/// obfuscation level (clamped to 0–3).
///
/// * **0** — no JS at all: the caller should emit a static full-size
///   `<iframe>` tag instead (returns an empty string).
/// * **1** — straightforward DOM construction.
/// * **2** — the target URL and attribute names are split into shuffled
///   string fragments reassembled at runtime.
/// * **3** — the level-1 program itself is encoded as a character-code
///   array and executed through `eval(String.fromCharCode(…))`.
pub fn iframe_payload(target: &str, level: u8, rng: &mut SimRng) -> String {
    match level {
        0 => String::new(),
        1 => plain_payload(target, rng),
        2 => split_payload(target, rng),
        _ => charcode_payload(target, rng),
    }
}

/// The static iframe tag used at level 0 (and as the rendered ground truth
/// shape). Occupies the full viewport per the paper's detection criterion.
pub fn static_iframe(target: &str) -> String {
    format!(
        r#"<iframe src="{}" width="100%" height="100%" frameborder="0" scrolling="auto"></iframe>"#,
        crate::html::escape_attr(target)
    )
}

fn var_name(rng: &mut SimRng) -> String {
    const HEADS: &[&str] = &["f", "el", "fr", "w", "q", "z", "node", "box"];
    format!(
        "{}{}",
        HEADS[rng.gen_range(0..HEADS.len())],
        rng.gen_range(0..100)
    )
}

fn plain_payload(target: &str, rng: &mut SimRng) -> String {
    let v = var_name(rng);
    format!(
        "var {v} = document.createElement('iframe');\n\
         {v}.setAttribute('src', '{target}');\n\
         {v}.setAttribute('width', '100%');\n\
         {v}.setAttribute('height', '100%');\n\
         {v}.setAttribute('frameborder', '0');\n\
         document.body.appendChild({v});"
    )
}

/// Splits `s` into 2–4 character fragments as a JS array literal.
fn fragments(s: &str, rng: &mut SimRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    let mut parts = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let take = rng.gen_range(2..5).min(chars.len() - i);
        let frag: String = chars[i..i + take].iter().collect();
        parts.push(format!(
            "'{}'",
            frag.replace('\\', "\\\\").replace('\'', "\\'")
        ));
        i += take;
    }
    format!("[{}]", parts.join(","))
}

fn split_payload(target: &str, rng: &mut SimRng) -> String {
    let v = var_name(rng);
    let u = var_name(rng);
    let url_parts = fragments(target, rng);
    let tag_parts = fragments("iframe", rng);
    format!(
        "var {u} = {url_parts}.join('');\n\
         var tg = {tag_parts}.join('');\n\
         var {v} = document.createElement(tg);\n\
         {v}.src = {u};\n\
         {v}.width = '100%';\n\
         {v}.height = '100%';\n\
         document.body.appendChild({v});"
    )
}

fn charcode_payload(target: &str, rng: &mut SimRng) -> String {
    let inner = plain_payload(target, rng);
    let codes: Vec<String> = inner.chars().map(|c| (c as u32).to_string()).collect();
    // Break the code list across several vars to imitate real packers.
    let chunk = (codes.len() / 3).max(1);
    let mut decls = Vec::new();
    let mut names = Vec::new();
    for (i, slice) in codes.chunks(chunk).enumerate() {
        let name = format!("c{i}");
        decls.push(format!("var {name} = [{}];", slice.join(",")));
        names.push(name);
    }
    let concat = names.join(".concat(") + &")".repeat(names.len().saturating_sub(1));
    format!(
        "{}\nvar all = {};\nvar src = '';\n\
         for (var i = 0; i < all.length; i++) {{ src = src + String.fromCharCode(all[i]); }}\n\
         eval(src);",
        decls.join("\n"),
        concat
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::UserAgent;
    use crate::js::render::render;
    use ss_types::rng::sub_rng;

    const TARGET: &str = "http://cocovipbags.com/";

    /// Renders a page embedding the payload and asserts the full-viewport
    /// iframe pointing at the target appears.
    fn assert_payload_renders(level: u8) {
        let mut rng = sub_rng(99, &format!("obf/{level}"));
        let html = if level == 0 {
            format!("<html><body>{}</body></html>", static_iframe(TARGET))
        } else {
            let js = iframe_payload(TARGET, level, &mut rng);
            format!("<html><body><p>door</p><script>{js}</script></body></html>")
        };
        let r = render(&html, "http://door.com/x", UserAgent::Browser, None);
        assert_eq!(r.script_errors, 0, "level {level} payload failed to run");
        let frames = r.iframes();
        assert_eq!(frames.len(), 1, "level {level}: expected one iframe");
        let (w, h, src) = &frames[0];
        assert_eq!(src, TARGET, "level {level}");
        assert_eq!(w, "100%");
        assert_eq!(h, "100%");
    }

    #[test]
    fn all_levels_render_to_fullpage_iframe() {
        for level in 0..=3 {
            assert_payload_renders(level);
        }
    }

    #[test]
    fn higher_levels_hide_the_url_in_source() {
        let mut rng = sub_rng(5, "hide");
        let l1 = iframe_payload(TARGET, 1, &mut rng);
        assert!(l1.contains(TARGET), "level 1 is plain");
        let mut rng = sub_rng(5, "hide2");
        let l2 = iframe_payload(TARGET, 2, &mut rng);
        assert!(!l2.contains(TARGET), "level 2 must split the URL");
        let mut rng = sub_rng(5, "hide3");
        let l3 = iframe_payload(TARGET, 3, &mut rng);
        assert!(!l3.contains(TARGET), "level 3 must encode the URL");
        assert!(
            !l3.contains("createElement"),
            "level 3 hides the DOM calls too"
        );
    }

    #[test]
    fn payloads_are_deterministic() {
        let a = iframe_payload(TARGET, 2, &mut sub_rng(1, "d"));
        let b = iframe_payload(TARGET, 2, &mut sub_rng(1, "d"));
        assert_eq!(a, b);
    }

    #[test]
    fn level_zero_is_static() {
        let mut rng = sub_rng(1, "z");
        assert!(iframe_payload(TARGET, 0, &mut rng).is_empty());
        assert!(static_iframe(TARGET).contains("width=\"100%\""));
    }
}

//! AWStats report pages.
//!
//! §4.4: a number of storefronts "left their AWStats pages publicly
//! accessible", letting the study fetch per-site visitor statistics (number
//! of visits, pages per visit, referrers, …) from the default AWStats URL.
//! This generator renders the subset of an AWStats monthly report that the
//! `ss-orders` analytics scraper parses back out.

/// Aggregate traffic numbers for one reporting period of one site.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficReport {
    /// Period label, e.g. "Jul 2014".
    pub period: String,
    /// Unique visitors.
    pub unique_visitors: u64,
    /// Number of visits.
    pub visits: u64,
    /// HTML pages served.
    pub pages: u64,
    /// Hits (pages + assets).
    pub hits: u64,
    /// Referrer hosts with visit counts (search pages and doorways).
    pub referrers: Vec<(String, u64)>,
    /// Share of visits with no referrer ("direct / bookmark / unknown").
    pub direct_visits: u64,
    /// Per-day rows (the "Days of month" section): `(ISO date, visits,
    /// pages)`.
    pub daily: Vec<(String, u64, u64)>,
}

/// Renders the AWStats-style report page for a site.
pub fn page(site: &str, report: &TrafficReport) -> String {
    let mut body = format!(
        "<div class=\"awstats\"><h1>Statistics for {}</h1>\
         <h2>Summary — <span id=\"period\">{}</span></h2>\
         <table id=\"summary\">\
         <tr><th>Unique visitors</th><td id=\"unique\">{}</td></tr>\
         <tr><th>Number of visits</th><td id=\"visits\">{}</td></tr>\
         <tr><th>Pages</th><td id=\"pages\">{}</td></tr>\
         <tr><th>Hits</th><td id=\"hits\">{}</td></tr>\
         </table>",
        crate::html::escape_text(site),
        crate::html::escape_text(&report.period),
        report.unique_visitors,
        report.visits,
        report.pages,
        report.hits,
    );
    body.push_str(
        "<h2>Connect to site from</h2><table id=\"referrers\">\
         <tr><th>Origin</th><th>Visits</th></tr>",
    );
    body.push_str(&format!(
        "<tr class=\"direct\"><td>Direct address / Bookmark</td><td>{}</td></tr>",
        report.direct_visits
    ));
    for (host, n) in &report.referrers {
        body.push_str(&format!(
            "<tr class=\"referrer\"><td class=\"host\">{}</td><td class=\"count\">{}</td></tr>",
            crate::html::escape_text(host),
            n
        ));
    }
    body.push_str("</table>");
    body.push_str(
        "<h2>Days of month</h2><table id=\"days\">\
         <tr><th>Day</th><th>Visits</th><th>Pages</th></tr>",
    );
    for (date, visits, pages) in &report.daily {
        body.push_str(&format!(
            "<tr class=\"dayrow\"><td class=\"date\">{}</td><td class=\"v\">{}</td><td class=\"p\">{}</td></tr>",
            crate::html::escape_text(date),
            visits,
            pages
        ));
    }
    body.push_str("</table></div>");
    super::shell(&format!("AWStats — {site}"), "", &body)
}

/// The conventional public AWStats path for `site` (§4.4 shows the pattern
/// `/awstats/awstats.pl?config=<site>`).
pub fn default_path(site: &str) -> (String, String) {
    ("/awstats/awstats.pl".to_owned(), format!("config={site}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html::Document;

    fn report() -> TrafficReport {
        TrafficReport {
            period: "Jul 2014".into(),
            unique_visitors: 18_200,
            visits: 46_700,
            pages: 261_520,
            hits: 980_001,
            referrers: vec![
                ("google.com".into(), 14_000),
                ("door1.com".into(), 6_000),
                ("door2.com".into(), 4_100),
            ],
            direct_visits: 18_680,
            daily: vec![
                ("2014-07-01".into(), 1_500, 8_400),
                ("2014-07-02".into(), 1_600, 8_960),
            ],
        }
    }

    #[test]
    fn page_encodes_summary_fields() {
        let html = page("cocovipbags.com", &report());
        let doc = Document::parse(&html);
        assert_eq!(doc.by_id("visits").unwrap().text_content(), "46700");
        assert_eq!(doc.by_id("pages").unwrap().text_content(), "261520");
        assert_eq!(doc.by_id("period").unwrap().text_content(), "Jul 2014");
    }

    #[test]
    fn referrer_rows_are_parseable() {
        let html = page("s.com", &report());
        let doc = Document::parse(&html);
        let rows: Vec<(String, String)> = doc
            .find_all("tr")
            .into_iter()
            .filter(|tr| tr.attr("class") == Some("referrer"))
            .map(|tr| {
                let tds = tr
                    .children
                    .iter()
                    .filter_map(|n| n.as_element())
                    .collect::<Vec<_>>();
                (tds[0].text_content(), tds[1].text_content())
            })
            .collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], ("google.com".to_owned(), "14000".to_owned()));
    }

    #[test]
    fn daily_rows_render() {
        let html = page("s.com", &report());
        let doc = Document::parse(&html);
        let rows: Vec<&crate::html::Element> = doc
            .find_all("tr")
            .into_iter()
            .filter(|tr| tr.attr("class") == Some("dayrow"))
            .collect();
        assert_eq!(rows.len(), 2);
        let tds: Vec<String> = rows[0]
            .children
            .iter()
            .filter_map(|n| n.as_element())
            .map(|td| td.text_content())
            .collect();
        assert_eq!(tds, vec!["2014-07-01", "1500", "8400"]);
    }

    #[test]
    fn default_path_matches_awstats_convention() {
        let (path, query) = default_path("shop.com");
        assert_eq!(path, "/awstats/awstats.pl");
        assert_eq!(query, "config=shop.com");
    }
}

//! Seeded filler text and naming utilities.
//!
//! The generators need prose that is deterministic, cheap, and *lexically
//! distinct across sites* so the Dagger semantic diff and the bag-of-words
//! classifier have realistic material to work on. We synthesize text from
//! small word pools mixed by a seeded RNG instead of shipping corpora.

use rand::Rng;
use ss_types::rng::{sub_rng, SimRng};

/// Common filler words for sentence assembly.
const FILLER: &[&str] = &[
    "quality",
    "classic",
    "premium",
    "genuine",
    "fashion",
    "style",
    "collection",
    "season",
    "leather",
    "design",
    "authentic",
    "discount",
    "shipping",
    "delivery",
    "guarantee",
    "original",
    "luxury",
    "series",
    "limited",
    "edition",
    "popular",
    "newest",
    "womens",
    "mens",
    "official",
    "online",
    "bargain",
    "wholesale",
    "retail",
    "clearance",
    "exclusive",
    "handmade",
    "vintage",
    "comfort",
    "durable",
    "lightweight",
    "waterproof",
    "signature",
    "boutique",
    "catalog",
];

/// Neutral words for legitimate-site prose.
const NEUTRAL: &[&str] = &[
    "report",
    "community",
    "article",
    "review",
    "update",
    "guide",
    "story",
    "event",
    "local",
    "weather",
    "travel",
    "garden",
    "recipe",
    "family",
    "school",
    "music",
    "festival",
    "history",
    "library",
    "market",
    "science",
    "health",
    "council",
    "project",
    "photo",
    "journal",
    "forum",
];

/// Generates a deterministic RNG for a page-generation context.
pub fn page_rng(seed: u64, label: &str) -> SimRng {
    sub_rng(seed, label)
}

/// Picks `n` words from `pool` (with repetition) as a space-joined string.
pub fn pick_words(rng: &mut SimRng, pool: &[&str], n: usize) -> String {
    (0..n)
        .map(|_| pool[rng.gen_range(0..pool.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

/// A sentence of commerce-flavoured filler.
pub fn commerce_sentence(rng: &mut SimRng) -> String {
    let n = rng.gen_range(6..14);
    let mut s = pick_words(rng, FILLER, n);
    capitalize(&mut s);
    s.push('.');
    s
}

/// A sentence of neutral prose for legitimate sites.
pub fn neutral_sentence(rng: &mut SimRng) -> String {
    let n = rng.gen_range(6..14);
    let mut s = pick_words(rng, NEUTRAL, n);
    capitalize(&mut s);
    s.push('.');
    s
}

/// A paragraph of `k` sentences.
pub fn paragraph(rng: &mut SimRng, k: usize, commerce: bool) -> String {
    (0..k)
        .map(|_| {
            if commerce {
                commerce_sentence(rng)
            } else {
                neutral_sentence(rng)
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// A pseudo-random lower-case token (for ids, cookie values, merchant ids).
pub fn token(rng: &mut SimRng, len: usize) -> String {
    const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    (0..len)
        .map(|_| ALPHA[rng.gen_range(0..ALPHA.len())] as char)
        .collect()
}

/// A synthetic product name for `brand`.
pub fn product_name(rng: &mut SimRng, brand: &str) -> String {
    let line = [
        "Classic", "Sport", "Heritage", "Premier", "Urban", "Metro", "Royal", "Alpine",
    ];
    let item = [
        "Tote", "Jacket", "Sneaker", "Boot", "Wallet", "Watch", "Hoodie", "Scarf", "Bag",
    ];
    format!(
        "{} {} {} {}",
        brand,
        line[rng.gen_range(0..line.len())],
        item[rng.gen_range(0..item.len())],
        rng.gen_range(100..9999)
    )
}

/// A plausible counterfeit price: a deep discount off a luxury figure.
pub fn price(rng: &mut SimRng) -> String {
    format!("${}.{:02}", rng.gen_range(49..399), rng.gen_range(0..100))
}

fn capitalize(s: &mut String) {
    if let Some(first) = s.get(0..1) {
        let up = first.to_ascii_uppercase();
        s.replace_range(0..1, &up);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_label() {
        let mut a = page_rng(7, "x");
        let mut b = page_rng(7, "x");
        assert_eq!(commerce_sentence(&mut a), commerce_sentence(&mut b));
        let mut c = page_rng(7, "y");
        assert_ne!(
            commerce_sentence(&mut page_rng(7, "x")),
            commerce_sentence(&mut c)
        );
    }

    #[test]
    fn sentences_are_capitalized_and_terminated() {
        let mut rng = page_rng(1, "s");
        let s = neutral_sentence(&mut rng);
        assert!(s.ends_with('.'));
        assert!(s.chars().next().unwrap().is_ascii_uppercase());
    }

    #[test]
    fn token_has_requested_length() {
        let mut rng = page_rng(2, "t");
        assert_eq!(token(&mut rng, 12).len(), 12);
    }

    #[test]
    fn product_mentions_brand() {
        let mut rng = page_rng(3, "p");
        assert!(product_name(&mut rng, "Moncler").contains("Moncler"));
    }

    #[test]
    fn paragraph_joins_sentences() {
        let mut rng = page_rng(4, "g");
        let p = paragraph(&mut rng, 3, true);
        assert_eq!(p.matches('.').count(), 3);
    }
}

//! Counterfeit storefront pages, built from campaign-specific templates.
//!
//! §4.2.1 explains why HTML features identify campaigns: "campaigns often
//! develop in-house templates for the large-scale deployment of online
//! storefronts (e.g., customized templates for Zen Cart or Magento
//! providing a certain look and feel)". We model that directly:
//!
//! * every campaign owns a [`StoreTemplate`] — a platform flavour, an
//!   analytics provider, a payment processor, a CSS class prefix and a set
//!   of signature tokens baked into tag-attribute-value triplets;
//! * every *store* of the campaign renders the shared template with
//!   per-store noise (names, products, prices), so stores of one campaign
//!   look alike but not identical — the exact situation the paper's
//!   classifier exploits.
//!
//! The store detector (§4.1.3) keys on cookies from payment processors,
//! e-commerce platforms and analytics, plus "cart"/"checkout" substrings —
//! all of which these pages produce.

use rand::Rng;

use super::words;
use crate::http::Cookie;

/// E-commerce platform flavour a template is built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Zen Cart-style markup and `zenid` session cookie.
    ZenCart,
    /// Magento-style markup and `frontend` cookie.
    Magento,
    /// A hand-rolled PHP cart.
    CustomCart,
}

impl Platform {
    /// The session cookie this platform sets.
    pub fn cookie(self) -> Cookie {
        match self {
            Platform::ZenCart => Cookie {
                name: "zenid".into(),
                value: "sess".into(),
            },
            Platform::Magento => Cookie {
                name: "frontend".into(),
                value: "sess".into(),
            },
            Platform::CustomCart => Cookie {
                name: "PHPSESSID".into(),
                value: "sess".into(),
            },
        }
    }

    /// A marker string embedded in the markup (meta generator).
    pub fn generator(self) -> &'static str {
        match self {
            Platform::ZenCart => "Zen Cart",
            Platform::Magento => "Magento",
            Platform::CustomCart => "ShopBuilder 2.1",
        }
    }
}

/// Web-analytics provider embedded in store pages (§4.1.3 lists Ajstat,
/// CNZZ; §4.2.3 adds 51.la and statcounter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Analytics {
    /// cnzz.com tracker.
    Cnzz,
    /// 51.la tracker.
    La51,
    /// Ajstat tracker.
    Ajstat,
    /// statcounter.com tracker.
    StatCounter,
}

impl Analytics {
    /// The tracker script src marker.
    pub fn script_host(self) -> &'static str {
        match self {
            Analytics::Cnzz => "s11.cnzz.com",
            Analytics::La51 => "js.users.51.la",
            Analytics::Ajstat => "ajstat.com",
            Analytics::StatCounter => "statcounter.com",
        }
    }

    /// The cookie the tracker sets.
    pub fn cookie(self) -> Cookie {
        let name = match self {
            Analytics::Cnzz => "cnzz_a",
            Analytics::La51 => "la51_vid",
            Analytics::Ajstat => "ajstat_uid",
            Analytics::StatCounter => "sc_is_visitor",
        };
        Cookie {
            name: name.into(),
            value: "v".into(),
        }
    }
}

/// Payment processor the storefront engages directly (§3.1.2: "merchant
/// identifiers exposed directly in the HTML source on storefront pages").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaymentProcessor {
    /// "Realypay" (named in §4.1.3).
    Realypay,
    /// "Mallpayment" (named in §4.1.3).
    Mallpayment,
    /// A third processor to diversify the population.
    GlobalBill,
}

impl PaymentProcessor {
    /// Marker string and cookie name base.
    pub fn name(self) -> &'static str {
        match self {
            PaymentProcessor::Realypay => "realypay",
            PaymentProcessor::Mallpayment => "mallpayment",
            PaymentProcessor::GlobalBill => "globalbill",
        }
    }

    /// The cookie the payment widget sets.
    pub fn cookie(self) -> Cookie {
        Cookie {
            name: format!("{}_tk", self.name()),
            value: "tk".into(),
        }
    }

    /// The bank (by BIN country) that settles for this processor — §4.3.2:
    /// purchases cleared through three banks, two in China, one in Korea.
    pub fn settling_bank(self) -> (&'static str, &'static str) {
        match self {
            PaymentProcessor::Realypay => ("622202", "Bank of Suzhou (CN)"),
            PaymentProcessor::Mallpayment => ("621483", "Guangfa Bank (CN)"),
            PaymentProcessor::GlobalBill => ("540926", "Hanmi Card (KR)"),
        }
    }
}

/// A campaign's storefront template: the shared "look and feel" that makes
/// its stores classifiable.
#[derive(Debug, Clone)]
pub struct StoreTemplate {
    /// Platform flavour.
    pub platform: Platform,
    /// Analytics provider.
    pub analytics: Analytics,
    /// Payment processor.
    pub payment: PaymentProcessor,
    /// Campaign-specific CSS class prefix (e.g. `biglove-`).
    pub css_prefix: String,
    /// Campaign-specific tokens baked into attributes (template name,
    /// wrapper ids, footer slogans) — the classifier's strongest signal.
    pub signature_tokens: Vec<String>,
    /// Layout variant, adding structural diversity between campaigns that
    /// share a platform.
    pub layout: u8,
}

impl StoreTemplate {
    /// Derives a campaign's template deterministically from its name.
    pub fn for_campaign(name: &str, seed: u64) -> Self {
        let mut rng = words::page_rng(seed, &format!("template/{name}"));
        let platforms = [Platform::ZenCart, Platform::Magento, Platform::CustomCart];
        let analytics = [
            Analytics::Cnzz,
            Analytics::La51,
            Analytics::Ajstat,
            Analytics::StatCounter,
        ];
        let payments = [
            PaymentProcessor::Realypay,
            PaymentProcessor::Mallpayment,
            PaymentProcessor::GlobalBill,
        ];
        let slug: String = name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        let slug = if slug.is_empty() {
            "tpl".to_owned()
        } else {
            slug
        };
        let signature_tokens = vec![
            format!("{}-theme-{}", slug, words::token(&mut rng, 4)),
            format!("tpl-{}", words::token(&mut rng, 6)),
            format!("{}wrap", words::token(&mut rng, 5)),
        ];
        StoreTemplate {
            platform: platforms[rng.gen_range(0..platforms.len())],
            analytics: analytics[rng.gen_range(0..analytics.len())],
            payment: payments[rng.gen_range(0..payments.len())],
            css_prefix: slug,
            signature_tokens,
            layout: rng.gen_range(0..4),
        }
    }
}

/// Per-store rendering context.
#[derive(Debug, Clone)]
pub struct StoreCtx<'a> {
    /// The store's current domain.
    pub domain: &'a str,
    /// Display name, e.g. "coco vip bags".
    pub store_name: &'a str,
    /// The campaign template.
    pub template: &'a StoreTemplate,
    /// Brands on sale.
    pub brands: &'a [&'a str],
    /// Locale suffix ("us", "uk", "jp", …) for localized storefronts.
    pub locale: &'a str,
    /// Merchant id with the payment processor (exposed in markup).
    pub merchant_id: &'a str,
    /// Per-store seed (varies products/noise between sibling stores).
    pub seed: u64,
}

/// Cookies a storefront visit sets — the store detector's first heuristic.
pub fn cookies(t: &StoreTemplate) -> Vec<Cookie> {
    vec![
        t.platform.cookie(),
        t.analytics.cookie(),
        t.payment.cookie(),
    ]
}

/// The storefront landing page (product grid + cart/checkout chrome).
pub fn home_page(ctx: &StoreCtx<'_>) -> String {
    let t = ctx.template;
    let mut rng = words::page_rng(ctx.seed, "store/home");
    let title = format!(
        "{} — {} official outlet",
        ctx.store_name,
        ctx.brands.first().unwrap_or(&"")
    );

    let head = format!(
        "<meta name=\"generator\" content=\"{}\">\
         <link rel=\"stylesheet\" href=\"/css/{}.css\">\
         <script src=\"http://{}/z_stat.js\"></script>",
        t.platform.generator(),
        t.signature_tokens[0],
        t.analytics.script_host(),
    );

    let mut body = String::new();
    body.push_str(&format!(
        "<div id=\"{}\" class=\"{}-page layout{}\">",
        t.signature_tokens[2], t.css_prefix, t.layout
    ));
    body.push_str(&format!(
        "<div class=\"{}-header\"><h1>{}</h1>\
         <a class=\"{}-cartlink\" href=\"/cart\">View Cart</a> \
         <a href=\"/checkout\">Checkout</a></div>",
        t.css_prefix,
        crate::html::escape_text(ctx.store_name),
        t.css_prefix
    ));

    body.push_str(&format!(
        "<div class=\"{}-grid\" data-template=\"{}\">",
        t.css_prefix, t.signature_tokens[1]
    ));
    let n_products = 8 + (ctx.seed % 5) as usize;
    for i in 0..n_products {
        let brand = ctx.brands[i % ctx.brands.len().max(1)];
        body.push_str(&format!(
            "<div class=\"{}-product\"><h3>{}</h3><span class=\"price\">{}</span>\
             <a href=\"/product/{}\">Add to cart</a></div>",
            t.css_prefix,
            crate::html::escape_text(&words::product_name(&mut rng, brand)),
            words::price(&mut rng),
            i
        ));
    }
    body.push_str("</div>");

    // Payment processor widget + merchant id (in an HTML comment, as seen
    // in the wild per §3.1.2).
    body.push_str(&format!(
        "<!-- {} merchant: {} -->\
         <div class=\"payments\"><img src=\"http://img.{}.com/badge.png\" alt=\"{}\"></div>",
        t.payment.name(),
        ctx.merchant_id,
        t.payment.name(),
        t.payment.name()
    ));

    body.push_str(&format!(
        "<div class=\"{}-footer\">{} | locale: {} | {}</div></div>",
        t.css_prefix,
        crate::html::escape_text(&words::commerce_sentence(&mut rng)),
        ctx.locale,
        t.signature_tokens[0]
    ));

    super::shell(&title, &head, &body)
}

/// A product detail page.
pub fn product_page(ctx: &StoreCtx<'_>, product_idx: u32) -> String {
    let t = ctx.template;
    let mut rng = words::page_rng(ctx.seed, &format!("store/product/{product_idx}"));
    let brand = ctx.brands[(product_idx as usize) % ctx.brands.len().max(1)];
    let name = words::product_name(&mut rng, brand);
    let body = format!(
        "<div class=\"{}-product-detail\" data-template=\"{}\">\
         <h1>{}</h1><p>{}</p><span class=\"price\">{}</span>\
         <form action=\"/cart\" method=\"get\"><button>Add to cart</button></form>\
         <a href=\"/checkout\">Proceed to checkout</a></div>",
        t.css_prefix,
        t.signature_tokens[1],
        crate::html::escape_text(&name),
        crate::html::escape_text(&words::paragraph(&mut rng, 3, true)),
        words::price(&mut rng),
    );
    super::shell(&name, "", &body)
}

/// The checkout confirmation page, exposing the freshly allocated order
/// number — the signal the purchase-pair technique samples (§4.3.1).
pub fn checkout_page(ctx: &StoreCtx<'_>, order_number: u64) -> String {
    let t = ctx.template;
    let body = format!(
        "<div class=\"{}-checkout\">\
         <h1>Checkout — {}</h1>\
         <p>Your order number is <b id=\"order-no\">{}</b>.</p>\
         <p>Enter payment details to complete your purchase.</p>\
         <form action=\"http://pay.{}.com/charge\" method=\"post\">\
         <input name=\"merchant\" value=\"{}\">\
         <input name=\"card\"><input name=\"cvv\"><button>Pay now</button></form></div>",
        t.css_prefix,
        crate::html::escape_text(ctx.store_name),
        order_number,
        t.payment.name(),
        crate::html::escape_attr(ctx.merchant_id),
    );
    super::shell("Checkout", "", &body)
}

/// The checkout page when the store's processor has cut it off (the
/// §4.3.2 payment-intervention extension): an order number still gets
/// allocated — purchase-pair sampling keeps working — but no payment form
/// renders, so real purchases fail.
pub fn checkout_unavailable_page(ctx: &StoreCtx<'_>, order_number: u64) -> String {
    let t = ctx.template;
    let body = format!(
        "<div class=\"{}-checkout\">\
         <h1>Checkout — {}</h1>\
         <p>Your order number is <b id=\"order-no\">{}</b>.</p>\
         <p id=\"payment-unavailable\">Payment is temporarily unavailable. \
         Please contact customer service.</p></div>",
        t.css_prefix,
        crate::html::escape_text(ctx.store_name),
        order_number,
    );
    super::shell("Checkout", "", &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html::Document;

    fn template() -> StoreTemplate {
        StoreTemplate::for_campaign("BIGLOVE", 42)
    }

    fn ctx<'a>(t: &'a StoreTemplate) -> StoreCtx<'a> {
        StoreCtx {
            domain: "cocovipbags.com",
            store_name: "Coco Vip Bags",
            template: t,
            brands: &["Chanel", "Louis Vuitton"],
            locale: "us",
            merchant_id: "m-889231",
            seed: 7,
        }
    }

    #[test]
    fn home_page_has_cart_checkout_and_trackers() {
        let t = template();
        let html = home_page(&ctx(&t));
        let lower = html.to_ascii_lowercase();
        assert!(lower.contains("cart"));
        assert!(lower.contains("checkout"));
        assert!(html.contains(t.analytics.script_host()));
        assert!(html.contains(t.platform.generator()));
        assert!(html.contains("m-889231"));
    }

    #[test]
    fn cookies_cover_all_three_heuristic_classes() {
        let t = template();
        let names: Vec<String> = cookies(&t).into_iter().map(|c| c.name).collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&t.platform.cookie().name));
        assert!(names.contains(&t.analytics.cookie().name));
        assert!(names.contains(&t.payment.cookie().name));
    }

    #[test]
    fn sibling_stores_share_signature_but_differ_in_noise() {
        let t = template();
        let a = home_page(&StoreCtx {
            seed: 1,
            domain: "a.com",
            ..ctx(&t)
        });
        let b = home_page(&StoreCtx {
            seed: 2,
            domain: "b.com",
            ..ctx(&t)
        });
        assert_ne!(a, b, "per-store noise must differ");
        for tok in &t.signature_tokens {
            assert!(
                a.contains(tok) && b.contains(tok),
                "signature token {tok} must persist"
            );
        }
    }

    #[test]
    fn different_campaigns_get_different_templates() {
        let a = StoreTemplate::for_campaign("BIGLOVE", 42);
        let b = StoreTemplate::for_campaign("MSVALIDATE", 42);
        assert_ne!(a.signature_tokens, b.signature_tokens);
        assert_ne!(a.css_prefix, b.css_prefix);
    }

    #[test]
    fn checkout_exposes_order_number() {
        let t = template();
        let html = checkout_page(&ctx(&t), 48_821);
        let doc = Document::parse(&html);
        assert_eq!(doc.by_id("order-no").unwrap().text_content(), "48821");
    }

    #[test]
    fn unavailable_checkout_has_number_but_no_form() {
        let t = template();
        let html = checkout_unavailable_page(&ctx(&t), 991);
        let doc = Document::parse(&html);
        assert_eq!(doc.by_id("order-no").unwrap().text_content(), "991");
        assert!(doc.by_id("payment-unavailable").is_some());
        assert!(doc.find_all("form").is_empty());
    }

    #[test]
    fn product_page_links_to_checkout() {
        let t = template();
        let html = product_page(&ctx(&t), 3);
        assert!(html.contains("/checkout"));
    }

    #[test]
    fn template_derivation_is_deterministic() {
        let a = StoreTemplate::for_campaign("KEY", 9);
        let b = StoreTemplate::for_campaign("KEY", 9);
        assert_eq!(a.signature_tokens, b.signature_tokens);
        assert_eq!(a.platform, b.platform);
    }
}

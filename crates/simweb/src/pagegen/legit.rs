//! Legitimate sites: the organic results that share SERPs with PSRs.
//!
//! These matter for two reasons. First, the false-positive property the
//! paper leans on — "legitimate sites advertising brands do not cloak"
//! (§4.1) — must hold in the simulation: legit pages serve identical
//! content to every visitor. Second, legit retailers and review sites *do*
//! mention brands and even "cart"/"checkout", so store detection cannot be
//! a trivial keyword match; heuristics must survive these near-misses.

use rand::Rng;

use super::words;

/// Flavours of legitimate sites populating organic results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LegitTheme {
    /// News / editorial content mentioning brands.
    News,
    /// Personal blog.
    Blog,
    /// An authorized retailer — has a real cart and checkout, sets a
    /// platform cookie, yet never cloaks. The store detector's closest
    /// decoy.
    Retailer,
    /// A discussion forum.
    Forum,
    /// The brand's own official site.
    Official,
}

/// Context for one legitimate page.
#[derive(Debug, Clone)]
pub struct LegitCtx<'a> {
    /// The site's domain.
    pub domain: &'a str,
    /// Theme.
    pub theme: LegitTheme,
    /// Brand this page relates to (relevance for ranking).
    pub brand: &'a str,
    /// Seed.
    pub seed: u64,
}

/// Renders the page — same bytes for every visitor class, by construction.
pub fn page(ctx: &LegitCtx<'_>) -> String {
    let mut rng = words::page_rng(ctx.seed, &format!("legit/{}", ctx.domain));
    match ctx.theme {
        LegitTheme::News => {
            let title = format!("{} coverage — {}", ctx.brand, ctx.domain);
            let mut body = format!("<h1>{}</h1>", crate::html::escape_text(&title));
            for _ in 0..4 {
                body.push_str(&format!(
                    "<article><h2>{} {}</h2><p>{}</p></article>",
                    crate::html::escape_text(ctx.brand),
                    crate::html::escape_text(&words::pick_words(
                        &mut rng,
                        &["launch", "review", "season", "report"],
                        1
                    )),
                    words::paragraph(&mut rng, 4, false)
                ));
            }
            super::shell(&title, "", &body)
        }
        LegitTheme::Blog => {
            let title = format!("My {} notes", ctx.brand);
            let body = format!(
                "<h1>{}</h1><p>{}</p><p>{}</p>",
                crate::html::escape_text(&title),
                words::paragraph(&mut rng, 5, false),
                words::paragraph(&mut rng, 4, false)
            );
            super::shell(&title, "", &body)
        }
        LegitTheme::Retailer => {
            let title = format!("{} — authorized {} retailer", ctx.domain, ctx.brand);
            let mut body = format!(
                "<h1>{}</h1><a href=\"/cart\">Cart</a> <a href=\"/checkout\">Checkout</a><div class=\"catalog\">",
                crate::html::escape_text(&title)
            );
            for _ in 0..6 {
                body.push_str(&format!(
                    "<div class=\"item\"><h3>{}</h3><span>{}</span></div>",
                    crate::html::escape_text(&words::product_name(&mut rng, ctx.brand)),
                    // Full retail prices, not counterfeit discounts.
                    format_args!("${}", rng.gen_range(900..3200)),
                ));
            }
            body.push_str("</div>");
            super::shell(&title, "", &body)
        }
        LegitTheme::Forum => {
            let title = format!("Forum: is this {} real?", ctx.brand);
            let mut body = format!("<h1>{}</h1>", crate::html::escape_text(&title));
            for i in 0..5 {
                body.push_str(&format!(
                    "<div class=\"post\"><b>user{}</b><p>{}</p></div>",
                    i,
                    words::paragraph(&mut rng, 2, false)
                ));
            }
            super::shell(&title, "", &body)
        }
        LegitTheme::Official => {
            let title = format!("{} — official site", ctx.brand);
            let body = format!(
                "<h1>{}</h1><p>{}</p><nav><a href=\"/collections\">Collections</a><a href=\"/stores\">Store locator</a></nav>",
                crate::html::escape_text(&title),
                words::paragraph(&mut rng, 3, false)
            );
            super::shell(&title, "", &body)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html::Document;

    fn ctx(theme: LegitTheme) -> String {
        page(&LegitCtx {
            domain: "example-site.com",
            theme,
            brand: "Moncler",
            seed: 3,
        })
    }

    #[test]
    fn all_themes_render_and_mention_brand() {
        for theme in [
            LegitTheme::News,
            LegitTheme::Blog,
            LegitTheme::Retailer,
            LegitTheme::Forum,
            LegitTheme::Official,
        ] {
            let html = ctx(theme);
            let doc = Document::parse(&html);
            assert!(doc.text_content().contains("Moncler"), "{theme:?}");
            assert!(doc.title().is_some());
        }
    }

    #[test]
    fn retailer_is_a_near_miss_for_store_detection() {
        let html = ctx(LegitTheme::Retailer);
        let lower = html.to_ascii_lowercase();
        // Contains the substrings the detector looks for…
        assert!(lower.contains("cart") && lower.contains("checkout"));
        // …but none of the counterfeit-ecosystem trackers or processors.
        for marker in ["cnzz", "51.la", "ajstat", "realypay", "mallpayment"] {
            assert!(!lower.contains(marker), "unexpected marker {marker}");
        }
    }

    #[test]
    fn legit_pages_never_cloak() {
        // Same bytes regardless of who asks is guaranteed by construction
        // (page() has no visitor input); pin it anyway.
        assert_eq!(ctx(LegitTheme::News), ctx(LegitTheme::News));
    }

    #[test]
    fn no_scripts_that_redirect() {
        for theme in [LegitTheme::News, LegitTheme::Retailer, LegitTheme::Official] {
            let doc = Document::parse(&ctx(theme));
            assert!(doc.scripts().is_empty());
        }
    }
}

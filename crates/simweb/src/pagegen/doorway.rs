//! Doorway pages: the SEO-facing view, the JS-redirect variant, the
//! iframe-cloaked variant, and the original content of compromised hosts.

use super::obfuscate;
use super::words;

/// Inputs for generating a doorway's pages.
#[derive(Debug, Clone)]
pub struct DoorwayCtx<'a> {
    /// The doorway's own domain (for self-referential links).
    pub domain: &'a str,
    /// The search term this page targets (appears in path, title, body).
    pub term: &'a str,
    /// Brand the term centers on.
    pub brand: &'a str,
    /// Sibling doorway domains to emit backlinks to (link-farm structure,
    /// §2: doorways "mimic the structure of high reputation sites,
    /// typically by creating backlinks to each other").
    pub backlinks: &'a [String],
    /// Per-domain seed.
    pub seed: u64,
}

/// The keyword-stuffed page served to search-engine crawlers.
///
/// Structure matters: the crawler extracts terms from the URL path of
/// search results (§4.1.1), the title and headers carry the targeted term,
/// and backlinks knit the farm together.
pub fn seo_page(ctx: &DoorwayCtx<'_>) -> String {
    let mut rng = words::page_rng(ctx.seed, &format!("doorway/seo/{}", ctx.term));
    let title = format!("{} - {} outlet online", ctx.term, ctx.brand);
    let mut body = format!("<h1>{}</h1>", crate::html::escape_text(&title));
    for _ in 0..3 {
        body.push_str(&format!(
            "<h2>{} {}</h2><p>{} {} {}</p>",
            crate::html::escape_text(ctx.term),
            crate::html::escape_text(&words::pick_words(
                &mut rng,
                &["sale", "cheap", "official", "outlet", "store", "online"],
                2
            )),
            crate::html::escape_text(ctx.term),
            crate::html::escape_text(&words::paragraph(&mut rng, 3, true)),
            crate::html::escape_text(ctx.brand),
        ));
    }
    body.push_str("<ul>");
    for link in ctx.backlinks {
        body.push_str(&format!(
            "<li><a href=\"http://{link}/?key={}\">{}</a></li>",
            ss_types::url::encode_component(ctx.term),
            crate::html::escape_text(ctx.term),
        ));
    }
    body.push_str("</ul>");
    let meta = format!(
        "<meta name=\"keywords\" content=\"{}\"><meta name=\"description\" content=\"{}\">",
        crate::html::escape_attr(&format!(
            "{}, {} outlet, cheap {}",
            ctx.term, ctx.brand, ctx.brand
        )),
        crate::html::escape_attr(&words::commerce_sentence(&mut rng)),
    );
    super::shell(&title, &meta, &body)
}

/// The SEO page with an embedded JS redirect (served to search users under
/// [`crate::cloak::CloakMode::JsRedirect`]).
pub fn seo_page_with_js_redirect(ctx: &DoorwayCtx<'_>, target: &str) -> String {
    let page = seo_page(ctx);
    let payload = format!("<script>window.location = '{target}';</script>");
    page.replace("</body>", &format!("{payload}</body>"))
}

/// The iframe-cloaked page: same skeleton for crawlers and users, with the
/// payload activating only in a rendering browser.
pub fn iframe_page(ctx: &DoorwayCtx<'_>, target: &str, obfuscation: u8) -> String {
    let page = seo_page(ctx);
    let inject = if obfuscation == 0 {
        obfuscate::static_iframe(target)
    } else {
        let mut rng = words::page_rng(ctx.seed, &format!("doorway/obf/{}", ctx.term));
        format!(
            "<script>{}</script>",
            obfuscate::iframe_payload(target, obfuscation, &mut rng)
        )
    };
    page.replace("</body>", &format!("{inject}</body>"))
}

/// The original legitimate content of a compromised host (what direct
/// visitors — and the site's owner — keep seeing).
pub fn original_content(ctx: &DoorwayCtx<'_>) -> String {
    let mut rng = words::page_rng(ctx.seed, "doorway/original");
    let title = format!("{} — home", ctx.domain);
    let mut body = format!(
        "<h1>Welcome to {}</h1>",
        crate::html::escape_text(ctx.domain)
    );
    for _ in 0..4 {
        body.push_str(&format!("<p>{}</p>", words::paragraph(&mut rng, 4, false)));
    }
    body.push_str(
        "<p><a href=\"/about.html\">About us</a> | <a href=\"/contact.html\">Contact</a></p>",
    );
    super::shell(&title, "", &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html::Document;
    use crate::http::UserAgent;
    use crate::js::render::render;

    fn ctx<'a>(backlinks: &'a [String]) -> DoorwayCtx<'a> {
        DoorwayCtx {
            domain: "hacked-blog.com",
            term: "cheap louis vuitton",
            brand: "Louis Vuitton",
            backlinks,
            seed: 11,
        }
    }

    #[test]
    fn seo_page_is_keyword_stuffed_with_backlinks() {
        let links = vec!["door2.com".to_owned(), "door3.com".to_owned()];
        let html = seo_page(&ctx(&links));
        let doc = Document::parse(&html);
        assert!(doc.title().unwrap().contains("cheap louis vuitton"));
        let text = doc.text_content();
        assert!(text.matches("cheap louis vuitton").count() >= 3);
        let hrefs = doc.links();
        assert!(hrefs.iter().any(|h| h.contains("door2.com")));
        assert!(hrefs.iter().any(|h| h.contains("key=cheap+louis+vuitton")));
    }

    #[test]
    fn seo_and_original_views_differ_semantically() {
        let links = Vec::new();
        let c = ctx(&links);
        let seo = Document::parse(&seo_page(&c)).text_content();
        let orig = Document::parse(&original_content(&c)).text_content();
        assert!(seo.contains("louis vuitton"));
        assert!(!orig.contains("louis vuitton"));
    }

    #[test]
    fn js_redirect_variant_redirects_when_rendered() {
        let links = Vec::new();
        let html = seo_page_with_js_redirect(&ctx(&links), "http://store.com/");
        let r = render(&html, "http://hacked-blog.com/p", UserAgent::Browser, None);
        assert_eq!(r.js_redirect.as_deref(), Some("http://store.com/"));
    }

    #[test]
    fn iframe_variant_renders_fullpage_iframe_at_all_levels() {
        let links = Vec::new();
        for level in 0..=3 {
            let html = iframe_page(&ctx(&links), "http://store.com/", level);
            let r = render(&html, "http://hacked-blog.com/p", UserAgent::Browser, None);
            let frames = r.iframes();
            assert_eq!(frames.len(), 1, "level {level}");
            assert_eq!(frames[0].2, "http://store.com/");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let links = vec!["a.com".to_owned()];
        assert_eq!(seo_page(&ctx(&links)), seo_page(&ctx(&links)));
    }
}

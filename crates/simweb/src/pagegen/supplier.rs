//! The supplier's order-tracking portal.
//!
//! §4.5: the study discovered a supplier site (partnering with the
//! MSVALIDATE campaign) from packing slips. The site shows "a scrolling
//! list of fulfilled orders and a mechanism to lookup shipping records for
//! valid order numbers in bulk (20 orders at a time)", each record carrying
//! a timestamp, location and delivery status. That lookup mechanism is what
//! allowed collecting 279K shipment records; we reproduce it so the
//! `ss-orders` scraper can repeat the collection against the simulation.

use ss_types::SimDate;

/// Delivery status of one shipment record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShipStatus {
    /// Reached the customer.
    Delivered,
    /// Seized by customs at the source (China).
    SeizedAtSource,
    /// Seized by customs at the destination country.
    SeizedAtDestination,
    /// Delivered then returned by the customer.
    Returned,
    /// Still moving.
    InTransit,
}

impl ShipStatus {
    /// Portal display string.
    pub fn as_str(self) -> &'static str {
        match self {
            ShipStatus::Delivered => "Delivered",
            ShipStatus::SeizedAtSource => "Held by customs (origin)",
            ShipStatus::SeizedAtDestination => "Held by customs (destination)",
            ShipStatus::Returned => "Returned to sender",
            ShipStatus::InTransit => "In transit",
        }
    }

    /// Parses a portal display string back.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "Delivered" => ShipStatus::Delivered,
            "Held by customs (origin)" => ShipStatus::SeizedAtSource,
            "Held by customs (destination)" => ShipStatus::SeizedAtDestination,
            "Returned to sender" => ShipStatus::Returned,
            "In transit" => ShipStatus::InTransit,
            _ => return None,
        })
    }
}

/// One shipping record as shown by the portal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipRecord {
    /// Supplier-side order number.
    pub order_no: u64,
    /// Date of the latest tracking event.
    pub date: SimDate,
    /// Destination country.
    pub country: String,
    /// Current status.
    pub status: ShipStatus,
}

/// Renders the portal home: a scrolling list of recently fulfilled orders
/// plus the bulk-lookup form (20 order numbers at a time).
pub fn home_page(recent: &[ShipRecord]) -> String {
    let mut body = String::from(
        "<h1>Order Tracking</h1>\
         <form action=\"/track\" method=\"get\" id=\"bulk\">\
         <textarea name=\"orders\" placeholder=\"Up to 20 order numbers, comma separated\"></textarea>\
         <button>Track</button></form><h2>Recently shipped</h2>",
    );
    body.push_str(&records_table(recent));
    super::shell("Supplier Portal", "", &body)
}

/// Renders a bulk-lookup result page (the scraper's workhorse). `missing`
/// lists queried order numbers with no record.
pub fn lookup_page(found: &[ShipRecord], missing: &[u64]) -> String {
    let mut body = String::from("<h1>Tracking results</h1>");
    body.push_str(&records_table(found));
    if !missing.is_empty() {
        body.push_str("<ul id=\"missing\">");
        for m in missing {
            body.push_str(&format!("<li class=\"missing\">{m}</li>"));
        }
        body.push_str("</ul>");
    }
    super::shell("Tracking results", "", &body)
}

fn records_table(records: &[ShipRecord]) -> String {
    let mut out = String::from(
        "<table id=\"records\"><tr><th>Order</th><th>Date</th><th>Country</th><th>Status</th></tr>",
    );
    for r in records {
        out.push_str(&format!(
            "<tr class=\"record\"><td class=\"order\">{}</td><td class=\"date\">{}</td>\
             <td class=\"country\">{}</td><td class=\"status\">{}</td></tr>",
            r.order_no,
            r.date,
            crate::html::escape_text(&r.country),
            r.status.as_str(),
        ));
    }
    out.push_str("</table>");
    out
}

/// Parses a records table back out of portal HTML — shared by the scraper
/// and the tests (one parser, no drift).
pub fn parse_records(html: &str) -> Vec<ShipRecord> {
    let doc = crate::html::Document::parse(html);
    let mut out = Vec::new();
    for tr in doc.find_all("tr") {
        if tr.attr("class") != Some("record") {
            continue;
        }
        let cell = |class: &str| -> Option<String> {
            tr.children
                .iter()
                .filter_map(|n| n.as_element())
                .find(|td| td.attr("class") == Some(class))
                .map(|td| td.text_content())
        };
        let (Some(order), Some(date), Some(country), Some(status)) =
            (cell("order"), cell("date"), cell("country"), cell("status"))
        else {
            continue;
        };
        let Ok(order_no) = order.parse::<u64>() else {
            continue;
        };
        let Some(status) = ShipStatus::parse(&status) else {
            continue;
        };
        // Dates render as YYYY-MM-DD.
        let mut parts = date.split('-');
        let (Some(y), Some(m), Some(d)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        let (Ok(y), Ok(m), Ok(d)) = (y.parse(), m.parse(), d.parse()) else {
            continue;
        };
        let Ok(date) = SimDate::from_ymd(y, m, d) else {
            continue;
        };
        out.push(ShipRecord {
            order_no,
            date,
            country,
            status,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records() -> Vec<ShipRecord> {
        vec![
            ShipRecord {
                order_no: 120_001,
                date: SimDate::from_ymd(2013, 12, 1).unwrap(),
                country: "United States".into(),
                status: ShipStatus::Delivered,
            },
            ShipRecord {
                order_no: 120_002,
                date: SimDate::from_ymd(2013, 12, 3).unwrap(),
                country: "Japan".into(),
                status: ShipStatus::SeizedAtDestination,
            },
        ]
    }

    #[test]
    fn lookup_roundtrips_through_html() {
        let rs = records();
        let html = lookup_page(&rs, &[999]);
        assert_eq!(parse_records(&html), rs);
        assert!(html.contains("<li class=\"missing\">999</li>"));
    }

    #[test]
    fn home_page_lists_recent_orders_and_bulk_form() {
        let html = home_page(&records());
        assert!(html.contains("id=\"bulk\""));
        assert_eq!(parse_records(&html).len(), 2);
    }

    #[test]
    fn status_strings_roundtrip() {
        for s in [
            ShipStatus::Delivered,
            ShipStatus::SeizedAtSource,
            ShipStatus::SeizedAtDestination,
            ShipStatus::Returned,
            ShipStatus::InTransit,
        ] {
            assert_eq!(ShipStatus::parse(s.as_str()), Some(s));
        }
        assert_eq!(ShipStatus::parse("garbage"), None);
    }
}

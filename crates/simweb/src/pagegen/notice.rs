//! Seizure-notice pages with embedded court documents.
//!
//! §5.3: when a brand holder seizes a storefront domain, the domain is
//! re-pointed to a "serving notice" page naming the brand-protection firm
//! and the court case, and — crucially for the paper's methodology — the
//! embedded court document "typically list[s] the other domains seized as a
//! part of a given action", which is how the study measured seizures beyond
//! what its own crawls touched.

/// Inputs for a seizure-notice page.
#[derive(Debug, Clone)]
pub struct NoticeCtx<'a> {
    /// The seized domain being visited.
    pub domain: &'a str,
    /// Brand-protection firm executing the seizure.
    pub firm: &'a str,
    /// Court case identifier, e.g. "14-cv-02317".
    pub case_id: &'a str,
    /// Plaintiff brand.
    pub brand: &'a str,
    /// All domains seized by the same court order.
    pub seized_domains: &'a [String],
}

/// Renders the notice page. The `court-doc` list is machine-readable by
/// design — the crawler's seizure observer parses it.
pub fn page(ctx: &NoticeCtx<'_>) -> String {
    let mut body = format!(
        "<div class=\"seizure-banner\"><h1>This domain has been seized</h1>\
         <p>The domain <b>{}</b> has been seized pursuant to a court order \
         obtained by <span id=\"firm\">{}</span> on behalf of \
         <span id=\"plaintiff\">{}</span>.</p>\
         <p>Case <span id=\"case\">{}</span>.</p></div>",
        crate::html::escape_text(ctx.domain),
        crate::html::escape_text(ctx.firm),
        crate::html::escape_text(ctx.brand),
        crate::html::escape_text(ctx.case_id),
    );
    body.push_str("<div id=\"court-doc\"><h2>Schedule A — Defendant Domain Names</h2><ol>");
    for d in ctx.seized_domains {
        body.push_str(&format!(
            "<li class=\"seized-domain\">{}</li>",
            crate::html::escape_text(d)
        ));
    }
    body.push_str("</ol></div>");
    super::shell("Seized Domain", "", &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html::Document;

    #[test]
    fn notice_carries_firm_case_and_domain_schedule() {
        let seized = vec![
            "a-store.com".to_owned(),
            "b-store.com".to_owned(),
            "c-store.net".to_owned(),
        ];
        let html = page(&NoticeCtx {
            domain: "a-store.com",
            firm: "Greer, Burns & Crain",
            case_id: "14-cv-02317",
            brand: "Uggs",
            seized_domains: &seized,
        });
        let doc = Document::parse(&html);
        assert_eq!(
            doc.by_id("firm").unwrap().text_content(),
            "Greer, Burns & Crain"
        );
        assert_eq!(doc.by_id("case").unwrap().text_content(), "14-cv-02317");
        let listed: Vec<String> = doc
            .find_all("li")
            .into_iter()
            .filter(|li| li.attr("class") == Some("seized-domain"))
            .map(|li| li.text_content())
            .collect();
        assert_eq!(listed, seized);
    }

    #[test]
    fn notice_is_identifiable_as_seizure() {
        let html = page(&NoticeCtx {
            domain: "x.com",
            firm: "SMGPA",
            case_id: "13-cv-00001",
            brand: "Chanel",
            seized_domains: &[],
        });
        assert!(html.contains("has been seized"));
    }
}

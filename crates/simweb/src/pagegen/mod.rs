//! Deterministic page generation for every page class in the study.
//!
//! All generators are pure functions of their context (which embeds a seed),
//! so the same URL always serves the same bytes — a property both the
//! crawler's dedup layer and the test suite rely on.
//!
//! * [`words`] — seeded filler-text and naming utilities;
//! * [`obfuscate`] — the iframe-cloaking JS payloads at four obfuscation
//!   levels (plain DOM calls → string splitting → charCode assembly → eval
//!   of a string built at runtime);
//! * [`doorway`] — keyword-stuffed SEO pages with doorway backlinks and the
//!   original-content view of compromised hosts;
//! * [`storefront`] — counterfeit store pages built from campaign-specific
//!   templates over shared e-commerce platforms (the signal the campaign
//!   classifier learns, §4.2.1);
//! * [`legit`] — legitimate sites that populate organic search results;
//! * [`notice`] — seizure-notice pages with embedded court documents
//!   (§5.3's data source);
//! * [`awstats`] — publicly reachable AWStats reports (§4.4);
//! * [`supplier`] — the supplier's order-tracking portal (§4.5).

pub mod awstats;
pub mod doorway;
pub mod legit;
pub mod notice;
pub mod obfuscate;
pub mod storefront;
pub mod supplier;
pub mod words;

/// Standard HTML shell shared by the generators.
pub(crate) fn shell(title: &str, head_extra: &str, body: &str) -> String {
    format!(
        "<html><head><title>{}</title>{}</head><body>{}</body></html>",
        crate::html::escape_text(title),
        head_extra,
        body
    )
}

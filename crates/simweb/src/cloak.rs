//! Cloaking: the decision logic of §3.1.1.
//!
//! A cloaked doorway serves different content to different visitor classes.
//! This module encodes *which* view a given request receives; the actual
//! page bytes come from [`crate::pagegen`]. Three mechanisms are modeled:
//!
//! * **Redirect cloaking** — the classic server-side technique: crawlers
//!   (identified by User-Agent) get a keyword-stuffed SEO page; users
//!   arriving from a search results page get an HTTP 302 to the store.
//! * **JS-redirect cloaking** — same decision, but the hop is a
//!   `window.location` assignment in a script, invisible without rendering.
//! * **Iframe cloaking** — the paper's newly documented method: *every*
//!   visitor receives the same HTML, and client-side script loads the store
//!   in a full-viewport iframe. Server-side detection sees no difference;
//!   only a rendering crawler catches it.
//!
//! Compromised doorways additionally gate on the referrer: visitors who do
//! not arrive via a search engine see the original legitimate site, which
//! keeps the compromise invisible to the site owner.

use ss_types::Url;

use crate::http::{Request, UserAgent};

/// How a doorway conceals its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CloakMode {
    /// Server-side 302 redirect for search-referred users.
    Redirect,
    /// Client-side `window.location` redirect emitted in a script.
    JsRedirect,
    /// Full-viewport iframe loaded client-side; `obfuscation` selects how
    /// disguised the payload script is (0 = plain, 3 = heaviest).
    Iframe {
        /// Obfuscation level 0–3.
        obfuscation: u8,
    },
}

impl CloakMode {
    /// Whether this mode returns identical HTTP bodies to crawlers and
    /// users (making server-side diffing blind).
    pub fn same_bytes_for_all(self) -> bool {
        matches!(self, CloakMode::Iframe { .. })
    }
}

/// The visitor classes a doorway distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisitorClass {
    /// A search-engine crawler (User-Agent sniffed).
    Crawler,
    /// A user who clicked through from a search results page.
    SearchUser,
    /// Any other visitor (direct, bookmarked, site owner).
    DirectUser,
}

/// Classifies a request the way SEO kits do: User-Agent first, then the
/// referrer. `search_hosts` lists hostnames treated as search engines.
pub fn classify_visitor(req: &Request, search_hosts: &[&str]) -> VisitorClass {
    if req.user_agent == UserAgent::GoogleBot {
        return VisitorClass::Crawler;
    }
    match &req.referrer {
        Some(r) if is_search_referrer(r, search_hosts) => VisitorClass::SearchUser,
        _ => VisitorClass::DirectUser,
    }
}

fn is_search_referrer(referrer: &Url, search_hosts: &[&str]) -> bool {
    search_hosts.iter().any(|h| referrer.host.as_str() == *h)
}

/// What the doorway decides to serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeDecision {
    /// Serve the keyword-stuffed SEO page (crawler view).
    SeoPage,
    /// HTTP 302 to the store.
    HttpRedirect(Url),
    /// Serve the SEO page with a JS redirect payload embedded.
    SeoPageWithJsRedirect(Url),
    /// Serve the doorway page with the iframe-cloaking payload.
    IframePage {
        /// The store URL the iframe loads.
        target: Url,
        /// Obfuscation level to emit.
        obfuscation: u8,
    },
    /// Serve the original (legitimate) content — compromised doorways keep
    /// non-search visitors on the real site.
    OriginalContent,
}

/// Resolves a request against a doorway's cloaking configuration.
///
/// `compromised` doorways show original content to direct visitors; SEO-kit
/// "dedicated" doorways (on attacker-registered domains) have no original
/// content to show, so direct users get the payload too.
pub fn decide(
    mode: CloakMode,
    compromised: bool,
    target: &Url,
    req: &Request,
    search_hosts: &[&str],
) -> ServeDecision {
    let class = classify_visitor(req, search_hosts);
    match (mode, class) {
        // Iframe cloaking serves the same bytes to everyone; the payload
        // only *acts* in a rendering browser. Compromised hosts still show
        // direct visitors the original page to stay hidden.
        (CloakMode::Iframe { obfuscation }, VisitorClass::Crawler) => ServeDecision::IframePage {
            target: target.clone(),
            obfuscation,
        },
        (CloakMode::Iframe { obfuscation }, VisitorClass::SearchUser) => {
            ServeDecision::IframePage {
                target: target.clone(),
                obfuscation,
            }
        }
        (CloakMode::Iframe { obfuscation }, VisitorClass::DirectUser) => {
            if compromised {
                ServeDecision::OriginalContent
            } else {
                ServeDecision::IframePage {
                    target: target.clone(),
                    obfuscation,
                }
            }
        }
        (_, VisitorClass::Crawler) => ServeDecision::SeoPage,
        (CloakMode::Redirect, VisitorClass::SearchUser) => {
            ServeDecision::HttpRedirect(target.clone())
        }
        (CloakMode::JsRedirect, VisitorClass::SearchUser) => {
            ServeDecision::SeoPageWithJsRedirect(target.clone())
        }
        (_, VisitorClass::DirectUser) => {
            if compromised {
                ServeDecision::OriginalContent
            } else {
                match mode {
                    CloakMode::Redirect => ServeDecision::HttpRedirect(target.clone()),
                    CloakMode::JsRedirect => ServeDecision::SeoPageWithJsRedirect(target.clone()),
                    CloakMode::Iframe { .. } => unreachable!("handled above"),
                }
            }
        }
    }
}

/// The default search-engine hosts the simulated SEO kits sniff for.
pub const SEARCH_HOSTS: &[&str] = &["google.com", "www.google.com"];

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn store() -> Url {
        url("http://store.com/")
    }

    fn search_req() -> Request {
        Request::browser_from(
            url("http://door.com/p"),
            url("http://google.com/search?q=x"),
        )
    }

    #[test]
    fn classifies_visitors() {
        assert_eq!(
            classify_visitor(&Request::crawler(url("http://d.com/")), SEARCH_HOSTS),
            VisitorClass::Crawler
        );
        assert_eq!(
            classify_visitor(&search_req(), SEARCH_HOSTS),
            VisitorClass::SearchUser
        );
        assert_eq!(
            classify_visitor(&Request::browser(url("http://d.com/")), SEARCH_HOSTS),
            VisitorClass::DirectUser
        );
        // A referrer from a non-search site is a direct visit.
        let other = Request::browser_from(url("http://d.com/"), url("http://blog.com/"));
        assert_eq!(
            classify_visitor(&other, SEARCH_HOSTS),
            VisitorClass::DirectUser
        );
    }

    #[test]
    fn redirect_cloaking_splits_by_class() {
        let m = CloakMode::Redirect;
        assert_eq!(
            decide(
                m,
                true,
                &store(),
                &Request::crawler(url("http://d.com/")),
                SEARCH_HOSTS
            ),
            ServeDecision::SeoPage
        );
        assert_eq!(
            decide(m, true, &store(), &search_req(), SEARCH_HOSTS),
            ServeDecision::HttpRedirect(store())
        );
        assert_eq!(
            decide(
                m,
                true,
                &store(),
                &Request::browser(url("http://d.com/")),
                SEARCH_HOSTS
            ),
            ServeDecision::OriginalContent
        );
    }

    #[test]
    fn dedicated_doorways_redirect_direct_users_too() {
        let m = CloakMode::Redirect;
        assert_eq!(
            decide(
                m,
                false,
                &store(),
                &Request::browser(url("http://d.com/")),
                SEARCH_HOSTS
            ),
            ServeDecision::HttpRedirect(store())
        );
    }

    #[test]
    fn iframe_cloaking_serves_same_shape_to_crawler_and_search_user() {
        let m = CloakMode::Iframe { obfuscation: 2 };
        let to_crawler = decide(
            m,
            true,
            &store(),
            &Request::crawler(url("http://d.com/")),
            SEARCH_HOSTS,
        );
        let to_user = decide(m, true, &store(), &search_req(), SEARCH_HOSTS);
        assert_eq!(to_crawler, to_user);
        assert!(matches!(to_crawler, ServeDecision::IframePage { .. }));
        assert!(m.same_bytes_for_all());
    }

    #[test]
    fn compromised_iframe_doorway_hides_from_owner() {
        let m = CloakMode::Iframe { obfuscation: 0 };
        assert_eq!(
            decide(
                m,
                true,
                &store(),
                &Request::browser(url("http://d.com/")),
                SEARCH_HOSTS
            ),
            ServeDecision::OriginalContent
        );
    }

    #[test]
    fn js_redirect_embeds_payload() {
        let m = CloakMode::JsRedirect;
        assert_eq!(
            decide(m, true, &store(), &search_req(), SEARCH_HOSTS),
            ServeDecision::SeoPageWithJsRedirect(store())
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn any_mode() -> impl Strategy<Value = CloakMode> {
        prop_oneof![
            Just(CloakMode::Redirect),
            Just(CloakMode::JsRedirect),
            (0u8..4).prop_map(|o| CloakMode::Iframe { obfuscation: o }),
        ]
    }

    proptest! {
        /// Crawlers never receive an HTTP redirect to the store — that
        /// would expose the scam to the search engine directly.
        #[test]
        fn crawlers_never_get_http_redirects(mode in any_mode(), compromised: bool) {
            let store = Url::parse("http://store.com/").unwrap();
            let req = crate::http::Request::crawler(Url::parse("http://d.com/").unwrap());
            let decision = decide(mode, compromised, &store, &req, SEARCH_HOSTS);
            prop_assert!(!matches!(decision, ServeDecision::HttpRedirect(_)));
            prop_assert!(!matches!(decision, ServeDecision::SeoPageWithJsRedirect(_)));
        }

        /// Compromised doorways never reveal the payload to direct
        /// visitors (that is what keeps the compromise invisible).
        #[test]
        fn compromised_hosts_hide_from_direct_visitors(mode in any_mode()) {
            let store = Url::parse("http://store.com/").unwrap();
            let req = crate::http::Request::browser(Url::parse("http://d.com/").unwrap());
            let decision = decide(mode, true, &store, &req, SEARCH_HOSTS);
            prop_assert_eq!(decision, ServeDecision::OriginalContent);
        }

        /// Search users always end up exposed to the store, one way or
        /// another (that is the point of the doorway).
        #[test]
        fn search_users_always_reach_the_payload(mode in any_mode(), compromised: bool) {
            let store = Url::parse("http://store.com/").unwrap();
            let req = crate::http::Request::browser_from(
                Url::parse("http://d.com/").unwrap(),
                Url::parse("http://google.com/search?q=x").unwrap(),
            );
            let decision = decide(mode, compromised, &store, &req, SEARCH_HOSTS);
            let exposed = matches!(
                decision,
                ServeDecision::HttpRedirect(_)
                    | ServeDecision::SeoPageWithJsRedirect(_)
                    | ServeDecision::IframePage { .. }
            );
            prop_assert!(exposed, "search user was not funneled to the store");
        }
    }
}

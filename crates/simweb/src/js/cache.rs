//! The compile cache: script source → compiled [`Chunk`], shared across
//! crawl worker threads.
//!
//! `pagegen` emits scripts per *template*, so a crawl sees the same
//! handful of script strings millions of times — the hit rate is
//! near-total and compilation amortizes to nothing. Keys are FNV-1a
//! 64-bit hashes of the source (plus the compile mode: `eval` bodies
//! lower differently); each entry keeps the full source so a hash
//! collision is detected and served by an uncached compile instead of
//! running the wrong script. Parse failures cache too — hostile pages
//! with broken scripts are re-fetched all crawl long.
//!
//! The `compiles`/`hits` counters are deterministic for a run regardless
//! of thread count: lookups happen once per script execution, and the
//! map lock is held across insert-compiles so exactly one compile happens
//! per distinct script.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ss_types::snapshot::{Reader, Snapshot, SnapshotError, Writer};

use super::bytecode::Chunk;
use super::compile;
use super::parser::parse_program;

/// How a script is lowered (top-level programs get a slotted global
/// frame; `eval` bodies run against the caller's frame, all-dynamic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum CompileMode {
    /// A `<script>` body.
    Main,
    /// An `eval(…)` argument.
    Eval,
}

#[derive(Clone)]
struct Entry {
    src: String,
    /// Compiled chunk, or the parse error's display string.
    result: Result<Arc<Chunk>, String>,
}

/// A concurrent source → bytecode cache with hit/compile counters.
/// See the module docs for keying and determinism notes.
#[derive(Default)]
pub struct JsCache {
    map: Mutex<HashMap<(CompileMode, u64), Entry>>,
    compiles: AtomicU64,
    hits: AtomicU64,
}

impl JsCache {
    /// An empty cache.
    pub fn new() -> Self {
        JsCache::default()
    }

    /// `(compiles, hits)` so far. `compiles` counts distinct scripts
    /// compiled (plus any 64-bit-collision fallbacks), `hits` counts
    /// lookups served from the cache.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.compiles.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
        )
    }

    /// The process-wide cache used by the convenience `render`/
    /// `run_script` entry points. Scoped runs (the crawler) own their own
    /// cache so per-run counters stay meaningful.
    pub fn global() -> &'static JsCache {
        static GLOBAL: OnceLock<JsCache> = OnceLock::new();
        GLOBAL.get_or_init(JsCache::new)
    }

    /// The compiled chunk for `src`, compiling on first sight. `Err` is
    /// the parse error's display string.
    pub(crate) fn chunk_for(&self, src: &str, mode: CompileMode) -> Result<Arc<Chunk>, String> {
        // Which thread takes a given miss (and pays the compile, the
        // insert, even an `Err` clone on hit) is a race, so none of it may
        // count against the caller's cost scope: pause the allocation
        // meter for the whole lookup. Compile *work* is charged
        // deterministically from the counters at the crawl-day choke
        // point instead.
        let _quiet = ss_obs::pause_metering();
        let key = (mode, fnv64(src.as_bytes()));
        let mut map = self.map.lock().expect("js cache lock");
        if let Some(e) = map.get(&key) {
            if e.src == src {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return e.result.clone();
            }
            // Hash collision: serve a one-off compile, leave the
            // incumbent entry in place.
            self.compiles.fetch_add(1, Ordering::Relaxed);
            return compile_src(src, mode);
        }
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let result = compile_src(src, mode);
        map.insert(
            key,
            Entry {
                src: src.to_owned(),
                result: result.clone(),
            },
        );
        result
    }
}

impl Snapshot for JsCache {
    const TAG: &'static str = "js-cache";
    const VERSION: u16 = 1;

    /// Serializes the cached script *sources* plus the compile/hit
    /// counters. Compiled chunks are not serialized — compilation is
    /// deterministic, so decode recompiles each source and arrives at an
    /// observably identical cache. The counters matter: the crawler
    /// records per-day compile/hit deltas into deterministic metrics, so
    /// a resumed run must continue from the checkpointed totals.
    fn write_body(&self, w: &mut Writer) {
        let map = self.map.lock().expect("js cache lock");
        let mut entries: Vec<(u8, &str)> = map
            .iter()
            .map(|((mode, _), e)| {
                let mode = match mode {
                    CompileMode::Main => 0u8,
                    CompileMode::Eval => 1u8,
                };
                (mode, e.src.as_str())
            })
            .collect();
        entries.sort();
        w.put_len(entries.len());
        for (mode, src) in entries {
            w.put_u8(mode);
            w.put_str(src);
        }
        let (compiles, hits) = self.stats();
        w.put_u64(compiles);
        w.put_u64(hits);
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let cache = JsCache::new();
        {
            let mut map = cache.map.lock().expect("js cache lock");
            for _ in 0..r.get_len()? {
                let mode = match r.get_u8()? {
                    0 => CompileMode::Main,
                    1 => CompileMode::Eval,
                    b => {
                        return Err(SnapshotError::Corrupt(format!("compile mode byte {b}")));
                    }
                };
                let src = r.get_str()?;
                let result = compile_src(&src, mode);
                map.insert((mode, fnv64(src.as_bytes())), Entry { src, result });
            }
        }
        cache.compiles.store(r.get_u64()?, Ordering::Relaxed);
        cache.hits.store(r.get_u64()?, Ordering::Relaxed);
        Ok(cache)
    }
}

fn compile_src(src: &str, mode: CompileMode) -> Result<Arc<Chunk>, String> {
    let prog = parse_program(src).map_err(|e| e.to_string())?;
    Ok(Arc::new(match mode {
        CompileMode::Main => compile::compile_program(&prog),
        CompileMode::Eval => compile::compile_eval(&prog),
    }))
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

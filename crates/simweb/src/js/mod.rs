//! A miniature JavaScript implementation.
//!
//! Iframe cloaking (§3.1.1) "runs entirely on the client, relying on the
//! assumption that crawlers do not fully render pages at scale", and the
//! payloads are "frequently obfuscated … in some cases the iframe itself is
//! dynamically generated". Detecting it therefore "requires a complete
//! browser that evaluates JavaScript". This module is that (small) browser
//! core: a lexer, a recursive-descent parser, and two execution engines
//! with the DOM bindings the ecosystem's payloads use:
//!
//! * `document.write`, `document.createElement`, `document.getElementById`,
//!   `document.body.appendChild`, element attribute assignment;
//! * `window.location` assignment / `.href` / `.replace()` for JS redirects;
//! * `navigator.userAgent` and `document.referrer` for client-side cloaking
//!   decisions;
//! * `String.fromCharCode`, `unescape`, `parseInt`, string/array methods —
//!   the toolbox the generators' obfuscator builds payloads from.
//!
//! The language subset: `var`, `function`, `if`/`else`, `while`, `for`,
//! `return`, assignment (including member/index targets), `? :`, `&&`/`||`,
//! comparison/arithmetic operators, arrays, and calls. Execution is bounded
//! by a step budget so hostile pages cannot hang the crawler.
//!
//! # Engines
//!
//! The default engine compiles to bytecode ([`compile`]/[`vm`] internally):
//! names resolve to frame slot indices at compile time, constants fold,
//! and compiled chunks cache per script source in a [`JsCache`] — pagegen
//! emits scripts per template, so a crawl compiles a handful of scripts
//! and replays them millions of times. The original tree-walking
//! interpreter survives as [`JsEngine::TreeWalk`], the reference the
//! differential harness checks the VM against; both share every
//! observable semantic through one runtime layer.

mod ast;
mod bytecode;
mod cache;
mod compile;
mod interp;
mod lexer;
mod parser;
#[cfg(test)]
mod parser_edge;
pub mod render;
mod runtime;
mod vm;

pub use ast::{BinOp, Expr, Stmt, UnOp};
pub use cache::JsCache;
pub use interp::Interpreter;
pub use lexer::{lex, LexError, Tok};
pub use parser::{parse_program, ParseError};
pub use runtime::{DynElement, JsError, PageEnv, RenderEffects, Value};

use cache::CompileMode;

/// Which execution engine runs page scripts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JsEngine {
    /// The original tree-walking interpreter: re-walks the AST with
    /// scope-chain `HashMap` lookups. Kept as the differential-testing
    /// reference.
    TreeWalk,
    /// The bytecode VM over cached compiled chunks — the default.
    #[default]
    Vm,
}

impl JsEngine {
    /// Parses an engine name (`"treewalk"` / `"vm"`), as accepted by
    /// `repro --js-engine`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "treewalk" | "tree-walk" | "interp" => Some(JsEngine::TreeWalk),
            "vm" | "bytecode" => Some(JsEngine::Vm),
            _ => None,
        }
    }
}

/// Parses and runs a script against a page environment, accumulating
/// effects. Errors are returned, not panicked — hostile or truncated
/// scripts are an expected crawler input. Uses the default engine and the
/// process-wide compile cache.
pub fn run_script(src: &str, env: &mut PageEnv) -> Result<(), JsError> {
    run_script_with(src, env, JsEngine::default(), JsCache::global())
}

/// [`run_script`] with an explicit engine and compile cache. The cache is
/// only consulted by [`JsEngine::Vm`]; scoped callers (the crawler) pass
/// their own so per-run compile/hit counters stay meaningful.
pub fn run_script_with(
    src: &str,
    env: &mut PageEnv,
    engine: JsEngine,
    cache: &JsCache,
) -> Result<(), JsError> {
    match engine {
        JsEngine::TreeWalk => {
            let prog = parse_program(src).map_err(|e| JsError::Syntax(e.to_string()))?;
            Interpreter::new(env).run(&prog)
        }
        JsEngine::Vm => {
            let chunk = cache
                .chunk_for(src, CompileMode::Main)
                .map_err(JsError::Syntax)?;
            vm::run_chunk(env, &chunk, cache)
        }
    }
}

//! A miniature JavaScript implementation.
//!
//! Iframe cloaking (§3.1.1) "runs entirely on the client, relying on the
//! assumption that crawlers do not fully render pages at scale", and the
//! payloads are "frequently obfuscated … in some cases the iframe itself is
//! dynamically generated". Detecting it therefore "requires a complete
//! browser that evaluates JavaScript". This module is that (small) browser
//! core: a lexer, a recursive-descent parser, and a tree-walking interpreter
//! with the DOM bindings the ecosystem's payloads use:
//!
//! * `document.write`, `document.createElement`, `document.getElementById`,
//!   `document.body.appendChild`, element attribute assignment;
//! * `window.location` assignment / `.href` / `.replace()` for JS redirects;
//! * `navigator.userAgent` and `document.referrer` for client-side cloaking
//!   decisions;
//! * `String.fromCharCode`, `unescape`, `parseInt`, string/array methods —
//!   the toolbox the generators' obfuscator builds payloads from.
//!
//! The language subset: `var`, `function`, `if`/`else`, `while`, `for`,
//! `return`, assignment (including member/index targets), `? :`, `&&`/`||`,
//! comparison/arithmetic operators, arrays, and calls. Execution is bounded
//! by a step budget so hostile pages cannot hang the crawler.

mod ast;
mod interp;
mod lexer;
mod parser;
pub mod render;

pub use ast::{BinOp, Expr, Stmt, UnOp};
pub use interp::{Interpreter, JsError, PageEnv, RenderEffects, Value};
pub use lexer::{lex, LexError, Tok};
pub use parser::{parse_program, ParseError};

/// Parses and runs a script against a page environment, accumulating
/// effects. Errors are returned, not panicked — hostile or truncated
/// scripts are an expected crawler input.
pub fn run_script(src: &str, env: &mut PageEnv) -> Result<(), JsError> {
    let prog = parse_program(src).map_err(|e| JsError::Syntax(e.to_string()))?;
    Interpreter::new(env).run(&prog)
}

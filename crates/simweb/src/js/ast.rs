//! The JavaScript AST.

/// Binary operators, in source syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` — numeric addition or string concatenation.
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==` / `===` (we treat both as value equality after light coercion).
    Eq,
    /// `!=` / `!==`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `!`
    Not,
    /// `-`
    Neg,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null` (and `undefined` lexes as an identifier resolved at runtime).
    Null,
    /// Variable reference.
    Ident(String),
    /// `[a, b, c]`
    Array(Vec<Expr>),
    /// `obj.field`
    Member(Box<Expr>, String),
    /// `obj[idx]`
    Index(Box<Expr>, Box<Expr>),
    /// `callee(args…)` — callee may be an identifier or member.
    Call(Box<Expr>, Vec<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// `cond ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Assignment, `target = value`; target must be Ident/Member/Index.
    Assign(Box<Expr>, Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var name = init;` (init optional).
    Var(String, Option<Expr>),
    /// A bare expression (usually a call or assignment).
    Expr(Expr),
    /// `if (cond) { … } else { … }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { … }`
    While(Expr, Vec<Stmt>),
    /// `for (init; cond; step) { … }`
    For(Option<Box<Stmt>>, Option<Expr>, Option<Expr>, Vec<Stmt>),
    /// `function name(params) { … }`
    Function(String, Vec<String>, Vec<Stmt>),
    /// `return expr;`
    Return(Option<Expr>),
    /// Empty statement `;`.
    Empty,
}

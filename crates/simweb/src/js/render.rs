//! Page rendering: parse HTML, execute scripts, observe the result.
//!
//! This is the core of what the paper's VanGogh crawler does (§4.1.2):
//! "essentially a headless browser complete with a JavaScript interpreter".
//! Rendering a page means parsing it, running each `<script>` against the
//! page environment, folding `document.write` output back into the document,
//! attaching dynamically created elements, and surfacing any JS navigation
//! as a redirect.

use crate::html::{Document, Element, Node};
use crate::http::UserAgent;

use super::runtime::{PageEnv, RenderEffects};
use super::{JsCache, JsEngine};

/// The result of rendering a page.
#[derive(Debug, Clone)]
pub struct Rendered {
    /// The document after script execution: original DOM plus
    /// `document.write` output plus attached dynamic elements.
    pub doc: Document,
    /// JS navigation target, if any script redirected.
    pub js_redirect: Option<String>,
    /// Scripts that failed (count only; the crawler tolerates breakage).
    pub script_errors: usize,
    /// Raw effects, for tests and forensics.
    pub effects: RenderEffects,
}

impl Rendered {
    /// All iframes visible after rendering: static ones plus dynamically
    /// attached ones. Returns `(width, height, src)` attribute strings.
    pub fn iframes(&self) -> Vec<(String, String, String)> {
        let mut out = Vec::new();
        for el in self.doc.find_all("iframe") {
            out.push((
                el.attr("width").unwrap_or("").to_owned(),
                el.attr("height").unwrap_or("").to_owned(),
                el.attr("src").unwrap_or("").to_owned(),
            ));
        }
        out
    }
}

/// Renders `html` as a visitor with the given agent/referrer would see it.
///
/// `url` is the page's own address (exposed as `window.location.href`).
/// Note the crawler-side economics the paper describes: rendering runs the
/// full JS engine and is much more expensive than a plain fetch, which is
/// why VanGogh samples at most three pages per doorway domain.
pub fn render(html: &str, url: &str, user_agent: UserAgent, referrer: Option<&str>) -> Rendered {
    render_with(
        html,
        url,
        user_agent,
        referrer,
        JsEngine::default(),
        JsCache::global(),
    )
}

/// [`render`] with an explicit engine and compile cache — the crawler's
/// entry point (it owns a per-run cache so compile/hit counters are
/// per-run), and the differential harness's way of pinning an engine.
pub fn render_with(
    html: &str,
    url: &str,
    user_agent: UserAgent,
    referrer: Option<&str>,
    engine: JsEngine,
    cache: &JsCache,
) -> Rendered {
    let doc = Document::parse(html);
    let mut env = PageEnv {
        user_agent: user_agent.header_value().to_owned(),
        referrer: referrer.unwrap_or("").to_owned(),
        title: doc.title().unwrap_or_default(),
        location_href: url.to_owned(),
        dom_ids: doc
            .elements()
            .iter()
            .filter_map(|e| e.attr("id").map(str::to_owned))
            .collect(),
        effects: RenderEffects::default(),
    };

    let mut script_errors = 0;
    for src in doc.scripts() {
        if super::run_script_with(&src, &mut env, engine, cache).is_err() {
            script_errors += 1;
        }
    }

    // Fold effects back into a final document.
    let mut final_doc = doc;
    if !env.effects.written_html.is_empty() {
        let written = Document::parse(&env.effects.written_html);
        final_doc.roots.extend(written.roots);
    }
    for dyn_el in env.effects.elements.iter().filter(|e| e.attached) {
        let mut el = Element::new(&dyn_el.tag);
        for (k, v) in &dyn_el.attrs {
            el.set_attr(k, v);
        }
        if !dyn_el.inner_html.is_empty() {
            el.children = Document::parse(&dyn_el.inner_html).roots;
        }
        final_doc.roots.push(Node::Element(el));
    }

    Rendered {
        doc: final_doc,
        js_redirect: env.effects.redirect.clone(),
        script_errors,
        effects: env.effects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_page_renders_unchanged() {
        let r = render("<p>hello</p>", "http://x.com/", UserAgent::Browser, None);
        assert_eq!(r.doc.text_content(), "hello");
        assert!(r.js_redirect.is_none());
        assert_eq!(r.script_errors, 0);
    }

    #[test]
    fn document_write_is_folded_in() {
        let html = r#"<p>base</p><script>document.write('<div id="late">written</div>');</script>"#;
        let r = render(html, "http://x.com/", UserAgent::Browser, None);
        assert!(r.doc.by_id("late").is_some());
        assert!(r.doc.text_content().contains("written"));
    }

    #[test]
    fn dynamic_iframe_appears_in_iframes() {
        let html = r#"<script>
            var f = document.createElement('iframe');
            f.setAttribute('width', '100%');
            f.setAttribute('height', '100%');
            f.src = 'http://store.com/';
            document.body.appendChild(f);
        </script>"#;
        let r = render(html, "http://door.com/", UserAgent::Browser, None);
        let frames = r.iframes();
        assert_eq!(frames.len(), 1);
        assert_eq!(
            frames[0],
            ("100%".into(), "100%".into(), "http://store.com/".into())
        );
    }

    #[test]
    fn js_redirect_is_surfaced() {
        let html = "<script>window.location = 'http://landing.com/';</script>";
        let r = render(html, "http://door.com/", UserAgent::Browser, None);
        assert_eq!(r.js_redirect.as_deref(), Some("http://landing.com/"));
    }

    #[test]
    fn broken_scripts_counted_not_fatal() {
        let html = "<script>var x = ((;</script><p>still here</p>";
        let r = render(html, "http://x.com/", UserAgent::Browser, None);
        assert_eq!(r.script_errors, 1);
        assert!(r.doc.text_content().contains("still here"));
    }

    #[test]
    fn ua_dependent_render_differs() {
        let html = "<script>if (navigator.userAgent.indexOf('Googlebot') < 0) { \
                    document.write('<iframe width=\"100%\" height=\"100%\" src=\"http://s.com/\"></iframe>'); }</script>";
        let user = render(html, "http://d.com/", UserAgent::Browser, None);
        let bot = render(html, "http://d.com/", UserAgent::GoogleBot, None);
        assert_eq!(user.iframes().len(), 1);
        assert_eq!(bot.iframes().len(), 0);
    }
}

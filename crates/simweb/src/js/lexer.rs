//! The JavaScript lexer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (always f64, as in JS).
    Num(f64),
    /// String literal, unescaped.
    Str(String),
    /// Punctuation / operator, e.g. `(`, `==`, `&&`.
    Punct(&'static str),
}

/// A lexing failure with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.msg)
    }
}

/// Multi-character operators, longest first so `==` beats `=`.
const PUNCTS: &[&str] = &[
    "===", "!==", "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "(", ")", "{", "}",
    "[", "]", ";", ",", ".", "=", "<", ">", "+", "-", "*", "/", "%", "!", "?", ":",
];

/// Lexes a source string into tokens. Comments (`//`, `/* */`) and
/// whitespace are skipped.
pub fn lex(src: &str) -> Result<Vec<Tok>, LexError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    'outer: while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if src[i..].starts_with("//") {
            i = src[i..]
                .find('\n')
                .map(|e| i + e + 1)
                .unwrap_or(bytes.len());
            continue;
        }
        if src[i..].starts_with("/*") {
            i = src[i + 2..]
                .find("*/")
                .map(|e| i + 2 + e + 2)
                .ok_or(LexError {
                    pos: i,
                    msg: "unterminated block comment".into(),
                })?;
            continue;
        }
        // Strings.
        if b == b'"' || b == b'\'' {
            let quote = b;
            let mut out = String::new();
            let mut j = i + 1;
            while j < bytes.len() {
                match bytes[j] {
                    q if q == quote => {
                        toks.push(Tok::Str(out));
                        i = j + 1;
                        continue 'outer;
                    }
                    b'\\' => {
                        let esc = bytes.get(j + 1).copied().ok_or(LexError {
                            pos: j,
                            msg: "dangling escape".into(),
                        })?;
                        match esc {
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'\\' => out.push('\\'),
                            b'\'' => out.push('\''),
                            b'"' => out.push('"'),
                            b'/' => out.push('/'),
                            b'x' => {
                                let hex = src.get(j + 2..j + 4).ok_or(LexError {
                                    pos: j,
                                    msg: "truncated \\x escape".into(),
                                })?;
                                let v = u8::from_str_radix(hex, 16).map_err(|_| LexError {
                                    pos: j,
                                    msg: format!("bad \\x escape {hex:?}"),
                                })?;
                                out.push(v as char);
                                j += 2;
                            }
                            b'u' => {
                                let hex = src.get(j + 2..j + 6).ok_or(LexError {
                                    pos: j,
                                    msg: "truncated \\u escape".into(),
                                })?;
                                let v = u32::from_str_radix(hex, 16).map_err(|_| LexError {
                                    pos: j,
                                    msg: format!("bad \\u escape {hex:?}"),
                                })?;
                                out.push(char::from_u32(v).unwrap_or('\u{fffd}'));
                                j += 4;
                            }
                            other if other.is_ascii() => out.push(other as char),
                            _ => {
                                // An escaped multi-byte character: copy the
                                // whole char, not just its lead byte (which
                                // would land the cursor mid-codepoint and
                                // panic on the next slice).
                                let ch = src[j + 1..].chars().next().expect("in bounds");
                                out.push(ch);
                                j += ch.len_utf8() - 1;
                            }
                        }
                        j += 2;
                    }
                    _ => {
                        // Multi-byte UTF-8 safe: copy the whole char.
                        let ch = src[j..].chars().next().expect("in bounds");
                        out.push(ch);
                        j += ch.len_utf8();
                    }
                }
            }
            return Err(LexError {
                pos: i,
                msg: "unterminated string".into(),
            });
        }
        // Numbers.
        if b.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                i += 1;
            }
            let text = &src[start..i];
            let n = text.parse::<f64>().map_err(|_| LexError {
                pos: start,
                msg: format!("bad number {text:?}"),
            })?;
            toks.push(Tok::Num(n));
            continue;
        }
        // Identifiers / keywords.
        if b.is_ascii_alphabetic() || b == b'_' || b == b'$' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
            {
                i += 1;
            }
            toks.push(Tok::Ident(src[start..i].to_owned()));
            continue;
        }
        // Punctuation.
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                toks.push(Tok::Punct(p));
                i += p.len();
                continue 'outer;
            }
        }
        return Err(LexError {
            pos: i,
            msg: format!("unexpected byte {:?}", b as char),
        });
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_statement() {
        let t = lex("var x = 'a' + \"b\";").unwrap();
        assert_eq!(
            t,
            vec![
                Tok::Ident("var".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Str("a".into()),
                Tok::Punct("+"),
                Tok::Str("b".into()),
                Tok::Punct(";"),
            ]
        );
    }

    #[test]
    fn longest_match_operators() {
        let t = lex("a===b==c=d").unwrap();
        let puncts: Vec<&str> = t
            .iter()
            .filter_map(|t| match t {
                Tok::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, ["===", "==", "="]);
    }

    #[test]
    fn escapes_in_strings() {
        let t = lex(r#"'a\x41B\n\'q\''"#).unwrap();
        assert_eq!(t, vec![Tok::Str("aAB\n'q'".into())]);
    }

    #[test]
    fn comments_skipped() {
        let t = lex("1 // line\n + /* block */ 2").unwrap();
        assert_eq!(t, vec![Tok::Num(1.0), Tok::Punct("+"), Tok::Num(2.0)]);
    }

    #[test]
    fn numbers_with_decimals() {
        assert_eq!(lex("3.25").unwrap(), vec![Tok::Num(3.25)]);
    }

    #[test]
    fn errors_reported() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("@").is_err());
        assert!(lex("/* open").is_err());
    }

    #[test]
    fn dollar_and_underscore_idents() {
        let t = lex("$el _tmp2").unwrap();
        assert_eq!(
            t,
            vec![Tok::Ident("$el".into()), Tok::Ident("_tmp2".into())]
        );
    }
}

//! Edge-case and fuzz-regression tests for the lexer and parser.
//!
//! The differential harness (`tests/js_differential.rs`) checks that the two
//! engines agree; these tests check that the *front end* they share neither
//! panics nor mis-shapes the AST on hostile input. Every case that once
//! panicked is pinned here so it cannot regress.

use super::ast::{BinOp, Expr, Stmt, UnOp};
use super::lexer::{lex, Tok};
use super::parser::parse_program;

use rand::Rng;
use ss_types::rng::sub_rng;

// ---------------------------------------------------------------- lexer ----

#[test]
fn escaped_multibyte_char_does_not_panic() {
    // Regression: `\` followed by a multi-byte UTF-8 char used to copy only
    // the lead byte and advance the cursor mid-codepoint, panicking on the
    // next slice.
    let t = lex("'\\é'").unwrap();
    assert_eq!(t, vec![Tok::Str("é".into())]);
    let t = lex("'a\\\u{1f600}b'").unwrap();
    assert_eq!(t, vec![Tok::Str("a\u{1f600}b".into())]);
}

#[test]
fn multibyte_chars_in_strings_survive_unescaped() {
    let t = lex("'héllo \u{4e16}\u{754c}'").unwrap();
    assert_eq!(t, vec![Tok::Str("héllo \u{4e16}\u{754c}".into())]);
}

#[test]
fn escape_zoo() {
    let t = lex(r#"'\n\t\r\\\'\"\/'"#).unwrap();
    assert_eq!(t, vec![Tok::Str("\n\t\r\\'\"/".into())]);
    // \xHH and \uHHHH, including a surrogate half that maps to U+FFFD.
    let t = lex(r#"'\x41B\ud800'"#).unwrap();
    assert_eq!(t, vec![Tok::Str("AB\u{fffd}".into())]);
}

#[test]
fn bad_escapes_are_errors_not_panics() {
    assert!(lex(r"'\x4'").is_err()); // truncated \x
    assert!(lex(r"'\xZZ'").is_err()); // non-hex \x
    assert!(lex(r"'\u12'").is_err()); // truncated \u
    assert!(lex(r"'\uWXYZ'").is_err()); // non-hex \u
    assert!(lex("'\\").is_err()); // dangling escape at EOF
}

#[test]
fn truncated_escape_before_multibyte_is_error() {
    // `\x` whose "hex digits" straddle a multi-byte char: the byte-range
    // slice misses the char boundary and must surface as an error.
    assert!(lex("'\\xé'").is_err());
    assert!(lex("'\\ué'").is_err());
}

#[test]
fn numeric_forms() {
    assert_eq!(lex("1.").unwrap(), vec![Tok::Num(1.0)]);
    assert_eq!(lex(".5").unwrap(), vec![Tok::Punct("."), Tok::Num(5.0)]);
    assert_eq!(lex("0007").unwrap(), vec![Tok::Num(7.0)]);
    // The greedy digits-and-dots scan folds `1..2` / `1.2.3` into one bad
    // literal — an error, not a panic.
    assert!(lex("1..2").is_err());
    assert!(lex("1.2.3").is_err());
}

// --------------------------------------------------------------- parser ----

/// Parses a single expression statement and returns the expression.
fn expr_of(src: &str) -> Expr {
    let prog = parse_program(src).unwrap();
    assert_eq!(prog.len(), 1, "expected one statement in {src:?}");
    match prog.into_iter().next().unwrap() {
        Stmt::Expr(e) => e,
        other => panic!("expected expression statement, got {other:?}"),
    }
}

#[test]
fn precedence_mul_over_add() {
    // 1 + 2 * 3  ⇒  1 + (2 * 3)
    match expr_of("1 + 2 * 3;") {
        Expr::Bin(BinOp::Add, l, r) => {
            assert!(matches!(*l, Expr::Num(n) if n == 1.0));
            assert!(matches!(*r, Expr::Bin(BinOp::Mul, _, _)));
        }
        other => panic!("bad shape: {other:?}"),
    }
}

#[test]
fn subtraction_is_left_associative() {
    // 8 - 4 - 2  ⇒  (8 - 4) - 2
    match expr_of("8 - 4 - 2;") {
        Expr::Bin(BinOp::Sub, l, r) => {
            assert!(matches!(*l, Expr::Bin(BinOp::Sub, _, _)));
            assert!(matches!(*r, Expr::Num(n) if n == 2.0));
        }
        other => panic!("bad shape: {other:?}"),
    }
}

#[test]
fn comparison_binds_looser_than_arithmetic() {
    // 1 + 2 < 3 * 4  ⇒  (1 + 2) < (3 * 4)
    match expr_of("1 + 2 < 3 * 4;") {
        Expr::Bin(BinOp::Lt, l, r) => {
            assert!(matches!(*l, Expr::Bin(BinOp::Add, _, _)));
            assert!(matches!(*r, Expr::Bin(BinOp::Mul, _, _)));
        }
        other => panic!("bad shape: {other:?}"),
    }
}

#[test]
fn logic_or_binds_looser_than_and() {
    // a && b || c  ⇒  (a && b) || c
    match expr_of("a && b || c;") {
        Expr::Bin(BinOp::Or, l, r) => {
            assert!(matches!(*l, Expr::Bin(BinOp::And, _, _)));
            assert!(matches!(*r, Expr::Ident(ref n) if n == "c"));
        }
        other => panic!("bad shape: {other:?}"),
    }
}

#[test]
fn ternary_is_right_associative() {
    // a ? b : c ? d : e  ⇒  a ? b : (c ? d : e)
    match expr_of("a ? b : c ? d : e;") {
        Expr::Ternary(_, _, alt) => assert!(matches!(*alt, Expr::Ternary(_, _, _))),
        other => panic!("bad shape: {other:?}"),
    }
}

#[test]
fn unary_binds_tighter_than_binary() {
    // -a + b  ⇒  (-a) + b ; !a == b ⇒ (!a) == b
    match expr_of("-a + b;") {
        Expr::Bin(BinOp::Add, l, _) => assert!(matches!(*l, Expr::Un(UnOp::Neg, _))),
        other => panic!("bad shape: {other:?}"),
    }
    match expr_of("!a == b;") {
        Expr::Bin(BinOp::Eq, l, _) => assert!(matches!(*l, Expr::Un(UnOp::Not, _))),
        other => panic!("bad shape: {other:?}"),
    }
}

#[test]
fn assignment_is_right_associative() {
    // a = b = 1  ⇒  a = (b = 1)
    match expr_of("a = b = 1;") {
        Expr::Assign(t, v) => {
            assert!(matches!(*t, Expr::Ident(ref n) if n == "a"));
            assert!(matches!(*v, Expr::Assign(_, _)));
        }
        other => panic!("bad shape: {other:?}"),
    }
}

#[test]
fn member_and_index_chain() {
    // a.b[0].c parses inside-out: Member(Index(Member(a, b), 0), c)
    match expr_of("a.b[0].c;") {
        Expr::Member(inner, ref c) => {
            assert_eq!(c, "c");
            assert!(matches!(*inner, Expr::Index(_, _)));
        }
        other => panic!("bad shape: {other:?}"),
    }
}

#[test]
fn invalid_assignment_targets_rejected() {
    assert!(parse_program("1 = 2;").is_err());
    assert!(parse_program("(a + b) = 2;").is_err());
    assert!(parse_program("f() = 2;").is_err());
}

#[test]
fn truncated_inputs_are_errors_not_panics() {
    for src in [
        "var",
        "var x =",
        "if (",
        "if (a) {",
        "while (a",
        "for (;;",
        "function",
        "function f(",
        "function f(a,",
        "return",
        "a.",
        "a[",
        "a(",
        "a ?",
        "a ? b :",
        "var x = [1,",
    ] {
        // `return` alone is legal (return undefined); everything else must
        // error. Either way: no panic.
        let _ = parse_program(src);
    }
    assert!(parse_program("var x =").is_err());
    assert!(parse_program("a.").is_err());
}

// -------------------------------------------- parser depth-cap regressions ----

#[test]
fn deep_parens_hit_depth_cap_not_stack() {
    // Regression: each of these used to recurse once per character and
    // overflow the native stack. Now they bounce off MAX_PARSE_DEPTH.
    let src = format!("{}1{};", "(".repeat(5_000), ")".repeat(5_000));
    let e = parse_program(&src).unwrap_err();
    assert!(e.to_string().contains("nesting too deep"), "{e}");
}

#[test]
fn deep_unary_chain_hits_depth_cap() {
    let src = format!("{}1;", "!".repeat(5_000));
    assert!(parse_program(&src).is_err());
    let src = format!("{}1;", "-".repeat(5_000));
    assert!(parse_program(&src).is_err());
}

#[test]
fn deep_assign_chain_hits_depth_cap() {
    let src = format!("{}1;", "a = ".repeat(5_000));
    assert!(parse_program(&src).is_err());
}

#[test]
fn deep_nested_ifs_hit_depth_cap() {
    let src = format!("{}x = 1;", "if (1) ".repeat(5_000));
    assert!(parse_program(&src).is_err());
}

#[test]
fn moderate_nesting_still_parses() {
    // The cap must not reject realistic obfuscated payloads.
    let src = format!("var x = {}1{};", "(".repeat(50), ")".repeat(50));
    assert!(parse_program(&src).is_ok());
    let src = format!("{}y = 1;{}", "if (1) {".repeat(40), "}".repeat(40));
    assert!(parse_program(&src).is_ok());
}

// ----------------------------------------------------------------- fuzz ----

/// Seeded byte-soup fuzz: the front end must return `Ok` or `Err`, never
/// panic, on arbitrary input. Pure regression insurance — every class of
/// panic we have ever seen came from inputs this loop covers (mid-codepoint
/// slices, truncated escapes, runaway recursion).
#[test]
fn fuzz_random_soup_never_panics() {
    let mut rng = sub_rng(0x5eed, "js/parser_edge/soup");
    // A byte palette biased toward syntax so the parser gets exercised, plus
    // raw multi-byte characters and escapes to stress the lexer.
    let atoms: &[&str] = &[
        "var ",
        "x",
        "y",
        "f",
        "if",
        "else",
        "while",
        "for",
        "function",
        "return ",
        "(",
        ")",
        "{",
        "}",
        "[",
        "]",
        ";",
        ",",
        ".",
        "=",
        "==",
        "===",
        "!",
        "&&",
        "||",
        "?",
        ":",
        "+",
        "-",
        "*",
        "/",
        "%",
        "<",
        ">",
        "1",
        "2.5",
        "0",
        "'s'",
        "\"t\"",
        "'\\x41'",
        "'\\u0042'",
        "'\\",
        "é",
        "\u{1f600}",
        "\\",
        "'",
        "\"",
        "//c\n",
        "/*b*/",
        "1..2",
        "@",
    ];
    for _ in 0..2_000 {
        let len = rng.gen_range(0..40);
        let src: String = (0..len)
            .map(|_| atoms[rng.gen_range(0..atoms.len())])
            .collect();
        let _ = parse_program(&src); // must not panic
    }
}

/// Seeded structured fuzz: well-formed programs of bounded depth must parse.
#[test]
fn fuzz_generated_programs_parse() {
    let mut rng = sub_rng(0x5eed, "js/parser_edge/wellformed");
    for _ in 0..500 {
        let mut src = String::new();
        for _ in 0..rng.gen_range(1..6) {
            gen_stmt(&mut rng, &mut src, 0);
        }
        parse_program(&src).unwrap_or_else(|e| panic!("generated program failed: {e}\n{src}"));
    }
}

fn gen_stmt(rng: &mut ss_types::rng::SimRng, out: &mut String, depth: usize) {
    match rng.gen_range(0..5) {
        0 => {
            out.push_str("var v");
            out.push_str(&rng.gen_range(0..5u32).to_string());
            out.push_str(" = ");
            gen_expr(rng, out, depth + 1);
            out.push(';');
        }
        1 if depth < 3 => {
            out.push_str("if (");
            gen_expr(rng, out, depth + 1);
            out.push_str(") { ");
            gen_stmt(rng, out, depth + 1);
            out.push_str(" } else { ");
            gen_stmt(rng, out, depth + 1);
            out.push_str(" }");
        }
        2 if depth < 3 => {
            out.push_str("while (0) { ");
            gen_stmt(rng, out, depth + 1);
            out.push_str(" }");
        }
        3 if depth < 3 => {
            out.push_str("for (var i = 0; i < 2; i = i + 1) { ");
            gen_stmt(rng, out, depth + 1);
            out.push_str(" }");
        }
        _ => {
            gen_expr(rng, out, depth + 1);
            out.push(';');
        }
    }
}

fn gen_expr(rng: &mut ss_types::rng::SimRng, out: &mut String, depth: usize) {
    if depth >= 5 {
        out.push('1');
        return;
    }
    match rng.gen_range(0..6) {
        0 => out.push_str(&format!("{}", rng.gen_range(0..100))),
        1 => out.push_str("'s'"),
        2 => {
            out.push('(');
            gen_expr(rng, out, depth + 1);
            out.push_str(match rng.gen_range(0..5) {
                0 => " + ",
                1 => " - ",
                2 => " * ",
                3 => " == ",
                _ => " < ",
            });
            gen_expr(rng, out, depth + 1);
            out.push(')');
        }
        3 => {
            out.push('!');
            gen_expr(rng, out, depth + 1);
        }
        4 => {
            out.push('(');
            gen_expr(rng, out, depth + 1);
            out.push_str(" ? ");
            gen_expr(rng, out, depth + 1);
            out.push_str(" : ");
            gen_expr(rng, out, depth + 1);
            out.push(')');
        }
        _ => {
            out.push('[');
            gen_expr(rng, out, depth + 1);
            out.push_str(", ");
            gen_expr(rng, out, depth + 1);
            out.push(']');
        }
    }
}

//! The shared runtime layer: the value model, the page (DOM) environment,
//! and every semantic primitive both engines use.
//!
//! The tree-walking interpreter ([`super::interp`]) and the bytecode VM
//! ([`super::vm`]) differ only in control flow, name resolution, and step
//! accounting. Everything observable — member access, DOM mutation, method
//! dispatch, coercion, builtin functions, error strings — lives here as
//! free functions over [`PageEnv`], so the two engines agree on these
//! semantics by construction and the differential harness only has to lock
//! the execution machinery.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use super::ast::{BinOp, Stmt, UnOp};
use super::bytecode::Chunk;

/// Step budget shared by both engines: one step per statement, per
/// expression node, and per loop iteration.
pub(crate) const MAX_STEPS: u64 = 200_000;

/// Maximum JS call depth (function calls plus `eval` re-entries). Both
/// engines execute calls by Rust-level recursion, so without a cap a
/// self-recursive script overflows the native stack long before the step
/// budget trips; with it, runaway recursion is an ordinary [`JsError`].
/// The bound is deliberately small: it must hold comfortably within a
/// default 2 MiB thread stack even for unoptimized builds (each JS call is
/// a dozen-plus Rust frames), and no real cloaking payload recurses at all.
pub(crate) const MAX_CALL_DEPTH: usize = 32;

/// A runtime error. The crawler treats any [`JsError`] as "script did
/// nothing observable" — real crawlers must survive hostile pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsError {
    /// The source failed to lex/parse.
    Syntax(String),
    /// A runtime failure (bad member, not callable, …).
    Runtime(String),
    /// The step budget was exhausted (runaway loop).
    Budget,
}

impl fmt::Display for JsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsError::Syntax(m) => write!(f, "syntax error: {m}"),
            JsError::Runtime(m) => write!(f, "runtime error: {m}"),
            JsError::Budget => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for JsError {}

pub(crate) fn rt<T>(msg: impl Into<String>) -> Result<T, JsError> {
    Err(JsError::Runtime(msg.into()))
}

/// A dynamically created element (via `document.createElement`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DynElement {
    /// Tag name.
    pub tag: String,
    /// Attributes set via `setAttribute` or property assignment.
    pub attrs: Vec<(String, String)>,
    /// Whether the element was appended into the document.
    pub attached: bool,
    /// `innerHTML`, if assigned.
    pub inner_html: String,
}

impl DynElement {
    /// First value of attribute `name`.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn set_attr(&mut self, name: &str, value: String) {
        let name = name.to_ascii_lowercase();
        match self.attrs.iter_mut().find(|(k, _)| *k == name) {
            Some(slot) => slot.1 = value,
            None => self.attrs.push((name, value)),
        }
    }
}

/// Observable side effects of running a page's scripts — what the VanGogh
/// renderer inspects after execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RenderEffects {
    /// `window.location` navigation target, if any (a JS redirect).
    pub redirect: Option<String>,
    /// Concatenated `document.write` output (HTML, parsed by the renderer).
    pub written_html: String,
    /// Elements created at runtime; includes detached ones.
    pub elements: Vec<DynElement>,
}

impl RenderEffects {
    /// Dynamically created elements that were actually attached.
    pub fn attached_elements(&self) -> impl Iterator<Item = &DynElement> {
        self.elements.iter().filter(|e| e.attached)
    }
}

/// The page environment scripts run against: the inputs cloaking payloads
/// branch on, and the effect sinks they write to.
#[derive(Debug, Clone, Default)]
pub struct PageEnv {
    /// `navigator.userAgent`.
    pub user_agent: String,
    /// `document.referrer` ("" when absent, as in browsers).
    pub referrer: String,
    /// `document.title`.
    pub title: String,
    /// `window.location.href` of the page itself.
    pub location_href: String,
    /// Ids present in the static DOM (for `getElementById` hits).
    pub dom_ids: Vec<String>,
    /// Accumulated effects.
    pub effects: RenderEffects,
}

impl PageEnv {
    /// Environment for a browser visit.
    pub fn browser(url: &str, referrer: Option<&str>) -> Self {
        PageEnv {
            user_agent: crate::http::UserAgent::Browser.header_value().to_owned(),
            referrer: referrer.unwrap_or("").to_owned(),
            location_href: url.to_owned(),
            ..PageEnv::default()
        }
    }
}

/// Runtime values.
#[derive(Debug, Clone)]
pub enum Value {
    /// `undefined`.
    Undefined,
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (f64, like JS).
    Num(f64),
    /// String.
    Str(String),
    /// Array (shared, mutable — JS reference semantics).
    Array(Rc<RefCell<Vec<Value>>>),
    /// Handle to a dynamically created element (index into effects).
    Element(usize),
    /// Handle to a native singleton: "document", "window", "location",
    /// "navigator", "Math", "String", "body".
    Native(&'static str),
    /// A user-defined function.
    Function(Rc<FuncDef>),
}

/// A user-defined function definition. The treewalker carries the AST
/// body; VM-created functions instead reference a compiled proto inside a
/// shared [`Chunk`]. Both flow through [`Value::Function`] so coercions
/// (`truthy`, `to_js_string`, loose equality) agree between engines.
#[derive(Debug)]
pub struct FuncDef {
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements (empty for VM-compiled functions).
    pub body: Vec<Stmt>,
    /// Compiled form: `(chunk, proto index)`, set by the VM only.
    pub(crate) compiled: Option<(Arc<Chunk>, usize)>,
}

impl FuncDef {
    /// A tree-walker function (AST body).
    pub(crate) fn tree(params: Vec<String>, body: Vec<Stmt>) -> Self {
        FuncDef {
            params,
            body,
            compiled: None,
        }
    }

    /// A VM function referencing a compiled proto.
    pub(crate) fn vm(params: Vec<String>, chunk: Arc<Chunk>, proto: usize) -> Self {
        FuncDef {
            params,
            body: Vec::new(),
            compiled: Some((chunk, proto)),
        }
    }
}

impl Value {
    /// JS-style truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Undefined | Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Array(_) | Value::Element(_) | Value::Native(_) | Value::Function(_) => true,
        }
    }

    /// JS-style string coercion.
    pub fn to_js_string(&self) -> String {
        match self {
            Value::Undefined => "undefined".into(),
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Array(items) => items
                .borrow()
                .iter()
                .map(Value::to_js_string)
                .collect::<Vec<_>>()
                .join(","),
            Value::Element(_) => "[object HTMLElement]".into(),
            Value::Native(n) => format!("[object {n}]"),
            Value::Function(_) => "function".into(),
        }
    }

    /// JS-style numeric coercion (NaN on failure).
    pub fn to_num(&self) -> f64 {
        match self {
            Value::Num(n) => *n,
            Value::Bool(true) => 1.0,
            Value::Bool(false) | Value::Null => 0.0,
            Value::Str(s) => s.trim().parse().unwrap_or(f64::NAN),
            _ => f64::NAN,
        }
    }
}

/// The names that resolve to a [`Value::Native`] in identifier position —
/// checked *before* scope lookup, so `var document = 5; document` still
/// yields the native (exactly the treewalker's historical behavior).
pub(crate) fn ident_native(name: &str) -> Option<&'static str> {
    match name {
        "document" => Some("document"),
        "window" => Some("window"),
        "navigator" => Some("navigator"),
        "Math" => Some("Math"),
        "String" => Some("String"),
        "screen" => Some("screen"),
        _ => None,
    }
}

/// Free builtin functions intercepted by name in call position, before any
/// scope lookup (so a shadowing `var parseInt = …` cannot replace them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Builtin {
    /// `parseInt(s)`.
    ParseInt,
    /// `unescape(s)` / `decodeURIComponent(s)`.
    Unescape,
    /// `eval(src)` — handled by each engine (it re-enters execution).
    Eval,
    /// `alert(..)` / `setTimeout(..)` — accepted, ignored.
    Noop,
}

impl Builtin {
    pub(crate) fn of(name: &str) -> Option<Builtin> {
        match name {
            "parseInt" => Some(Builtin::ParseInt),
            "unescape" | "decodeURIComponent" => Some(Builtin::Unescape),
            "eval" => Some(Builtin::Eval),
            "alert" | "setTimeout" => Some(Builtin::Noop),
            _ => None,
        }
    }

    /// Evaluates a non-`eval` builtin (these never touch the environment).
    pub(crate) fn call(self, argv: &[Value]) -> Value {
        match self {
            Builtin::ParseInt => {
                let s = argv.first().map(Value::to_js_string).unwrap_or_default();
                let digits: String = s
                    .trim()
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '-')
                    .collect();
                digits
                    .parse::<f64>()
                    .map(Value::Num)
                    .unwrap_or(Value::Num(f64::NAN))
            }
            Builtin::Unescape => {
                let s = argv.first().map(Value::to_js_string).unwrap_or_default();
                Value::Str(percent_decode(&s))
            }
            Builtin::Noop => Value::Undefined,
            Builtin::Eval => unreachable!("eval is engine-specific"),
        }
    }
}

/// Applies a unary operator.
pub(crate) fn apply_un(op: UnOp, v: &Value) -> Value {
    match op {
        UnOp::Not => Value::Bool(!v.truthy()),
        UnOp::Neg => Value::Num(-v.to_num()),
    }
}

/// Applies a non-short-circuit binary operator (`&&`/`||` are control
/// flow, handled by each engine). Never errors.
pub(crate) fn apply_bin(op: BinOp, lhs: &Value, rhs: &Value) -> Value {
    match op {
        BinOp::Add => match (lhs, rhs) {
            (Value::Str(_), _) | (_, Value::Str(_)) => {
                Value::Str(format!("{}{}", lhs.to_js_string(), rhs.to_js_string()))
            }
            _ => Value::Num(lhs.to_num() + rhs.to_num()),
        },
        BinOp::Sub => Value::Num(lhs.to_num() - rhs.to_num()),
        BinOp::Mul => Value::Num(lhs.to_num() * rhs.to_num()),
        BinOp::Div => Value::Num(lhs.to_num() / rhs.to_num()),
        BinOp::Rem => Value::Num(lhs.to_num() % rhs.to_num()),
        BinOp::Eq => Value::Bool(loose_eq(lhs, rhs)),
        BinOp::Ne => Value::Bool(!loose_eq(lhs, rhs)),
        BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => {
            let cmp = match (lhs, rhs) {
                (Value::Str(x), Value::Str(y)) => x.partial_cmp(y),
                _ => lhs.to_num().partial_cmp(&rhs.to_num()),
            };
            match cmp {
                None => Value::Bool(false),
                Some(ord) => Value::Bool(match op {
                    BinOp::Lt => ord.is_lt(),
                    BinOp::Gt => ord.is_gt(),
                    BinOp::Le => ord.is_le(),
                    _ => ord.is_ge(),
                }),
            }
        }
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops are control flow"),
    }
}

/// `base[i]` in read position. Never errors.
pub(crate) fn index_get(env: &mut PageEnv, base: &Value, i: &Value) -> Result<Value, JsError> {
    match (base, i) {
        (Value::Array(items), Value::Num(n)) => {
            let items = items.borrow();
            Ok(items.get(*n as usize).cloned().unwrap_or(Value::Undefined))
        }
        (Value::Str(s), Value::Num(n)) => Ok(s
            .chars()
            .nth(*n as usize)
            .map(|c| Value::Str(c.to_string()))
            .unwrap_or(Value::Undefined)),
        (base, Value::Str(field)) => get_member(env, base, field),
        _ => Ok(Value::Undefined),
    }
}

/// `base[i] = v`. Arrays grow with `undefined` holes, string keys fall
/// through to member assignment, anything else is a runtime error.
pub(crate) fn index_assign(
    env: &mut PageEnv,
    base: &Value,
    i: &Value,
    v: Value,
) -> Result<(), JsError> {
    match (base, i) {
        (Value::Array(items), Value::Num(n)) => {
            let mut items = items.borrow_mut();
            let ix = *n as usize;
            if ix >= items.len() {
                items.resize(ix + 1, Value::Undefined);
            }
            items[ix] = v;
            Ok(())
        }
        (base, Value::Str(field)) => set_member(env, base, field, v),
        _ => rt("invalid index assignment"),
    }
}

// ---- member access on natives, elements, strings, arrays ----

/// `base.field` in read position. Never errors.
pub(crate) fn get_member(env: &mut PageEnv, base: &Value, field: &str) -> Result<Value, JsError> {
    match base {
        Value::Native("document") => match field {
            "referrer" => Ok(Value::Str(env.referrer.clone())),
            "title" => Ok(Value::Str(env.title.clone())),
            "location" => Ok(Value::Native("location")),
            "body" => Ok(Value::Native("body")),
            _ => Ok(Value::Undefined),
        },
        Value::Native("window") => match field {
            "location" => Ok(Value::Native("location")),
            "document" => Ok(Value::Native("document")),
            "navigator" => Ok(Value::Native("navigator")),
            "innerWidth" => Ok(Value::Num(1280.0)),
            "innerHeight" => Ok(Value::Num(800.0)),
            _ => Ok(Value::Undefined),
        },
        Value::Native("navigator") => match field {
            "userAgent" => Ok(Value::Str(env.user_agent.clone())),
            _ => Ok(Value::Undefined),
        },
        Value::Native("screen") => match field {
            "width" => Ok(Value::Num(1280.0)),
            "height" => Ok(Value::Num(800.0)),
            _ => Ok(Value::Undefined),
        },
        Value::Native("location") => match field {
            "href" => Ok(Value::Str(env.location_href.clone())),
            _ => Ok(Value::Undefined),
        },
        Value::Str(s) => match field {
            "length" => Ok(Value::Num(s.chars().count() as f64)),
            _ => Ok(Value::Undefined),
        },
        Value::Array(items) => match field {
            "length" => Ok(Value::Num(items.borrow().len() as f64)),
            _ => Ok(Value::Undefined),
        },
        Value::Element(h) => {
            let el = &env.effects.elements[*h];
            match field {
                "tagName" => Ok(Value::Str(el.tag.to_ascii_uppercase())),
                "innerHTML" => Ok(Value::Str(el.inner_html.clone())),
                other => Ok(el
                    .attr(other)
                    .map(|v| Value::Str(v.to_owned()))
                    .unwrap_or(Value::Undefined)),
            }
        }
        _ => Ok(Value::Undefined),
    }
}

/// `base.field = v`. Redirect/title/element sinks; silently ignored
/// elsewhere, like sloppy JS on frozen hosts.
pub(crate) fn set_member(
    env: &mut PageEnv,
    base: &Value,
    field: &str,
    v: Value,
) -> Result<(), JsError> {
    match base {
        // window.location = url; document.location = url
        Value::Native("window") | Value::Native("document") if field == "location" => {
            env.effects.redirect = Some(v.to_js_string());
            Ok(())
        }
        // window.location.href = url
        Value::Native("location") if field == "href" => {
            env.effects.redirect = Some(v.to_js_string());
            Ok(())
        }
        Value::Native("document") if field == "title" => {
            env.title = v.to_js_string();
            Ok(())
        }
        Value::Element(h) => {
            let el = &mut env.effects.elements[*h];
            if field == "innerHTML" {
                el.inner_html = v.to_js_string();
            } else {
                el.set_attr(field, v.to_js_string());
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// `base.method(argv…)` dispatch for every native object, element handle,
/// string, and array method both engines support.
pub(crate) fn call_method(
    env: &mut PageEnv,
    base: &Value,
    method: &str,
    argv: Vec<Value>,
) -> Result<Value, JsError> {
    let arg_str = |i: usize| argv.get(i).map(Value::to_js_string).unwrap_or_default();
    match base {
        Value::Native("document") => match method {
            "write" | "writeln" => {
                for a in &argv {
                    env.effects.written_html.push_str(&a.to_js_string());
                }
                Ok(Value::Undefined)
            }
            "createElement" => {
                let tag = arg_str(0).to_ascii_lowercase();
                env.effects.elements.push(DynElement {
                    tag,
                    ..DynElement::default()
                });
                Ok(Value::Element(env.effects.elements.len() - 1))
            }
            "getElementById" => {
                let id = arg_str(0);
                if env.dom_ids.contains(&id) {
                    // Materialize a handle standing in for the static
                    // element; appends to it attach to the document.
                    env.effects.elements.push(DynElement {
                        tag: "div".into(),
                        attrs: vec![("id".into(), id)],
                        attached: true,
                        inner_html: String::new(),
                    });
                    Ok(Value::Element(env.effects.elements.len() - 1))
                } else {
                    Ok(Value::Null)
                }
            }
            _ => rt(format!("document.{method} is not a function")),
        },
        Value::Native("location") => match method {
            "replace" | "assign" => {
                env.effects.redirect = Some(arg_str(0));
                Ok(Value::Undefined)
            }
            _ => rt(format!("location.{method} is not a function")),
        },
        Value::Native("body") => match method {
            "appendChild" | "insertBefore" => {
                if let Some(Value::Element(h)) = argv.first() {
                    env.effects.elements[*h].attached = true;
                }
                Ok(argv.into_iter().next().unwrap_or(Value::Undefined))
            }
            _ => rt(format!("body.{method} is not a function")),
        },
        Value::Native("String") => match method {
            "fromCharCode" => {
                let s: String = argv
                    .iter()
                    .map(|v| char::from_u32(v.to_num() as u32).unwrap_or('\u{fffd}'))
                    .collect();
                Ok(Value::Str(s))
            }
            _ => rt(format!("String.{method} is not a function")),
        },
        Value::Native("Math") => {
            let x = argv.first().map(Value::to_num).unwrap_or(f64::NAN);
            match method {
                "floor" => Ok(Value::Num(x.floor())),
                "ceil" => Ok(Value::Num(x.ceil())),
                "abs" => Ok(Value::Num(x.abs())),
                "round" => Ok(Value::Num(x.round())),
                "max" => Ok(Value::Num(
                    argv.iter()
                        .map(Value::to_num)
                        .fold(f64::NEG_INFINITY, f64::max),
                )),
                "min" => Ok(Value::Num(
                    argv.iter().map(Value::to_num).fold(f64::INFINITY, f64::min),
                )),
                _ => rt(format!("Math.{method} is not a function")),
            }
        }
        Value::Element(h) => {
            let h = *h;
            match method {
                "setAttribute" => {
                    let (name, value) = (arg_str(0), arg_str(1));
                    env.effects.elements[h].set_attr(&name, value);
                    Ok(Value::Undefined)
                }
                "getAttribute" => Ok(env.effects.elements[h]
                    .attr(&arg_str(0))
                    .map(|v| Value::Str(v.to_owned()))
                    .unwrap_or(Value::Null)),
                "appendChild" => {
                    // Appending to an attached element attaches the child.
                    let parent_attached = env.effects.elements[h].attached;
                    if let Some(Value::Element(c)) = argv.first() {
                        if parent_attached {
                            env.effects.elements[*c].attached = true;
                        }
                    }
                    Ok(argv.into_iter().next().unwrap_or(Value::Undefined))
                }
                _ => rt(format!("element.{method} is not a function")),
            }
        }
        Value::Str(s) => string_method(s, method, argv),
        Value::Array(items) => match method {
            "join" => {
                let sep = if argv.is_empty() {
                    ",".to_owned()
                } else {
                    arg_str(0)
                };
                let joined = items
                    .borrow()
                    .iter()
                    .map(Value::to_js_string)
                    .collect::<Vec<_>>()
                    .join(&sep);
                Ok(Value::Str(joined))
            }
            "push" => {
                let mut b = items.borrow_mut();
                for a in argv {
                    b.push(a);
                }
                Ok(Value::Num(b.len() as f64))
            }
            "pop" => Ok(items.borrow_mut().pop().unwrap_or(Value::Undefined)),
            "reverse" => {
                items.borrow_mut().reverse();
                Ok(Value::Array(items.clone()))
            }
            "concat" => {
                let mut out = items.borrow().clone();
                for a in argv {
                    match a {
                        Value::Array(more) => out.extend(more.borrow().iter().cloned()),
                        v => out.push(v),
                    }
                }
                Ok(Value::Array(Rc::new(RefCell::new(out))))
            }
            _ => rt(format!("array.{method} is not a function")),
        },
        _ => rt(format!(".{method} called on non-object")),
    }
}

fn string_method(s: &str, method: &str, argv: Vec<Value>) -> Result<Value, JsError> {
    let arg_str = |i: usize| argv.get(i).map(Value::to_js_string).unwrap_or_default();
    let arg_num = |i: usize| argv.get(i).map(Value::to_num).unwrap_or(f64::NAN);
    match method {
        "split" => {
            let sep = arg_str(0);
            let parts: Vec<Value> = if argv.is_empty() {
                vec![Value::Str(s.to_owned())]
            } else if sep.is_empty() {
                s.chars().map(|c| Value::Str(c.to_string())).collect()
            } else {
                s.split(sep.as_str())
                    .map(|p| Value::Str(p.to_owned()))
                    .collect()
            };
            Ok(Value::Array(Rc::new(RefCell::new(parts))))
        }
        "replace" => Ok(Value::Str(s.replacen(
            arg_str(0).as_str(),
            arg_str(1).as_str(),
            1,
        ))),
        "charAt" => Ok(Value::Str(
            s.chars()
                .nth(arg_num(0) as usize)
                .map(|c| c.to_string())
                .unwrap_or_default(),
        )),
        "charCodeAt" => Ok(s
            .chars()
            .nth(arg_num(0) as usize)
            .map(|c| Value::Num(c as u32 as f64))
            .unwrap_or(Value::Num(f64::NAN))),
        "indexOf" => {
            let needle = arg_str(0);
            Ok(Value::Num(match s.find(needle.as_str()) {
                Some(byte) => s[..byte].chars().count() as f64,
                None => -1.0,
            }))
        }
        "substring" | "slice" => {
            let chars: Vec<char> = s.chars().collect();
            let a = (arg_num(0).max(0.0) as usize).min(chars.len());
            let b = if argv.len() > 1 {
                (arg_num(1).max(0.0) as usize).min(chars.len())
            } else {
                chars.len()
            };
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            Ok(Value::Str(chars[lo..hi].iter().collect()))
        }
        "toLowerCase" => Ok(Value::Str(s.to_lowercase())),
        "toUpperCase" => Ok(Value::Str(s.to_uppercase())),
        "concat" => {
            let mut out = s.to_owned();
            for a in &argv {
                out.push_str(&a.to_js_string());
            }
            Ok(Value::Str(out))
        }
        _ => rt(format!("string.{method} is not a function")),
    }
}

/// Loose equality: same-type compares directly; otherwise numeric coercion,
/// with null/undefined equal to each other only.
pub(crate) fn loose_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Undefined | Value::Null, Value::Undefined | Value::Null) => true,
        (Value::Undefined | Value::Null, _) | (_, Value::Undefined | Value::Null) => false,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Num(x), Value::Num(y)) => x == y,
        (Value::Element(x), Value::Element(y)) => x == y,
        (Value::Native(x), Value::Native(y)) => x == y,
        _ => a.to_num() == b.to_num(),
    }
}

/// Decodes `%XX` escapes (the subset `unescape` needs).
fn percent_decode(s: &str) -> String {
    ss_types::url::decode_component(&s.replace('+', "%2B"))
}

//! The compact compiled form of a mini-JS program: a [`Chunk`] holding a
//! constants pool, an interned string table, and one [`FnProto`] per
//! function (proto 0 is the top level).
//!
//! Design notes:
//!
//! * **Slots, not scope chains.** Each proto carries a `locals` table —
//!   every name the function's parameters and `var` statements can
//!   declare, collected at compile time. A frame is a `Vec<Option<Value>>`
//!   indexed by this table; `None` means "not declared yet", which keeps
//!   the treewalker's dynamic-scoping quirks (a `var` inside a never-taken
//!   branch does not shadow an outer binding) bit-compatible while the hot
//!   path is a vector index instead of a `HashMap` walk.
//! * **Steps are data.** The treewalker charges one budget step per
//!   statement, per expression node, and per loop iteration. The compiler
//!   reproduces the exact count with explicit [`Op::Step`] instructions,
//!   coalescing adjacent ticks into one instruction, so a folded constant
//!   expression still charges what the treewalker would have.
//! * **Send + Sync.** A chunk owns all its data (no `Rc`), so compiled
//!   chunks can sit behind `Arc` in a cross-thread cache shared by the
//!   crawl plane's worker shards.

use super::ast::{BinOp, UnOp};

/// A pooled constant.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ConstVal {
    /// `undefined`.
    Undefined,
    /// `null`.
    Null,
    /// Boolean literal or folded boolean.
    Bool(bool),
    /// Numeric literal or folded number.
    Num(f64),
    /// String literal or folded string.
    Str(String),
}

/// One bytecode instruction. Jump targets are absolute instruction
/// indices within the owning proto's `code`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Op {
    /// Charge `n` budget steps (coalesced treewalker ticks).
    Step(u32),
    /// Push `consts[i]`.
    Const(u32),
    /// Push the native singleton `strings[i]` resolves to (compile-time
    /// intercepted identifiers: `document`, `window`, `Math`, …).
    Native(u32),
    /// Push the current frame's slot `i`; falls back to a dynamic walk of
    /// outer frames (then `undefined`) when the slot is undeclared.
    LoadSlot(u16),
    /// Push the value of name `strings[i]` via a full dynamic walk.
    LoadName(u32),
    /// Peek the top of stack into slot `i` if declared here, else walk
    /// outer frames for an existing binding, else create a global.
    StoreSlot(u16),
    /// Peek the top of stack into name `strings[i]`: innermost existing
    /// binding, else create a global.
    StoreName(u32),
    /// Pop into slot `i`, declaring it in the current frame (`var`).
    DeclareSlot(u16),
    /// Pop into name `strings[i]`, declaring it in the current frame
    /// (`var` compiled in eval mode, where no locals table exists).
    DeclareName(u32),
    /// Pop into name `strings[i]` in the global frame (`function` decls
    /// bind globally at execution time, like the treewalker).
    DeclareGlobal(u32),
    /// Push a function value for proto `i` of the current chunk.
    MakeFunc(u32),
    /// Pop `n` values, push an array of them (in push order).
    MakeArray(u16),
    /// Pop base, push `base.field` where field is `strings[i]`.
    GetMember(u32),
    /// Pop index then base, push `base[index]`.
    GetIndex,
    /// Pop base, peek value, perform `base.field = value`.
    SetMember(u32),
    /// Pop index then base, peek value, perform `base[index] = value`.
    SetIndex,
    /// Pop operand, push result.
    Un(UnOp),
    /// Pop rhs then lhs, push result (non-short-circuit ops only).
    Bin(BinOp),
    /// Pop condition; jump if falsy.
    JumpIfFalse(u32),
    /// Peek condition; jump if falsy keeping the value (`&&`).
    JumpIfFalsePeek(u32),
    /// Peek condition; jump if truthy keeping the value (`||`).
    JumpIfTruePeek(u32),
    /// Unconditional jump.
    Jump(u32),
    /// Pop and discard.
    Pop,
    /// Pop `argc` args, call builtin `b`, push the result.
    CallBuiltin(super::runtime::Builtin, u16),
    /// Pop `argc` args, look name `strings[i]` up dynamically, call it.
    CallNamed(u32, u16),
    /// Pop receiver (pushed after args), pop `argc` args, dispatch method
    /// `strings[i]` on it, push the result.
    CallMethod(u32, u16),
    /// Pop the return value and leave the current frame.
    Return,
    /// Raise `Runtime(strings[i])` (compile-time-known error paths such
    /// as an uncallable callee, after argument side effects).
    Throw(u32),
}

/// A compiled function body. Proto 0 is the program top level.
#[derive(Debug, Clone, Default)]
pub(crate) struct FnProto {
    /// Slot index of each parameter, in declaration order. Duplicate
    /// parameter names share a slot (later bindings win, matching the
    /// treewalker's repeated `HashMap` insert).
    pub param_slots: Vec<u16>,
    /// All names this function can declare: parameters first, then every
    /// `var` target in source order (nested function bodies excluded).
    pub locals: Vec<String>,
    /// The instruction stream. Always ends `Const(undefined); Return`.
    pub code: Vec<Op>,
}

/// A compiled program: what the cache shares across crawl threads.
#[derive(Debug, Clone, Default)]
pub(crate) struct Chunk {
    /// Constant pool.
    pub consts: Vec<ConstVal>,
    /// Interned strings (member names, dynamic identifiers, messages).
    pub strings: Vec<String>,
    /// Function prototypes; index 0 is the top level.
    pub protos: Vec<FnProto>,
}

// The cache shares chunks across crawl worker threads behind `Arc`; this
// static assertion keeps the no-`Rc`-inside invariant honest.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Chunk>();
};

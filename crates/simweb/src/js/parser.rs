//! Recursive-descent parser producing the [`crate::js::ast`] tree.

use std::fmt;

use super::ast::{BinOp, Expr, Stmt, UnOp};
use super::lexer::{lex, Tok};

/// A parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Token index of the failure.
    pub at: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.msg)
    }
}

/// Parses a full program.
pub fn parse_program(src: &str) -> Result<Vec<Stmt>, ParseError> {
    let toks = lex(src).map_err(|e| ParseError {
        at: 0,
        msg: e.to_string(),
    })?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.statement()?);
    }
    Ok(stmts)
}

/// Recursion cap for the recursive-descent walk. The grammar recurses on
/// nested statements, parenthesized/unary expressions, and right-
/// associative assignment; without a cap, pathological inputs like
/// `((((…` overflow the native stack instead of erroring.
const MAX_PARSE_DEPTH: usize = 200;

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return self.err("nesting too deep");
        }
        Ok(())
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            msg: msg.into(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected {p:?}, found {:?}", self.peek()))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    // ---- statements ----

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        self.enter()?;
        let r = self.statement_inner();
        self.depth -= 1;
        r
    }

    fn statement_inner(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_punct(";") {
            return Ok(Stmt::Empty);
        }
        if self.eat_keyword("var") {
            let name = self.expect_ident()?;
            let init = if self.eat_punct("=") {
                Some(self.expression()?)
            } else {
                None
            };
            self.eat_punct(";");
            return Ok(Stmt::Var(name, init));
        }
        if self.eat_keyword("if") {
            self.expect_punct("(")?;
            let cond = self.expression()?;
            self.expect_punct(")")?;
            let then = self.block_or_single()?;
            let els = if self.eat_keyword("else") {
                self.block_or_single()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.eat_keyword("while") {
            self.expect_punct("(")?;
            let cond = self.expression()?;
            self.expect_punct(")")?;
            let body = self.block_or_single()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.eat_keyword("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else {
                let s = if self.eat_keyword("var") {
                    let name = self.expect_ident()?;
                    let init = if self.eat_punct("=") {
                        Some(self.expression()?)
                    } else {
                        None
                    };
                    Stmt::Var(name, init)
                } else {
                    Stmt::Expr(self.expression()?)
                };
                self.expect_punct(";")?;
                Some(Box::new(s))
            };
            let cond = if matches!(self.peek(), Some(Tok::Punct(";"))) {
                None
            } else {
                Some(self.expression()?)
            };
            self.expect_punct(";")?;
            let step = if matches!(self.peek(), Some(Tok::Punct(")"))) {
                None
            } else {
                Some(self.expression()?)
            };
            self.expect_punct(")")?;
            let body = self.block_or_single()?;
            return Ok(Stmt::For(init, cond, step, body));
        }
        if self.eat_keyword("function") {
            let name = self.expect_ident()?;
            self.expect_punct("(")?;
            let mut params = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    params.push(self.expect_ident()?);
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            self.expect_punct("{")?;
            let body = self.block_body()?;
            return Ok(Stmt::Function(name, params, body));
        }
        if self.eat_keyword("return") {
            if self.eat_punct(";") || self.at_end() {
                return Ok(Stmt::Return(None));
            }
            let e = self.expression()?;
            self.eat_punct(";");
            return Ok(Stmt::Return(Some(e)));
        }
        let e = self.expression()?;
        self.eat_punct(";");
        Ok(Stmt::Expr(e))
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.eat_punct("{") {
            self.block_body()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn block_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.at_end() {
                return self.err("unterminated block");
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    // ---- expressions (precedence climbing) ----

    fn expression(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let r = self.assignment_inner();
        self.depth -= 1;
        r
    }

    fn assignment_inner(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.ternary()?;
        if self.eat_punct("=") {
            let rhs = self.assignment()?;
            match &lhs {
                Expr::Ident(_) | Expr::Member(..) | Expr::Index(..) => {
                    return Ok(Expr::Assign(Box::new(lhs), Box::new(rhs)))
                }
                _ => return self.err("invalid assignment target"),
            }
        }
        // Compound assignment and increment sugar.
        if self.eat_punct("+=") {
            let rhs = self.assignment()?;
            return Ok(Expr::Assign(
                Box::new(lhs.clone()),
                Box::new(Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(rhs))),
            ));
        }
        if self.eat_punct("-=") {
            let rhs = self.assignment()?;
            return Ok(Expr::Assign(
                Box::new(lhs.clone()),
                Box::new(Expr::Bin(BinOp::Sub, Box::new(lhs), Box::new(rhs))),
            ));
        }
        if self.eat_punct("++") {
            return Ok(Expr::Assign(
                Box::new(lhs.clone()),
                Box::new(Expr::Bin(
                    BinOp::Add,
                    Box::new(lhs),
                    Box::new(Expr::Num(1.0)),
                )),
            ));
        }
        if self.eat_punct("--") {
            return Ok(Expr::Assign(
                Box::new(lhs.clone()),
                Box::new(Expr::Bin(
                    BinOp::Sub,
                    Box::new(lhs),
                    Box::new(Expr::Num(1.0)),
                )),
            ));
        }
        Ok(lhs)
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.or_expr()?;
        if self.eat_punct("?") {
            let a = self.assignment()?;
            self.expect_punct(":")?;
            let b = self.assignment()?;
            return Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)));
        }
        Ok(cond)
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while self.eat_punct("&&") {
            let rhs = self.equality()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.comparison()?;
        loop {
            let op = if self.eat_punct("===") || self.eat_punct("==") {
                BinOp::Eq
            } else if self.eat_punct("!==") || self.eat_punct("!=") {
                BinOp::Ne
            } else {
                break;
            };
            let rhs = self.comparison()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = if self.eat_punct("<=") {
                BinOp::Le
            } else if self.eat_punct(">=") {
                BinOp::Ge
            } else if self.eat_punct("<") {
                BinOp::Lt
            } else if self.eat_punct(">") {
                BinOp::Gt
            } else {
                break;
            };
            let rhs = self.additive()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = if self.eat_punct("+") {
                BinOp::Add
            } else if self.eat_punct("-") {
                BinOp::Sub
            } else {
                break;
            };
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.eat_punct("*") {
                BinOp::Mul
            } else if self.eat_punct("/") {
                BinOp::Div
            } else if self.eat_punct("%") {
                BinOp::Rem
            } else {
                break;
            };
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let r = self.unary_inner();
        self.depth -= 1;
        r
    }

    fn unary_inner(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("!") {
            return Ok(Expr::Un(UnOp::Not, Box::new(self.unary()?)));
        }
        if self.eat_punct("-") {
            return Ok(Expr::Un(UnOp::Neg, Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct(".") {
                let name = self.expect_ident()?;
                e = Expr::Member(Box::new(e), name);
            } else if self.eat_punct("[") {
                let idx = self.expression()?;
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if self.eat_punct("(") {
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.assignment()?);
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                e = Expr::Call(Box::new(e), args);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Num(n)) => {
                self.pos += 1;
                Ok(Expr::Num(n))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            Some(Tok::Ident(id)) => {
                self.pos += 1;
                match id.as_str() {
                    "true" => Ok(Expr::Bool(true)),
                    "false" => Ok(Expr::Bool(false)),
                    "null" => Ok(Expr::Null),
                    _ => Ok(Expr::Ident(id)),
                }
            }
            Some(Tok::Punct("(")) => {
                self.pos += 1;
                let e = self.expression()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Tok::Punct("[")) => {
                self.pos += 1;
                let mut items = Vec::new();
                if !self.eat_punct("]") {
                    loop {
                        items.push(self.assignment()?);
                        if self.eat_punct("]") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                Ok(Expr::Array(items))
            }
            other => self.err(format!("unexpected token {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_var_and_call() {
        let p = parse_program(
            "var f = document.createElement('iframe'); f.setAttribute('width', '100%');",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
        match &p[0] {
            Stmt::Var(name, Some(Expr::Call(callee, args))) => {
                assert_eq!(name, "f");
                assert_eq!(
                    **callee,
                    Expr::Member(
                        Box::new(Expr::Ident("document".into())),
                        "createElement".into()
                    )
                );
                assert_eq!(args[0], Expr::Str("iframe".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_is_conventional() {
        let p = parse_program("var x = 1 + 2 * 3 < 10 && a || b;").unwrap();
        match &p[0] {
            Stmt::Var(_, Some(Expr::Bin(BinOp::Or, lhs, _))) => match &**lhs {
                Expr::Bin(BinOp::And, cmp, _) => match &**cmp {
                    Expr::Bin(BinOp::Lt, add, _) => match &**add {
                        Expr::Bin(BinOp::Add, _, mul) => {
                            assert!(matches!(&**mul, Expr::Bin(BinOp::Mul, _, _)))
                        }
                        other => panic!("{other:?}"),
                    },
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_control_flow() {
        let src =
            "for (var i = 0; i < 3; i++) { if (i == 1) x = x + i; else x = 0; } while (x > 0) x--;";
        let p = parse_program(src).unwrap();
        assert!(matches!(p[0], Stmt::For(..)));
        assert!(matches!(p[1], Stmt::While(..)));
    }

    #[test]
    fn parses_function_and_return() {
        let p = parse_program("function add(a, b) { return a + b; } var z = add(1, 2);").unwrap();
        match &p[0] {
            Stmt::Function(name, params, body) => {
                assert_eq!(name, "add");
                assert_eq!(params, &["a", "b"]);
                assert_eq!(body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn member_chains_and_indexing() {
        let p = parse_program("document.body.appendChild(els[0]);").unwrap();
        match &p[0] {
            Stmt::Expr(Expr::Call(callee, args)) => {
                assert!(matches!(&**callee, Expr::Member(_, m) if m == "appendChild"));
                assert!(matches!(&args[0], Expr::Index(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ternary_and_assignment_chain() {
        let p = parse_program("x = a ? 'y' : 'n';").unwrap();
        assert!(
            matches!(&p[0], Stmt::Expr(Expr::Assign(_, rhs)) if matches!(&**rhs, Expr::Ternary(..)))
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_program("var = 3;").is_err());
        assert!(parse_program("if (").is_err());
        assert!(parse_program("1 + = 2").is_err());
        assert!(parse_program("(1 + 2) = 3").is_err());
    }
}

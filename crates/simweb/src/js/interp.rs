//! The tree-walking interpreter — the reference engine.
//!
//! All observable semantics (member access, DOM effects, method dispatch,
//! coercions, builtins, error strings) live in [`super::runtime`] and are
//! shared with the bytecode VM; this module contributes only the AST walk
//! itself: scope-chain `HashMap`s, statement/expression ticks, and
//! `Flow`-based `return` propagation. The differential harness in
//! `tests/js_differential.rs` locks the two engines together.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use super::ast::{BinOp, Expr, Stmt};
use super::runtime::{self, Builtin, FuncDef, JsError, PageEnv, Value, MAX_CALL_DEPTH, MAX_STEPS};

enum Flow {
    Normal,
    Return(Value),
}

/// The interpreter. Borrows a [`PageEnv`] and mutates its effect sinks.
pub struct Interpreter<'e> {
    env: &'e mut PageEnv,
    scopes: Vec<HashMap<String, Value>>,
    steps: u64,
    max_steps: u64,
    depth: usize,
}

impl<'e> Interpreter<'e> {
    /// Creates an interpreter with the default 200k step budget.
    pub fn new(env: &'e mut PageEnv) -> Self {
        Interpreter {
            env,
            scopes: vec![HashMap::new()],
            steps: 0,
            max_steps: MAX_STEPS,
            depth: 0,
        }
    }

    /// Runs a parsed program to completion.
    pub fn run(&mut self, prog: &[Stmt]) -> Result<(), JsError> {
        match self.exec_block(prog)? {
            Flow::Normal | Flow::Return(_) => Ok(()),
        }
    }

    fn tick(&mut self) -> Result<(), JsError> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(JsError::Budget);
        }
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, JsError> {
        for s in stmts {
            if let Flow::Return(v) = self.exec(s)? {
                return Ok(Flow::Return(v));
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<Flow, JsError> {
        self.tick()?;
        match stmt {
            Stmt::Empty => Ok(Flow::Normal),
            Stmt::Var(name, init) => {
                let v = match init {
                    Some(e) => self.eval(e)?,
                    None => Value::Undefined,
                };
                self.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::If(cond, then, els) => {
                if self.eval(cond)?.truthy() {
                    self.exec_block(then)
                } else {
                    self.exec_block(els)
                }
            }
            Stmt::While(cond, body) => {
                while self.eval(cond)?.truthy() {
                    self.tick()?;
                    if let Flow::Return(v) = self.exec_block(body)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For(init, cond, step, body) => {
                if let Some(init) = init {
                    self.exec(init)?;
                }
                loop {
                    if let Some(c) = cond {
                        if !self.eval(c)?.truthy() {
                            break;
                        }
                    }
                    self.tick()?;
                    if let Flow::Return(v) = self.exec_block(body)? {
                        return Ok(Flow::Return(v));
                    }
                    if let Some(s) = step {
                        self.eval(s)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Function(name, params, body) => {
                let f = Value::Function(Rc::new(FuncDef::tree(params.clone(), body.clone())));
                self.scopes
                    .first_mut()
                    .expect("global scope")
                    .insert(name.clone(), f);
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::Undefined,
                };
                Ok(Flow::Return(v))
            }
        }
    }

    fn lookup(&self, name: &str) -> Option<Value> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn assign_var(&mut self, name: &str, v: Value) {
        for scope in self.scopes.iter_mut().rev() {
            if scope.contains_key(name) {
                scope.insert(name.to_owned(), v);
                return;
            }
        }
        // Implicit global, as in sloppy-mode JS.
        self.scopes
            .first_mut()
            .expect("global scope")
            .insert(name.to_owned(), v);
    }

    fn rt<T>(&self, msg: impl Into<String>) -> Result<T, JsError> {
        Err(JsError::Runtime(msg.into()))
    }

    fn eval(&mut self, expr: &Expr) -> Result<Value, JsError> {
        self.tick()?;
        match expr {
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Ident(name) => {
                if name == "undefined" {
                    return Ok(Value::Undefined);
                }
                if let Some(n) = runtime::ident_native(name) {
                    return Ok(Value::Native(n));
                }
                match self.lookup(name) {
                    Some(v) => Ok(v),
                    None => Ok(Value::Undefined),
                }
            }
            Expr::Array(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item)?);
                }
                Ok(Value::Array(Rc::new(RefCell::new(out))))
            }
            Expr::Member(obj, field) => {
                let base = self.eval(obj)?;
                runtime::get_member(self.env, &base, field)
            }
            Expr::Index(obj, idx) => {
                let base = self.eval(obj)?;
                let i = self.eval(idx)?;
                runtime::index_get(self.env, &base, &i)
            }
            Expr::Un(op, e) => {
                let v = self.eval(e)?;
                Ok(runtime::apply_un(*op, &v))
            }
            Expr::Bin(op, a, b) => self.eval_bin(*op, a, b),
            Expr::Ternary(c, a, b) => {
                if self.eval(c)?.truthy() {
                    self.eval(a)
                } else {
                    self.eval(b)
                }
            }
            Expr::Assign(target, value) => {
                let v = self.eval(value)?;
                match &**target {
                    Expr::Ident(name) => {
                        self.assign_var(name, v.clone());
                        Ok(v)
                    }
                    Expr::Member(obj, field) => {
                        let base = self.eval(obj)?;
                        runtime::set_member(self.env, &base, field, v.clone())?;
                        Ok(v)
                    }
                    Expr::Index(obj, idx) => {
                        let base = self.eval(obj)?;
                        let i = self.eval(idx)?;
                        runtime::index_assign(self.env, &base, &i, v.clone())?;
                        Ok(v)
                    }
                    _ => self.rt("invalid assignment target"),
                }
            }
            Expr::Call(callee, args) => self.eval_call(callee, args),
        }
    }

    fn eval_bin(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<Value, JsError> {
        // Short-circuit forms first.
        match op {
            BinOp::And => {
                let lhs = self.eval(a)?;
                return if lhs.truthy() { self.eval(b) } else { Ok(lhs) };
            }
            BinOp::Or => {
                let lhs = self.eval(a)?;
                return if lhs.truthy() { Ok(lhs) } else { self.eval(b) };
            }
            _ => {}
        }
        let lhs = self.eval(a)?;
        let rhs = self.eval(b)?;
        Ok(runtime::apply_bin(op, &lhs, &rhs))
    }

    // ---- calls ----

    fn eval_call(&mut self, callee: &Expr, args: &[Expr]) -> Result<Value, JsError> {
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            argv.push(self.eval(a)?);
        }
        match callee {
            Expr::Ident(name) => match Builtin::of(name) {
                Some(Builtin::Eval) => {
                    // Real payloads love eval(obfuscated-string). Re-enter.
                    let src = argv.first().map(Value::to_js_string).unwrap_or_default();
                    let prog = super::parser::parse_program(&src)
                        .map_err(|e| JsError::Runtime(format!("eval: {e}")))?;
                    if self.depth >= MAX_CALL_DEPTH {
                        return self.rt("maximum call depth exceeded");
                    }
                    self.depth += 1;
                    let flow = self.exec_block(&prog);
                    self.depth -= 1;
                    flow?;
                    Ok(Value::Undefined)
                }
                Some(b) => Ok(b.call(&argv)),
                None => match self.lookup(name) {
                    Some(Value::Function(f)) => self.call_function(&f, argv),
                    Some(_) | None => self.rt(format!("{name} is not a function")),
                },
            },
            Expr::Member(obj, method) => {
                let base = self.eval(obj)?;
                runtime::call_method(self.env, &base, method, argv)
            }
            _ => self.rt("uncallable expression"),
        }
    }

    fn call_function(&mut self, f: &Rc<FuncDef>, argv: Vec<Value>) -> Result<Value, JsError> {
        if self.depth >= MAX_CALL_DEPTH {
            return self.rt("maximum call depth exceeded");
        }
        self.depth += 1;
        let mut scope = HashMap::new();
        for (i, p) in f.params.iter().enumerate() {
            scope.insert(p.clone(), argv.get(i).cloned().unwrap_or(Value::Undefined));
        }
        self.scopes.push(scope);
        let flow = self.exec_block(&f.body);
        self.scopes.pop();
        self.depth -= 1;
        match flow? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(Value::Undefined),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_script;
    use super::*;

    fn run(src: &str) -> PageEnv {
        let mut env =
            PageEnv::browser("http://door.com/page", Some("http://google.com/search?q=x"));
        run_script(src, &mut env).unwrap();
        env
    }

    #[test]
    fn arithmetic_and_vars() {
        let env = run("var a = 2; var b = a * 3 + 1; document.write('' + b);");
        assert_eq!(env.effects.written_html, "7");
    }

    #[test]
    fn string_building_and_write() {
        let env = run("var p = ['<if', 'rame>']; document.write(p.join(''));");
        assert_eq!(env.effects.written_html, "<iframe>");
    }

    #[test]
    fn js_redirect_via_location() {
        let env = run("window.location = 'http://store.com/';");
        assert_eq!(env.effects.redirect.as_deref(), Some("http://store.com/"));
        let env = run("window.location.href = 'http://a.com/';");
        assert_eq!(env.effects.redirect.as_deref(), Some("http://a.com/"));
        let env = run("window.location.replace('http://b.com/');");
        assert_eq!(env.effects.redirect.as_deref(), Some("http://b.com/"));
    }

    #[test]
    fn create_and_attach_iframe() {
        let env = run("var f = document.createElement('iframe');\
             f.setAttribute('width', '100%');\
             f.height = '100%';\
             f.src = 'http://store.com/';\
             document.body.appendChild(f);");
        let attached: Vec<_> = env.effects.attached_elements().collect();
        assert_eq!(attached.len(), 1);
        assert_eq!(attached[0].tag, "iframe");
        assert_eq!(attached[0].attr("width"), Some("100%"));
        assert_eq!(attached[0].attr("height"), Some("100%"));
        assert_eq!(attached[0].attr("src"), Some("http://store.com/"));
    }

    #[test]
    fn detached_elements_are_not_attached() {
        let env = run("var f = document.createElement('iframe'); f.src = 'http://x.com/';");
        assert_eq!(env.effects.attached_elements().count(), 0);
        assert_eq!(env.effects.elements.len(), 1);
    }

    #[test]
    fn referrer_conditional_cloaking() {
        let src = "if (document.referrer.indexOf('google') >= 0) { window.location = 'http://store.com/'; }";
        let env = run(src);
        assert!(env.effects.redirect.is_some());

        let mut env2 = PageEnv::browser("http://door.com/page", None);
        run_script(src, &mut env2).unwrap();
        assert!(env2.effects.redirect.is_none());
    }

    #[test]
    fn user_agent_branching() {
        let src = "if (navigator.userAgent.indexOf('Googlebot') < 0) document.write('user');";
        let env = run(src);
        assert_eq!(env.effects.written_html, "user");
        let mut bot = PageEnv {
            user_agent: crate::http::UserAgent::GoogleBot.header_value().into(),
            ..PageEnv::default()
        };
        run_script(src, &mut bot).unwrap();
        assert_eq!(bot.effects.written_html, "");
    }

    #[test]
    fn from_char_code_obfuscation() {
        let env = run("var cs = [104, 116, 116, 112];\
             var out = String.fromCharCode(cs[0], cs[1], cs[2], cs[3]);\
             document.write(out);");
        assert_eq!(env.effects.written_html, "http");
    }

    #[test]
    fn eval_reentry() {
        let env = run(r#"eval("document.write('ok');");"#);
        assert_eq!(env.effects.written_html, "ok");
    }

    #[test]
    fn loops_and_functions() {
        let env = run(
            "function rep(s, n) { var out = ''; for (var i = 0; i < n; i++) { out = out + s; } return out; }\
             document.write(rep('ab', 3));",
        );
        assert_eq!(env.effects.written_html, "ababab");
    }

    #[test]
    fn while_loop_and_compound_assign() {
        let env = run("var n = 0; while (n < 5) { n += 2; } document.write('' + n);");
        assert_eq!(env.effects.written_html, "6");
    }

    #[test]
    fn runaway_loop_hits_budget() {
        let mut env = PageEnv::default();
        let err = run_script("while (true) { var x = 1; }", &mut env).unwrap_err();
        assert_eq!(err, JsError::Budget);
    }

    #[test]
    fn runaway_recursion_hits_depth_cap() {
        // Rust-level recursion backs JS calls in both engines; without the
        // depth cap this would overflow the native stack, not error.
        let mut env = PageEnv::default();
        let err = run_script("function f() { return f(); } f();", &mut env).unwrap_err();
        assert_eq!(err, JsError::Runtime("maximum call depth exceeded".into()));
    }

    #[test]
    fn string_methods() {
        let env = run("var s = 'HeLLo world';\
             document.write(s.toLowerCase().replace('world', 'there').substring(0, 8));");
        assert_eq!(env.effects.written_html, "hello th");
    }

    #[test]
    fn unescape_decodes() {
        let env = run("document.write(unescape('%68%74%74%70'));");
        assert_eq!(env.effects.written_html, "http");
    }

    #[test]
    fn get_element_by_id_honours_static_dom() {
        let mut env = PageEnv {
            dom_ids: vec!["content".into()],
            ..PageEnv::default()
        };
        run_script(
            "var c = document.getElementById('content');\
             if (c != null) { var f = document.createElement('iframe'); c.appendChild(f); }",
            &mut env,
        )
        .unwrap();
        // iframe attached through the static container.
        assert!(env
            .effects
            .elements
            .iter()
            .any(|e| e.tag == "iframe" && e.attached));

        let mut env2 = PageEnv::default();
        run_script(
            "var c = document.getElementById('content'); document.write(c == null ? 'no' : 'yes');",
            &mut env2,
        )
        .unwrap();
        assert_eq!(env2.effects.written_html, "no");
    }

    #[test]
    fn ternary_and_equality() {
        let env = run("document.write(1 == '1' ? 'loose' : 'strict');");
        assert_eq!(env.effects.written_html, "loose");
    }

    #[test]
    fn runtime_errors_are_reported() {
        let mut env = PageEnv::default();
        assert!(matches!(
            run_script("nosuchfn();", &mut env),
            Err(JsError::Runtime(_))
        ));
        assert!(matches!(
            run_script("var x = ;", &mut env),
            Err(JsError::Syntax(_))
        ));
    }
}

//! The tree-walking interpreter and its page (DOM) environment.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use super::ast::{BinOp, Expr, Stmt, UnOp};

/// A runtime error. The crawler treats any [`JsError`] as "script did
/// nothing observable" — real crawlers must survive hostile pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsError {
    /// The source failed to lex/parse.
    Syntax(String),
    /// A runtime failure (bad member, not callable, …).
    Runtime(String),
    /// The step budget was exhausted (runaway loop).
    Budget,
}

impl fmt::Display for JsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsError::Syntax(m) => write!(f, "syntax error: {m}"),
            JsError::Runtime(m) => write!(f, "runtime error: {m}"),
            JsError::Budget => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for JsError {}

/// A dynamically created element (via `document.createElement`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DynElement {
    /// Tag name.
    pub tag: String,
    /// Attributes set via `setAttribute` or property assignment.
    pub attrs: Vec<(String, String)>,
    /// Whether the element was appended into the document.
    pub attached: bool,
    /// `innerHTML`, if assigned.
    pub inner_html: String,
}

impl DynElement {
    /// First value of attribute `name`.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn set_attr(&mut self, name: &str, value: String) {
        let name = name.to_ascii_lowercase();
        match self.attrs.iter_mut().find(|(k, _)| *k == name) {
            Some(slot) => slot.1 = value,
            None => self.attrs.push((name, value)),
        }
    }
}

/// Observable side effects of running a page's scripts — what the VanGogh
/// renderer inspects after execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RenderEffects {
    /// `window.location` navigation target, if any (a JS redirect).
    pub redirect: Option<String>,
    /// Concatenated `document.write` output (HTML, parsed by the renderer).
    pub written_html: String,
    /// Elements created at runtime; includes detached ones.
    pub elements: Vec<DynElement>,
}

impl RenderEffects {
    /// Dynamically created elements that were actually attached.
    pub fn attached_elements(&self) -> impl Iterator<Item = &DynElement> {
        self.elements.iter().filter(|e| e.attached)
    }
}

/// The page environment scripts run against: the inputs cloaking payloads
/// branch on, and the effect sinks they write to.
#[derive(Debug, Clone, Default)]
pub struct PageEnv {
    /// `navigator.userAgent`.
    pub user_agent: String,
    /// `document.referrer` ("" when absent, as in browsers).
    pub referrer: String,
    /// `document.title`.
    pub title: String,
    /// `window.location.href` of the page itself.
    pub location_href: String,
    /// Ids present in the static DOM (for `getElementById` hits).
    pub dom_ids: Vec<String>,
    /// Accumulated effects.
    pub effects: RenderEffects,
}

impl PageEnv {
    /// Environment for a browser visit.
    pub fn browser(url: &str, referrer: Option<&str>) -> Self {
        PageEnv {
            user_agent: crate::http::UserAgent::Browser.header_value().to_owned(),
            referrer: referrer.unwrap_or("").to_owned(),
            location_href: url.to_owned(),
            ..PageEnv::default()
        }
    }
}

/// Runtime values.
#[derive(Debug, Clone)]
pub enum Value {
    /// `undefined`.
    Undefined,
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (f64, like JS).
    Num(f64),
    /// String.
    Str(String),
    /// Array (shared, mutable — JS reference semantics).
    Array(Rc<RefCell<Vec<Value>>>),
    /// Handle to a dynamically created element (index into effects).
    Element(usize),
    /// Handle to a native singleton: "document", "window", "location",
    /// "navigator", "Math", "String", "body".
    Native(&'static str),
    /// A user-defined function.
    Function(Rc<FuncDef>),
}

/// A user-defined function definition.
#[derive(Debug)]
pub struct FuncDef {
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl Value {
    /// JS-style truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Undefined | Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Array(_) | Value::Element(_) | Value::Native(_) | Value::Function(_) => true,
        }
    }

    /// JS-style string coercion.
    pub fn to_js_string(&self) -> String {
        match self {
            Value::Undefined => "undefined".into(),
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Array(items) => items
                .borrow()
                .iter()
                .map(Value::to_js_string)
                .collect::<Vec<_>>()
                .join(","),
            Value::Element(_) => "[object HTMLElement]".into(),
            Value::Native(n) => format!("[object {n}]"),
            Value::Function(_) => "function".into(),
        }
    }

    /// JS-style numeric coercion (NaN on failure).
    pub fn to_num(&self) -> f64 {
        match self {
            Value::Num(n) => *n,
            Value::Bool(true) => 1.0,
            Value::Bool(false) | Value::Null => 0.0,
            Value::Str(s) => s.trim().parse().unwrap_or(f64::NAN),
            _ => f64::NAN,
        }
    }
}

enum Flow {
    Normal,
    Return(Value),
}

/// The interpreter. Borrows a [`PageEnv`] and mutates its effect sinks.
pub struct Interpreter<'e> {
    env: &'e mut PageEnv,
    scopes: Vec<HashMap<String, Value>>,
    steps: u64,
    max_steps: u64,
}

impl<'e> Interpreter<'e> {
    /// Creates an interpreter with the default 200k step budget.
    pub fn new(env: &'e mut PageEnv) -> Self {
        Interpreter {
            env,
            scopes: vec![HashMap::new()],
            steps: 0,
            max_steps: 200_000,
        }
    }

    /// Runs a parsed program to completion.
    pub fn run(&mut self, prog: &[Stmt]) -> Result<(), JsError> {
        match self.exec_block(prog)? {
            Flow::Normal | Flow::Return(_) => Ok(()),
        }
    }

    fn tick(&mut self) -> Result<(), JsError> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(JsError::Budget);
        }
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, JsError> {
        for s in stmts {
            if let Flow::Return(v) = self.exec(s)? {
                return Ok(Flow::Return(v));
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<Flow, JsError> {
        self.tick()?;
        match stmt {
            Stmt::Empty => Ok(Flow::Normal),
            Stmt::Var(name, init) => {
                let v = match init {
                    Some(e) => self.eval(e)?,
                    None => Value::Undefined,
                };
                self.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::If(cond, then, els) => {
                if self.eval(cond)?.truthy() {
                    self.exec_block(then)
                } else {
                    self.exec_block(els)
                }
            }
            Stmt::While(cond, body) => {
                while self.eval(cond)?.truthy() {
                    self.tick()?;
                    if let Flow::Return(v) = self.exec_block(body)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For(init, cond, step, body) => {
                if let Some(init) = init {
                    self.exec(init)?;
                }
                loop {
                    if let Some(c) = cond {
                        if !self.eval(c)?.truthy() {
                            break;
                        }
                    }
                    self.tick()?;
                    if let Flow::Return(v) = self.exec_block(body)? {
                        return Ok(Flow::Return(v));
                    }
                    if let Some(s) = step {
                        self.eval(s)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Function(name, params, body) => {
                let f = Value::Function(Rc::new(FuncDef {
                    params: params.clone(),
                    body: body.clone(),
                }));
                self.scopes
                    .first_mut()
                    .expect("global scope")
                    .insert(name.clone(), f);
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::Undefined,
                };
                Ok(Flow::Return(v))
            }
        }
    }

    fn lookup(&self, name: &str) -> Option<Value> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn assign_var(&mut self, name: &str, v: Value) {
        for scope in self.scopes.iter_mut().rev() {
            if scope.contains_key(name) {
                scope.insert(name.to_owned(), v);
                return;
            }
        }
        // Implicit global, as in sloppy-mode JS.
        self.scopes
            .first_mut()
            .expect("global scope")
            .insert(name.to_owned(), v);
    }

    fn rt<T>(&self, msg: impl Into<String>) -> Result<T, JsError> {
        Err(JsError::Runtime(msg.into()))
    }

    fn eval(&mut self, expr: &Expr) -> Result<Value, JsError> {
        self.tick()?;
        match expr {
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Ident(name) => match name.as_str() {
                "undefined" => Ok(Value::Undefined),
                "document" | "window" | "navigator" | "Math" | "String" | "screen" => {
                    Ok(Value::Native(match name.as_str() {
                        "document" => "document",
                        "window" => "window",
                        "navigator" => "navigator",
                        "Math" => "Math",
                        "String" => "String",
                        _ => "screen",
                    }))
                }
                _ => match self.lookup(name) {
                    Some(v) => Ok(v),
                    None => Ok(Value::Undefined),
                },
            },
            Expr::Array(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item)?);
                }
                Ok(Value::Array(Rc::new(RefCell::new(out))))
            }
            Expr::Member(obj, field) => {
                let base = self.eval(obj)?;
                self.get_member(&base, field)
            }
            Expr::Index(obj, idx) => {
                let base = self.eval(obj)?;
                let i = self.eval(idx)?;
                match (&base, &i) {
                    (Value::Array(items), Value::Num(n)) => {
                        let items = items.borrow();
                        Ok(items.get(*n as usize).cloned().unwrap_or(Value::Undefined))
                    }
                    (Value::Str(s), Value::Num(n)) => Ok(s
                        .chars()
                        .nth(*n as usize)
                        .map(|c| Value::Str(c.to_string()))
                        .unwrap_or(Value::Undefined)),
                    (base, Value::Str(field)) => self.get_member(base, field),
                    _ => Ok(Value::Undefined),
                }
            }
            Expr::Un(op, e) => {
                let v = self.eval(e)?;
                Ok(match op {
                    UnOp::Not => Value::Bool(!v.truthy()),
                    UnOp::Neg => Value::Num(-v.to_num()),
                })
            }
            Expr::Bin(op, a, b) => self.eval_bin(*op, a, b),
            Expr::Ternary(c, a, b) => {
                if self.eval(c)?.truthy() {
                    self.eval(a)
                } else {
                    self.eval(b)
                }
            }
            Expr::Assign(target, value) => {
                let v = self.eval(value)?;
                match &**target {
                    Expr::Ident(name) => {
                        self.assign_var(name, v.clone());
                        Ok(v)
                    }
                    Expr::Member(obj, field) => {
                        let base = self.eval(obj)?;
                        self.set_member(&base, field, v.clone())?;
                        Ok(v)
                    }
                    Expr::Index(obj, idx) => {
                        let base = self.eval(obj)?;
                        let i = self.eval(idx)?;
                        match (&base, &i) {
                            (Value::Array(items), Value::Num(n)) => {
                                let mut items = items.borrow_mut();
                                let ix = *n as usize;
                                if ix >= items.len() {
                                    items.resize(ix + 1, Value::Undefined);
                                }
                                items[ix] = v.clone();
                                Ok(v)
                            }
                            (base, Value::Str(field)) => {
                                self.set_member(base, field, v.clone())?;
                                Ok(v)
                            }
                            _ => self.rt("invalid index assignment"),
                        }
                    }
                    _ => self.rt("invalid assignment target"),
                }
            }
            Expr::Call(callee, args) => self.eval_call(callee, args),
        }
    }

    fn eval_bin(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<Value, JsError> {
        // Short-circuit forms first.
        match op {
            BinOp::And => {
                let lhs = self.eval(a)?;
                return if lhs.truthy() { self.eval(b) } else { Ok(lhs) };
            }
            BinOp::Or => {
                let lhs = self.eval(a)?;
                return if lhs.truthy() { Ok(lhs) } else { self.eval(b) };
            }
            _ => {}
        }
        let lhs = self.eval(a)?;
        let rhs = self.eval(b)?;
        Ok(match op {
            BinOp::Add => match (&lhs, &rhs) {
                (Value::Str(_), _) | (_, Value::Str(_)) => {
                    Value::Str(format!("{}{}", lhs.to_js_string(), rhs.to_js_string()))
                }
                _ => Value::Num(lhs.to_num() + rhs.to_num()),
            },
            BinOp::Sub => Value::Num(lhs.to_num() - rhs.to_num()),
            BinOp::Mul => Value::Num(lhs.to_num() * rhs.to_num()),
            BinOp::Div => Value::Num(lhs.to_num() / rhs.to_num()),
            BinOp::Rem => Value::Num(lhs.to_num() % rhs.to_num()),
            BinOp::Eq => Value::Bool(loose_eq(&lhs, &rhs)),
            BinOp::Ne => Value::Bool(!loose_eq(&lhs, &rhs)),
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => {
                let cmp = match (&lhs, &rhs) {
                    (Value::Str(x), Value::Str(y)) => x.partial_cmp(y),
                    _ => lhs.to_num().partial_cmp(&rhs.to_num()),
                };
                match cmp {
                    None => Value::Bool(false),
                    Some(ord) => Value::Bool(match op {
                        BinOp::Lt => ord.is_lt(),
                        BinOp::Gt => ord.is_gt(),
                        BinOp::Le => ord.is_le(),
                        _ => ord.is_ge(),
                    }),
                }
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        })
    }

    // ---- member access on natives, elements, strings, arrays ----

    fn get_member(&mut self, base: &Value, field: &str) -> Result<Value, JsError> {
        match base {
            Value::Native("document") => match field {
                "referrer" => Ok(Value::Str(self.env.referrer.clone())),
                "title" => Ok(Value::Str(self.env.title.clone())),
                "location" => Ok(Value::Native("location")),
                "body" => Ok(Value::Native("body")),
                _ => Ok(Value::Undefined),
            },
            Value::Native("window") => match field {
                "location" => Ok(Value::Native("location")),
                "document" => Ok(Value::Native("document")),
                "navigator" => Ok(Value::Native("navigator")),
                "innerWidth" => Ok(Value::Num(1280.0)),
                "innerHeight" => Ok(Value::Num(800.0)),
                _ => Ok(Value::Undefined),
            },
            Value::Native("navigator") => match field {
                "userAgent" => Ok(Value::Str(self.env.user_agent.clone())),
                _ => Ok(Value::Undefined),
            },
            Value::Native("screen") => match field {
                "width" => Ok(Value::Num(1280.0)),
                "height" => Ok(Value::Num(800.0)),
                _ => Ok(Value::Undefined),
            },
            Value::Native("location") => match field {
                "href" => Ok(Value::Str(self.env.location_href.clone())),
                _ => Ok(Value::Undefined),
            },
            Value::Str(s) => match field {
                "length" => Ok(Value::Num(s.chars().count() as f64)),
                _ => Ok(Value::Undefined),
            },
            Value::Array(items) => match field {
                "length" => Ok(Value::Num(items.borrow().len() as f64)),
                _ => Ok(Value::Undefined),
            },
            Value::Element(h) => {
                let el = &self.env.effects.elements[*h];
                match field {
                    "tagName" => Ok(Value::Str(el.tag.to_ascii_uppercase())),
                    "innerHTML" => Ok(Value::Str(el.inner_html.clone())),
                    other => Ok(el
                        .attr(other)
                        .map(|v| Value::Str(v.to_owned()))
                        .unwrap_or(Value::Undefined)),
                }
            }
            _ => Ok(Value::Undefined),
        }
    }

    fn set_member(&mut self, base: &Value, field: &str, v: Value) -> Result<(), JsError> {
        match base {
            // window.location = url; document.location = url
            Value::Native("window") | Value::Native("document") if field == "location" => {
                self.env.effects.redirect = Some(v.to_js_string());
                Ok(())
            }
            // window.location.href = url
            Value::Native("location") if field == "href" => {
                self.env.effects.redirect = Some(v.to_js_string());
                Ok(())
            }
            Value::Native("document") if field == "title" => {
                self.env.title = v.to_js_string();
                Ok(())
            }
            Value::Element(h) => {
                let el = &mut self.env.effects.elements[*h];
                if field == "innerHTML" {
                    el.inner_html = v.to_js_string();
                } else {
                    el.set_attr(field, v.to_js_string());
                }
                Ok(())
            }
            _ => Ok(()), // silently ignore, like sloppy JS on frozen hosts
        }
    }

    // ---- calls ----

    fn eval_call(&mut self, callee: &Expr, args: &[Expr]) -> Result<Value, JsError> {
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            argv.push(self.eval(a)?);
        }
        match callee {
            Expr::Ident(name) => match name.as_str() {
                "parseInt" => {
                    let s = argv.first().map(Value::to_js_string).unwrap_or_default();
                    let digits: String = s
                        .trim()
                        .chars()
                        .take_while(|c| c.is_ascii_digit() || *c == '-')
                        .collect();
                    Ok(digits
                        .parse::<f64>()
                        .map(Value::Num)
                        .unwrap_or(Value::Num(f64::NAN)))
                }
                "unescape" | "decodeURIComponent" => {
                    let s = argv.first().map(Value::to_js_string).unwrap_or_default();
                    Ok(Value::Str(percent_decode(&s)))
                }
                "eval" => {
                    // Real payloads love eval(obfuscated-string). Re-enter.
                    let src = argv.first().map(Value::to_js_string).unwrap_or_default();
                    let prog = super::parser::parse_program(&src)
                        .map_err(|e| JsError::Runtime(format!("eval: {e}")))?;
                    self.exec_block(&prog)?;
                    Ok(Value::Undefined)
                }
                "alert" | "setTimeout" => Ok(Value::Undefined),
                _ => match self.lookup(name) {
                    Some(Value::Function(f)) => self.call_function(&f, argv),
                    Some(_) | None => self.rt(format!("{name} is not a function")),
                },
            },
            Expr::Member(obj, method) => {
                let base = self.eval(obj)?;
                self.call_method(&base, method, argv)
            }
            _ => self.rt("uncallable expression"),
        }
    }

    fn call_function(&mut self, f: &Rc<FuncDef>, argv: Vec<Value>) -> Result<Value, JsError> {
        let mut scope = HashMap::new();
        for (i, p) in f.params.iter().enumerate() {
            scope.insert(p.clone(), argv.get(i).cloned().unwrap_or(Value::Undefined));
        }
        self.scopes.push(scope);
        let flow = self.exec_block(&f.body);
        self.scopes.pop();
        match flow? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(Value::Undefined),
        }
    }

    fn call_method(
        &mut self,
        base: &Value,
        method: &str,
        argv: Vec<Value>,
    ) -> Result<Value, JsError> {
        let arg_str = |i: usize| argv.get(i).map(Value::to_js_string).unwrap_or_default();
        match base {
            Value::Native("document") => match method {
                "write" | "writeln" => {
                    for a in &argv {
                        self.env.effects.written_html.push_str(&a.to_js_string());
                    }
                    Ok(Value::Undefined)
                }
                "createElement" => {
                    let tag = arg_str(0).to_ascii_lowercase();
                    self.env.effects.elements.push(DynElement {
                        tag,
                        ..DynElement::default()
                    });
                    Ok(Value::Element(self.env.effects.elements.len() - 1))
                }
                "getElementById" => {
                    let id = arg_str(0);
                    if self.env.dom_ids.contains(&id) {
                        // Materialize a handle standing in for the static
                        // element; appends to it attach to the document.
                        self.env.effects.elements.push(DynElement {
                            tag: "div".into(),
                            attrs: vec![("id".into(), id)],
                            attached: true,
                            inner_html: String::new(),
                        });
                        Ok(Value::Element(self.env.effects.elements.len() - 1))
                    } else {
                        Ok(Value::Null)
                    }
                }
                _ => self.rt(format!("document.{method} is not a function")),
            },
            Value::Native("location") => match method {
                "replace" | "assign" => {
                    self.env.effects.redirect = Some(arg_str(0));
                    Ok(Value::Undefined)
                }
                _ => self.rt(format!("location.{method} is not a function")),
            },
            Value::Native("body") => match method {
                "appendChild" | "insertBefore" => {
                    if let Some(Value::Element(h)) = argv.first() {
                        self.env.effects.elements[*h].attached = true;
                    }
                    Ok(argv.into_iter().next().unwrap_or(Value::Undefined))
                }
                _ => self.rt(format!("body.{method} is not a function")),
            },
            Value::Native("String") => match method {
                "fromCharCode" => {
                    let s: String = argv
                        .iter()
                        .map(|v| char::from_u32(v.to_num() as u32).unwrap_or('\u{fffd}'))
                        .collect();
                    Ok(Value::Str(s))
                }
                _ => self.rt(format!("String.{method} is not a function")),
            },
            Value::Native("Math") => {
                let x = argv.first().map(Value::to_num).unwrap_or(f64::NAN);
                match method {
                    "floor" => Ok(Value::Num(x.floor())),
                    "ceil" => Ok(Value::Num(x.ceil())),
                    "abs" => Ok(Value::Num(x.abs())),
                    "round" => Ok(Value::Num(x.round())),
                    "max" => Ok(Value::Num(
                        argv.iter()
                            .map(Value::to_num)
                            .fold(f64::NEG_INFINITY, f64::max),
                    )),
                    "min" => Ok(Value::Num(
                        argv.iter().map(Value::to_num).fold(f64::INFINITY, f64::min),
                    )),
                    _ => self.rt(format!("Math.{method} is not a function")),
                }
            }
            Value::Element(h) => {
                let h = *h;
                match method {
                    "setAttribute" => {
                        let (name, value) = (arg_str(0), arg_str(1));
                        self.env.effects.elements[h].set_attr(&name, value);
                        Ok(Value::Undefined)
                    }
                    "getAttribute" => Ok(self.env.effects.elements[h]
                        .attr(&arg_str(0))
                        .map(|v| Value::Str(v.to_owned()))
                        .unwrap_or(Value::Null)),
                    "appendChild" => {
                        // Appending to an attached element attaches the child.
                        let parent_attached = self.env.effects.elements[h].attached;
                        if let Some(Value::Element(c)) = argv.first() {
                            if parent_attached {
                                self.env.effects.elements[*c].attached = true;
                            }
                        }
                        Ok(argv.into_iter().next().unwrap_or(Value::Undefined))
                    }
                    _ => self.rt(format!("element.{method} is not a function")),
                }
            }
            Value::Str(s) => self.string_method(s, method, argv),
            Value::Array(items) => match method {
                "join" => {
                    let sep = if argv.is_empty() {
                        ",".to_owned()
                    } else {
                        arg_str(0)
                    };
                    let joined = items
                        .borrow()
                        .iter()
                        .map(Value::to_js_string)
                        .collect::<Vec<_>>()
                        .join(&sep);
                    Ok(Value::Str(joined))
                }
                "push" => {
                    let mut b = items.borrow_mut();
                    for a in argv {
                        b.push(a);
                    }
                    Ok(Value::Num(b.len() as f64))
                }
                "pop" => Ok(items.borrow_mut().pop().unwrap_or(Value::Undefined)),
                "reverse" => {
                    items.borrow_mut().reverse();
                    Ok(Value::Array(items.clone()))
                }
                "concat" => {
                    let mut out = items.borrow().clone();
                    for a in argv {
                        match a {
                            Value::Array(more) => out.extend(more.borrow().iter().cloned()),
                            v => out.push(v),
                        }
                    }
                    Ok(Value::Array(Rc::new(RefCell::new(out))))
                }
                _ => self.rt(format!("array.{method} is not a function")),
            },
            _ => self.rt(format!(".{method} called on non-object")),
        }
    }

    fn string_method(&mut self, s: &str, method: &str, argv: Vec<Value>) -> Result<Value, JsError> {
        let arg_str = |i: usize| argv.get(i).map(Value::to_js_string).unwrap_or_default();
        let arg_num = |i: usize| argv.get(i).map(Value::to_num).unwrap_or(f64::NAN);
        match method {
            "split" => {
                let sep = arg_str(0);
                let parts: Vec<Value> = if argv.is_empty() {
                    vec![Value::Str(s.to_owned())]
                } else if sep.is_empty() {
                    s.chars().map(|c| Value::Str(c.to_string())).collect()
                } else {
                    s.split(sep.as_str())
                        .map(|p| Value::Str(p.to_owned()))
                        .collect()
                };
                Ok(Value::Array(Rc::new(RefCell::new(parts))))
            }
            "replace" => Ok(Value::Str(s.replacen(
                arg_str(0).as_str(),
                arg_str(1).as_str(),
                1,
            ))),
            "charAt" => Ok(Value::Str(
                s.chars()
                    .nth(arg_num(0) as usize)
                    .map(|c| c.to_string())
                    .unwrap_or_default(),
            )),
            "charCodeAt" => Ok(s
                .chars()
                .nth(arg_num(0) as usize)
                .map(|c| Value::Num(c as u32 as f64))
                .unwrap_or(Value::Num(f64::NAN))),
            "indexOf" => {
                let needle = arg_str(0);
                Ok(Value::Num(match s.find(needle.as_str()) {
                    Some(byte) => s[..byte].chars().count() as f64,
                    None => -1.0,
                }))
            }
            "substring" | "slice" => {
                let chars: Vec<char> = s.chars().collect();
                let a = (arg_num(0).max(0.0) as usize).min(chars.len());
                let b = if argv.len() > 1 {
                    (arg_num(1).max(0.0) as usize).min(chars.len())
                } else {
                    chars.len()
                };
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                Ok(Value::Str(chars[lo..hi].iter().collect()))
            }
            "toLowerCase" => Ok(Value::Str(s.to_lowercase())),
            "toUpperCase" => Ok(Value::Str(s.to_uppercase())),
            "concat" => {
                let mut out = s.to_owned();
                for a in &argv {
                    out.push_str(&a.to_js_string());
                }
                Ok(Value::Str(out))
            }
            _ => self.rt(format!("string.{method} is not a function")),
        }
    }
}

/// Loose equality: same-type compares directly; otherwise numeric coercion,
/// with null/undefined equal to each other only.
fn loose_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Undefined | Value::Null, Value::Undefined | Value::Null) => true,
        (Value::Undefined | Value::Null, _) | (_, Value::Undefined | Value::Null) => false,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Num(x), Value::Num(y)) => x == y,
        (Value::Element(x), Value::Element(y)) => x == y,
        (Value::Native(x), Value::Native(y)) => x == y,
        _ => a.to_num() == b.to_num(),
    }
}

/// Decodes `%XX` escapes (the subset `unescape` needs).
fn percent_decode(s: &str) -> String {
    ss_types::url::decode_component(&s.replace('+', "%2B"))
}

#[cfg(test)]
mod tests {
    use super::super::run_script;
    use super::*;

    fn run(src: &str) -> PageEnv {
        let mut env =
            PageEnv::browser("http://door.com/page", Some("http://google.com/search?q=x"));
        run_script(src, &mut env).unwrap();
        env
    }

    #[test]
    fn arithmetic_and_vars() {
        let env = run("var a = 2; var b = a * 3 + 1; document.write('' + b);");
        assert_eq!(env.effects.written_html, "7");
    }

    #[test]
    fn string_building_and_write() {
        let env = run("var p = ['<if', 'rame>']; document.write(p.join(''));");
        assert_eq!(env.effects.written_html, "<iframe>");
    }

    #[test]
    fn js_redirect_via_location() {
        let env = run("window.location = 'http://store.com/';");
        assert_eq!(env.effects.redirect.as_deref(), Some("http://store.com/"));
        let env = run("window.location.href = 'http://a.com/';");
        assert_eq!(env.effects.redirect.as_deref(), Some("http://a.com/"));
        let env = run("window.location.replace('http://b.com/');");
        assert_eq!(env.effects.redirect.as_deref(), Some("http://b.com/"));
    }

    #[test]
    fn create_and_attach_iframe() {
        let env = run("var f = document.createElement('iframe');\
             f.setAttribute('width', '100%');\
             f.height = '100%';\
             f.src = 'http://store.com/';\
             document.body.appendChild(f);");
        let attached: Vec<_> = env.effects.attached_elements().collect();
        assert_eq!(attached.len(), 1);
        assert_eq!(attached[0].tag, "iframe");
        assert_eq!(attached[0].attr("width"), Some("100%"));
        assert_eq!(attached[0].attr("height"), Some("100%"));
        assert_eq!(attached[0].attr("src"), Some("http://store.com/"));
    }

    #[test]
    fn detached_elements_are_not_attached() {
        let env = run("var f = document.createElement('iframe'); f.src = 'http://x.com/';");
        assert_eq!(env.effects.attached_elements().count(), 0);
        assert_eq!(env.effects.elements.len(), 1);
    }

    #[test]
    fn referrer_conditional_cloaking() {
        let src = "if (document.referrer.indexOf('google') >= 0) { window.location = 'http://store.com/'; }";
        let env = run(src);
        assert!(env.effects.redirect.is_some());

        let mut env2 = PageEnv::browser("http://door.com/page", None);
        run_script(src, &mut env2).unwrap();
        assert!(env2.effects.redirect.is_none());
    }

    #[test]
    fn user_agent_branching() {
        let src = "if (navigator.userAgent.indexOf('Googlebot') < 0) document.write('user');";
        let env = run(src);
        assert_eq!(env.effects.written_html, "user");
        let mut bot = PageEnv {
            user_agent: crate::http::UserAgent::GoogleBot.header_value().into(),
            ..PageEnv::default()
        };
        run_script(src, &mut bot).unwrap();
        assert_eq!(bot.effects.written_html, "");
    }

    #[test]
    fn from_char_code_obfuscation() {
        let env = run("var cs = [104, 116, 116, 112];\
             var out = String.fromCharCode(cs[0], cs[1], cs[2], cs[3]);\
             document.write(out);");
        assert_eq!(env.effects.written_html, "http");
    }

    #[test]
    fn eval_reentry() {
        let env = run(r#"eval("document.write('ok');");"#);
        assert_eq!(env.effects.written_html, "ok");
    }

    #[test]
    fn loops_and_functions() {
        let env = run(
            "function rep(s, n) { var out = ''; for (var i = 0; i < n; i++) { out = out + s; } return out; }\
             document.write(rep('ab', 3));",
        );
        assert_eq!(env.effects.written_html, "ababab");
    }

    #[test]
    fn while_loop_and_compound_assign() {
        let env = run("var n = 0; while (n < 5) { n += 2; } document.write('' + n);");
        assert_eq!(env.effects.written_html, "6");
    }

    #[test]
    fn runaway_loop_hits_budget() {
        let mut env = PageEnv::default();
        let err = run_script("while (true) { var x = 1; }", &mut env).unwrap_err();
        assert_eq!(err, JsError::Budget);
    }

    #[test]
    fn string_methods() {
        let env = run("var s = 'HeLLo world';\
             document.write(s.toLowerCase().replace('world', 'there').substring(0, 8));");
        assert_eq!(env.effects.written_html, "hello th");
    }

    #[test]
    fn unescape_decodes() {
        let env = run("document.write(unescape('%68%74%74%70'));");
        assert_eq!(env.effects.written_html, "http");
    }

    #[test]
    fn get_element_by_id_honours_static_dom() {
        let mut env = PageEnv {
            dom_ids: vec!["content".into()],
            ..PageEnv::default()
        };
        run_script(
            "var c = document.getElementById('content');\
             if (c != null) { var f = document.createElement('iframe'); c.appendChild(f); }",
            &mut env,
        )
        .unwrap();
        // iframe attached through the static container.
        assert!(env
            .effects
            .elements
            .iter()
            .any(|e| e.tag == "iframe" && e.attached));

        let mut env2 = PageEnv::default();
        run_script(
            "var c = document.getElementById('content'); document.write(c == null ? 'no' : 'yes');",
            &mut env2,
        )
        .unwrap();
        assert_eq!(env2.effects.written_html, "no");
    }

    #[test]
    fn ternary_and_equality() {
        let env = run("document.write(1 == '1' ? 'loose' : 'strict');");
        assert_eq!(env.effects.written_html, "loose");
    }

    #[test]
    fn runtime_errors_are_reported() {
        let mut env = PageEnv::default();
        assert!(matches!(
            run_script("nosuchfn();", &mut env),
            Err(JsError::Runtime(_))
        ));
        assert!(matches!(
            run_script("var x = ;", &mut env),
            Err(JsError::Syntax(_))
        ));
    }
}

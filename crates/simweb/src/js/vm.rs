//! The bytecode VM: a stack machine over [`Chunk`]s with slot-indexed
//! frames.
//!
//! Name resolution honors the treewalker's dynamic scoping: a frame's
//! slot vector covers every name the function *can* declare (`None` until
//! the declaring statement actually runs), an overflow map catches names
//! `eval` declares dynamically, and misses walk outer frames exactly like
//! the interpreter's scope-chain walk. The invariant is that a name lives
//! in a frame's slot *or* its overflow map, never both — every insertion
//! path checks the slot table first.
//!
//! Calls recurse at the Rust level (one `exec` activation per JS call),
//! bounded by [`MAX_CALL_DEPTH`] identically to the treewalker.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use super::bytecode::{Chunk, ConstVal, Op};
use super::cache::{CompileMode, JsCache};
use super::runtime::{
    self, rt, Builtin, FuncDef, JsError, PageEnv, Value, MAX_CALL_DEPTH, MAX_STEPS,
};

/// Runs a compiled program against a page environment. `cache` serves
/// nested `eval` compiles (cloaking payloads decode-and-eval identical
/// strings on every render, so those chunks cache like top-level ones).
pub(crate) fn run_chunk(
    env: &mut PageEnv,
    chunk: &Arc<Chunk>,
    cache: &JsCache,
) -> Result<(), JsError> {
    let mut vm = Vm {
        env,
        cache,
        frames: vec![Frame::bare(chunk.clone(), 0)],
        steps: 0,
        depth: 0,
    };
    let result = vm.exec(chunk.clone(), 0);
    // Step-budget units consumed are deterministic per script run (even
    // on the error path), so they feed the cost profiler's work ledger.
    ss_obs::charge(ss_obs::WorkKind::JsVmSteps, vm.steps);
    result?;
    Ok(())
}

/// One call activation: the declared-name slots plus the overflow map for
/// `eval`-declared names.
struct Frame {
    chunk: Arc<Chunk>,
    proto: usize,
    slots: Vec<Option<Value>>,
    overflow: HashMap<String, Value>,
}

impl Frame {
    fn bare(chunk: Arc<Chunk>, proto: usize) -> Frame {
        let n = chunk.protos[proto].locals.len();
        Frame {
            chunk,
            proto,
            slots: vec![None; n],
            overflow: HashMap::new(),
        }
    }

    fn locals(&self) -> &[String] {
        &self.chunk.protos[self.proto].locals
    }

    /// The binding for `name` in this frame, if declared.
    fn get(&self, name: &str) -> Option<Value> {
        match self.locals().iter().position(|l| l == name) {
            Some(ix) => self.slots[ix].clone(),
            None => self.overflow.get(name).cloned(),
        }
    }

    /// Whether `name` is currently declared in this frame.
    fn contains(&self, name: &str) -> bool {
        match self.locals().iter().position(|l| l == name) {
            Some(ix) => self.slots[ix].is_some(),
            None => self.overflow.contains_key(name),
        }
    }

    /// Declares or rebinds `name` in this frame (slot if the table knows
    /// it, overflow otherwise — preserving the slot-xor-overflow
    /// invariant).
    fn bind(&mut self, name: &str, v: Value) {
        match self.locals().iter().position(|l| l == name) {
            Some(ix) => self.slots[ix] = Some(v),
            None => {
                self.overflow.insert(name.to_owned(), v);
            }
        }
    }
}

struct Vm<'e, 'c> {
    env: &'e mut PageEnv,
    cache: &'c JsCache,
    frames: Vec<Frame>,
    steps: u64,
    depth: usize,
}

impl Vm<'_, '_> {
    /// Scope-chain read, innermost frame outward.
    fn lookup(&self, name: &str) -> Option<Value> {
        self.frames.iter().rev().find_map(|f| f.get(name))
    }

    /// Scope-chain read skipping the current frame (used by `LoadSlot`
    /// misses: the slot being `None` proves the name is not bound here).
    fn lookup_outer(&self, name: &str) -> Option<Value> {
        let n = self.frames.len();
        self.frames[..n - 1].iter().rev().find_map(|f| f.get(name))
    }

    /// Treewalker assignment: innermost existing binding, else create a
    /// global — optionally skipping the current frame when the caller
    /// already proved the name unbound there.
    fn assign(&mut self, name: &str, v: Value, skip_current: bool) {
        let n = self.frames.len() - usize::from(skip_current);
        for f in self.frames[..n].iter_mut().rev() {
            if f.contains(name) {
                f.bind(name, v);
                return;
            }
        }
        self.frames[0].bind(name, v);
    }

    fn exec(&mut self, chunk: Arc<Chunk>, proto: usize) -> Result<Value, JsError> {
        let code: &[Op] = &chunk.protos[proto].code;
        let mut stack: Vec<Value> = Vec::new();
        let mut ip = 0usize;
        while ip < code.len() {
            let op = &code[ip];
            ip += 1;
            match op {
                Op::Step(n) => {
                    self.steps += u64::from(*n);
                    if self.steps > MAX_STEPS {
                        return Err(JsError::Budget);
                    }
                }
                Op::Const(i) => stack.push(const_value(&chunk.consts[*i as usize])),
                Op::Native(s) => {
                    let n = runtime::ident_native(&chunk.strings[*s as usize])
                        .expect("compiler only emits known natives");
                    stack.push(Value::Native(n));
                }
                Op::LoadSlot(ix) => {
                    let ix = *ix as usize;
                    let f = self.frames.last().expect("active frame");
                    let v = match f.slots[ix].clone() {
                        Some(v) => v,
                        None => {
                            // Declared name not yet bound here: dynamic
                            // walk of outer frames, like the treewalker.
                            let name = f.locals()[ix].to_owned();
                            self.lookup_outer(&name).unwrap_or(Value::Undefined)
                        }
                    };
                    stack.push(v);
                }
                Op::LoadName(s) => {
                    let name = &chunk.strings[*s as usize];
                    stack.push(self.lookup(name).unwrap_or(Value::Undefined));
                }
                Op::StoreSlot(ix) => {
                    let ix = *ix as usize;
                    let v = stack.last().expect("store operand").clone();
                    let f = self.frames.last_mut().expect("active frame");
                    if f.slots[ix].is_some() {
                        f.slots[ix] = Some(v);
                    } else {
                        let name = f.locals()[ix].to_owned();
                        self.assign(&name, v, true);
                    }
                }
                Op::StoreName(s) => {
                    let v = stack.last().expect("store operand").clone();
                    let name = chunk.strings[*s as usize].clone();
                    self.assign(&name, v, false);
                }
                Op::DeclareSlot(ix) => {
                    let v = stack.pop().expect("declare operand");
                    self.frames.last_mut().expect("active frame").slots[*ix as usize] = Some(v);
                }
                Op::DeclareName(s) => {
                    let v = stack.pop().expect("declare operand");
                    let name = chunk.strings[*s as usize].clone();
                    self.frames.last_mut().expect("active frame").bind(&name, v);
                }
                Op::DeclareGlobal(s) => {
                    let v = stack.pop().expect("declare operand");
                    let name = chunk.strings[*s as usize].clone();
                    self.frames[0].bind(&name, v);
                }
                Op::MakeFunc(p) => {
                    let proto_ref = &chunk.protos[*p as usize];
                    let params = proto_ref
                        .param_slots
                        .iter()
                        .map(|&s| proto_ref.locals[s as usize].clone())
                        .collect();
                    stack.push(Value::Function(Rc::new(FuncDef::vm(
                        params,
                        chunk.clone(),
                        *p as usize,
                    ))));
                }
                Op::MakeArray(n) => {
                    let at = stack.len() - *n as usize;
                    let items = stack.split_off(at);
                    stack.push(Value::Array(Rc::new(RefCell::new(items))));
                }
                Op::GetMember(s) => {
                    let obj = stack.pop().expect("member base");
                    let v = runtime::get_member(self.env, &obj, &chunk.strings[*s as usize])?;
                    stack.push(v);
                }
                Op::GetIndex => {
                    let ix = stack.pop().expect("index");
                    let base = stack.pop().expect("index base");
                    stack.push(runtime::index_get(self.env, &base, &ix)?);
                }
                Op::SetMember(s) => {
                    let obj = stack.pop().expect("member base");
                    let v = stack.last().expect("assigned value").clone();
                    runtime::set_member(self.env, &obj, &chunk.strings[*s as usize], v)?;
                }
                Op::SetIndex => {
                    let ix = stack.pop().expect("index");
                    let base = stack.pop().expect("index base");
                    let v = stack.last().expect("assigned value").clone();
                    runtime::index_assign(self.env, &base, &ix, v)?;
                }
                Op::Un(op) => {
                    let v = stack.pop().expect("unary operand");
                    stack.push(runtime::apply_un(*op, &v));
                }
                Op::Bin(op) => {
                    let rhs = stack.pop().expect("rhs");
                    let lhs = stack.pop().expect("lhs");
                    stack.push(runtime::apply_bin(*op, &lhs, &rhs));
                }
                Op::JumpIfFalse(t) => {
                    if !stack.pop().expect("condition").truthy() {
                        ip = *t as usize;
                    }
                }
                Op::JumpIfFalsePeek(t) => {
                    if !stack.last().expect("condition").truthy() {
                        ip = *t as usize;
                    }
                }
                Op::JumpIfTruePeek(t) => {
                    if stack.last().expect("condition").truthy() {
                        ip = *t as usize;
                    }
                }
                Op::Jump(t) => ip = *t as usize,
                Op::Pop => {
                    stack.pop();
                }
                Op::CallBuiltin(b, argc) => {
                    let at = stack.len() - *argc as usize;
                    let argv = stack.split_off(at);
                    let v = match b {
                        Builtin::Eval => self.eval_builtin(argv)?,
                        simple => simple.call(&argv),
                    };
                    stack.push(v);
                }
                Op::CallNamed(s, argc) => {
                    let at = stack.len() - *argc as usize;
                    let argv = stack.split_off(at);
                    let name = &chunk.strings[*s as usize];
                    match self.lookup(name) {
                        Some(Value::Function(f)) => {
                            let v = self.call_function(&f, argv)?;
                            stack.push(v);
                        }
                        _ => return rt(format!("{name} is not a function")),
                    }
                }
                Op::CallMethod(s, argc) => {
                    let obj = stack.pop().expect("method receiver");
                    let at = stack.len() - *argc as usize;
                    let argv = stack.split_off(at);
                    let v =
                        runtime::call_method(self.env, &obj, &chunk.strings[*s as usize], argv)?;
                    stack.push(v);
                }
                Op::Return => return Ok(stack.pop().unwrap_or(Value::Undefined)),
                Op::Throw(s) => return rt(chunk.strings[*s as usize].clone()),
            }
        }
        Ok(Value::Undefined)
    }

    fn call_function(&mut self, f: &FuncDef, argv: Vec<Value>) -> Result<Value, JsError> {
        let (chunk, proto) = match &f.compiled {
            Some((c, p)) => (c.clone(), *p),
            // Only reachable if engines were mixed over one environment,
            // which the public API does not allow.
            None => return rt("function body is not compiled"),
        };
        if self.depth >= MAX_CALL_DEPTH {
            return rt("maximum call depth exceeded");
        }
        self.depth += 1;
        let mut frame = Frame::bare(chunk.clone(), proto);
        for (i, &slot) in chunk.protos[proto].param_slots.iter().enumerate() {
            frame.slots[slot as usize] = Some(argv.get(i).cloned().unwrap_or(Value::Undefined));
        }
        self.frames.push(frame);
        let r = self.exec(chunk, proto);
        self.frames.pop();
        self.depth -= 1;
        r
    }

    /// `eval(src)`: parse + compile in eval mode (cached), then run the
    /// chunk against the *current* frame — no new scope, exactly like the
    /// treewalker executing the parsed block in place. A top-level
    /// `return` inside the eval'd code is swallowed at this boundary and
    /// the call yields `undefined`.
    fn eval_builtin(&mut self, argv: Vec<Value>) -> Result<Value, JsError> {
        let src = argv.first().map(Value::to_js_string).unwrap_or_default();
        let chunk = match self.cache.chunk_for(&src, CompileMode::Eval) {
            Ok(c) => c,
            Err(msg) => return rt(format!("eval: {msg}")),
        };
        if self.depth >= MAX_CALL_DEPTH {
            return rt("maximum call depth exceeded");
        }
        self.depth += 1;
        let r = self.exec(chunk, 0);
        self.depth -= 1;
        r?;
        Ok(Value::Undefined)
    }
}

fn const_value(cv: &ConstVal) -> Value {
    match cv {
        ConstVal::Undefined => Value::Undefined,
        ConstVal::Null => Value::Null,
        ConstVal::Bool(b) => Value::Bool(*b),
        ConstVal::Num(n) => Value::Num(*n),
        ConstVal::Str(s) => Value::Str(s.clone()),
    }
}

//! AST → bytecode lowering.
//!
//! The compiler's contract is *observable equivalence with the
//! treewalker*: same effects, same results, same error strings, and the
//! same step-budget accounting (the treewalker charges one step per
//! statement, per evaluated expression node, and per loop iteration; the
//! compiler materializes exactly those charges as [`Op::Step`]
//! instructions, coalescing adjacent ticks). Constant folding therefore
//! still charges the folded expression's full original step count.
//!
//! Name resolution happens here: every `var` target and parameter of a
//! function is collected into the proto's `locals` table and reads/writes
//! compile to slot indices. Names that cannot be resolved statically
//! (assignment-created globals, anything in `eval` mode) fall back to
//! dynamic `*Name` ops that reproduce the treewalker's scope walk.

use std::collections::HashMap;

use super::ast::{BinOp, Expr, Stmt};
use super::bytecode::{Chunk, ConstVal, FnProto, Op};
use super::runtime::{self, Builtin, Value};

/// Compiles a parsed program (top level becomes proto 0, with its own
/// locals table for top-level `var`s — fast globals).
pub(crate) fn compile_program(prog: &[Stmt]) -> Chunk {
    let mut c = Compiler::default();
    c.compile_proto(&[], prog, false);
    c.chunk
}

/// Compiles a program for `eval`: the top level runs against the
/// *caller's* frame, so it gets no locals table of its own and every name
/// access is dynamic. Nested function declarations still compile with
/// slots as usual.
pub(crate) fn compile_eval(prog: &[Stmt]) -> Chunk {
    let mut c = Compiler::default();
    c.compile_proto(&[], prog, true);
    c.chunk
}

#[derive(Default)]
struct Compiler {
    chunk: Chunk,
    strings: HashMap<String, u32>,
}

/// Per-function emit state.
struct FnCtx {
    code: Vec<Op>,
    locals: Vec<String>,
    /// Budget steps charged but not yet emitted; flushed (as one
    /// `Op::Step`) before any real instruction and before any jump label,
    /// so coalescing can never move a charge across an observable effect
    /// or a control-flow edge.
    pending: u32,
}

impl FnCtx {
    fn step(&mut self, n: u32) {
        self.pending += n;
    }

    fn flush(&mut self) {
        if self.pending > 0 {
            self.code.push(Op::Step(self.pending));
            self.pending = 0;
        }
    }

    fn emit(&mut self, op: Op) {
        self.flush();
        self.code.push(op);
    }

    /// Current instruction index, usable as a jump target.
    fn here(&mut self) -> u32 {
        self.flush();
        self.code.len() as u32
    }

    /// Emits a jump with a placeholder target; returns its index.
    fn emit_jump(&mut self, op: Op) -> usize {
        self.emit(op);
        self.code.len() - 1
    }

    /// Points the jump at `at` to the current position.
    fn patch(&mut self, at: usize) {
        let target = self.here();
        match &mut self.code[at] {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfFalsePeek(t) | Op::JumpIfTruePeek(t) => {
                *t = target
            }
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn local_ix(&self, name: &str) -> Option<u16> {
        self.locals.iter().position(|l| l == name).map(|i| i as u16)
    }
}

impl Compiler {
    fn str_ix(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.strings.get(s) {
            return i;
        }
        let i = self.chunk.strings.len() as u32;
        self.chunk.strings.push(s.to_owned());
        self.strings.insert(s.to_owned(), i);
        i
    }

    fn const_ix(&mut self, cv: ConstVal) -> u32 {
        // Linear dedup: pools are small and compilation is once-per-
        // template (cached), so simplicity wins over a hashed pool.
        if let Some(i) = self.chunk.consts.iter().position(|c| *c == cv) {
            return i as u32;
        }
        self.chunk.consts.push(cv);
        (self.chunk.consts.len() - 1) as u32
    }

    fn emit_const(&mut self, fx: &mut FnCtx, cv: ConstVal) {
        let ix = self.const_ix(cv);
        fx.emit(Op::Const(ix));
    }

    /// Compiles a function body into a new proto; returns its index.
    /// `eval_mode` suppresses the locals table (dynamic names only).
    fn compile_proto(&mut self, params: &[String], body: &[Stmt], eval_mode: bool) -> u32 {
        let locals = if eval_mode {
            Vec::new()
        } else {
            collect_locals(params, body)
        };
        let param_slots = params
            .iter()
            .map(|p| {
                locals
                    .iter()
                    .position(|l| l == p)
                    .expect("params are collected into locals") as u16
            })
            .collect();
        let mut fx = FnCtx {
            code: Vec::new(),
            locals,
            pending: 0,
        };
        // Reserve this proto's index *before* compiling the body: nested
        // function declarations compile their own protos mid-body, and the
        // entry proto must stay at index 0 (`run_chunk` executes proto 0).
        let index = self.chunk.protos.len() as u32;
        self.chunk.protos.push(FnProto::default());
        for s in body {
            self.compile_stmt(s, &mut fx);
        }
        // Implicit `return undefined` (also flushes trailing steps).
        self.emit_const(&mut fx, ConstVal::Undefined);
        fx.emit(Op::Return);
        self.chunk.protos[index as usize] = FnProto {
            param_slots,
            locals: fx.locals,
            code: fx.code,
        };
        index
    }

    fn compile_block(&mut self, stmts: &[Stmt], fx: &mut FnCtx) {
        for s in stmts {
            self.compile_stmt(s, fx);
        }
    }

    fn compile_stmt(&mut self, s: &Stmt, fx: &mut FnCtx) {
        fx.step(1); // the treewalker ticks on statement entry
        match s {
            Stmt::Empty => {}
            Stmt::Var(name, init) => {
                match init {
                    Some(e) => self.compile_expr(e, fx),
                    None => self.emit_const(fx, ConstVal::Undefined),
                }
                match fx.local_ix(name) {
                    Some(ix) => fx.emit(Op::DeclareSlot(ix)),
                    None => {
                        let s = self.str_ix(name);
                        fx.emit(Op::DeclareName(s)); // eval mode only
                    }
                }
            }
            Stmt::Expr(e) => {
                self.compile_expr(e, fx);
                fx.emit(Op::Pop);
            }
            Stmt::If(cond, then, els) => {
                if let Some((cv, k)) = try_const(cond) {
                    fx.step(k);
                    self.compile_block(if cv_value(&cv).truthy() { then } else { els }, fx);
                } else {
                    self.compile_expr(cond, fx);
                    let jf = fx.emit_jump(Op::JumpIfFalse(0));
                    self.compile_block(then, fx);
                    if els.is_empty() {
                        fx.patch(jf);
                    } else {
                        let jend = fx.emit_jump(Op::Jump(0));
                        fx.patch(jf);
                        self.compile_block(els, fx);
                        fx.patch(jend);
                    }
                }
            }
            Stmt::While(cond, body) => {
                // Constant-falsy condition: evaluated once, loop never
                // entered — charge its steps and emit nothing else.
                if let Some((cv, k)) = try_const(cond) {
                    if !cv_value(&cv).truthy() {
                        fx.step(k);
                        return;
                    }
                }
                let start = fx.here();
                let jend = match try_const(cond) {
                    Some((_, k)) => {
                        fx.step(k); // constant-truthy: charged per iteration
                        None
                    }
                    None => {
                        self.compile_expr(cond, fx);
                        Some(fx.emit_jump(Op::JumpIfFalse(0)))
                    }
                };
                fx.step(1); // per-iteration tick
                self.compile_block(body, fx);
                fx.flush();
                fx.emit(Op::Jump(start));
                if let Some(j) = jend {
                    fx.patch(j);
                }
            }
            Stmt::For(init, cond, step, body) => {
                if let Some(i) = init {
                    self.compile_stmt(i, fx); // ticks as a statement
                }
                // Constant-falsy condition: one evaluation, no loop.
                if let Some(c) = cond {
                    if let Some((cv, k)) = try_const(c) {
                        if !cv_value(&cv).truthy() {
                            fx.step(k);
                            return;
                        }
                    }
                }
                let start = fx.here();
                let jend = match cond {
                    Some(c) => match try_const(c) {
                        Some((_, k)) => {
                            fx.step(k);
                            None
                        }
                        None => {
                            self.compile_expr(c, fx);
                            Some(fx.emit_jump(Op::JumpIfFalse(0)))
                        }
                    },
                    None => None,
                };
                fx.step(1); // per-iteration tick
                self.compile_block(body, fx);
                if let Some(e) = step {
                    self.compile_expr(e, fx);
                    fx.emit(Op::Pop);
                }
                fx.flush();
                fx.emit(Op::Jump(start));
                if let Some(j) = jend {
                    fx.patch(j);
                }
            }
            Stmt::Function(name, params, body) => {
                let proto = self.compile_proto(params, body, false);
                fx.emit(Op::MakeFunc(proto));
                let s = self.str_ix(name);
                // Like the treewalker, declarations bind globally when
                // the statement executes.
                fx.emit(Op::DeclareGlobal(s));
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => self.compile_expr(e, fx),
                    None => self.emit_const(fx, ConstVal::Undefined),
                }
                fx.emit(Op::Return);
            }
        }
    }

    fn compile_expr(&mut self, e: &Expr, fx: &mut FnCtx) {
        if let Some((cv, k)) = try_const(e) {
            fx.step(k);
            self.emit_const(fx, cv);
            return;
        }
        fx.step(1); // the treewalker ticks on every evaluated node
        match e {
            // Fully handled by try_const above.
            Expr::Num(_) | Expr::Str(_) | Expr::Bool(_) | Expr::Null => unreachable!(),
            Expr::Ident(name) => {
                // Natives and `undefined` resolve before scope lookup,
                // exactly as in the treewalker ("undefined" itself is
                // folded by try_const).
                if let Some(n) = runtime::ident_native(name) {
                    let s = self.str_ix(n);
                    fx.emit(Op::Native(s));
                } else {
                    match fx.local_ix(name) {
                        Some(ix) => fx.emit(Op::LoadSlot(ix)),
                        None => {
                            let s = self.str_ix(name);
                            fx.emit(Op::LoadName(s));
                        }
                    }
                }
            }
            Expr::Array(items) => {
                for item in items {
                    self.compile_expr(item, fx);
                }
                fx.emit(Op::MakeArray(items.len() as u16));
            }
            Expr::Member(obj, field) => {
                self.compile_expr(obj, fx);
                let s = self.str_ix(field);
                fx.emit(Op::GetMember(s));
            }
            Expr::Index(obj, ix) => {
                self.compile_expr(obj, fx);
                self.compile_expr(ix, fx);
                fx.emit(Op::GetIndex);
            }
            Expr::Un(op, inner) => {
                self.compile_expr(inner, fx);
                fx.emit(Op::Un(*op));
            }
            Expr::Bin(BinOp::And, a, b) => match try_const(a) {
                Some((cv, k)) => {
                    fx.step(k);
                    if cv_value(&cv).truthy() {
                        self.compile_expr(b, fx);
                    } else {
                        self.emit_const(fx, cv); // short-circuit: lhs value
                    }
                }
                None => {
                    self.compile_expr(a, fx);
                    let j = fx.emit_jump(Op::JumpIfFalsePeek(0));
                    fx.emit(Op::Pop);
                    self.compile_expr(b, fx);
                    fx.patch(j);
                }
            },
            Expr::Bin(BinOp::Or, a, b) => match try_const(a) {
                Some((cv, k)) => {
                    fx.step(k);
                    if cv_value(&cv).truthy() {
                        self.emit_const(fx, cv);
                    } else {
                        self.compile_expr(b, fx);
                    }
                }
                None => {
                    self.compile_expr(a, fx);
                    let j = fx.emit_jump(Op::JumpIfTruePeek(0));
                    fx.emit(Op::Pop);
                    self.compile_expr(b, fx);
                    fx.patch(j);
                }
            },
            Expr::Bin(op, a, b) => {
                self.compile_expr(a, fx);
                self.compile_expr(b, fx);
                fx.emit(Op::Bin(*op));
            }
            Expr::Ternary(cond, a, b) => match try_const(cond) {
                Some((cv, k)) => {
                    fx.step(k);
                    self.compile_expr(if cv_value(&cv).truthy() { a } else { b }, fx);
                }
                None => {
                    self.compile_expr(cond, fx);
                    let jf = fx.emit_jump(Op::JumpIfFalse(0));
                    self.compile_expr(a, fx);
                    let jend = fx.emit_jump(Op::Jump(0));
                    fx.patch(jf);
                    self.compile_expr(b, fx);
                    fx.patch(jend);
                }
            },
            Expr::Assign(target, value) => {
                // Value first, then the target — treewalker order.
                self.compile_expr(value, fx);
                match &**target {
                    Expr::Ident(name) => match fx.local_ix(name) {
                        Some(ix) => fx.emit(Op::StoreSlot(ix)),
                        None => {
                            let s = self.str_ix(name);
                            fx.emit(Op::StoreName(s));
                        }
                    },
                    Expr::Member(obj, field) => {
                        self.compile_expr(obj, fx);
                        let s = self.str_ix(field);
                        fx.emit(Op::SetMember(s));
                    }
                    Expr::Index(obj, ix) => {
                        self.compile_expr(obj, fx);
                        self.compile_expr(ix, fx);
                        fx.emit(Op::SetIndex);
                    }
                    _ => {
                        // The parser rejects this, but `Interpreter::run`
                        // accepts arbitrary ASTs, so mirror its error.
                        let s = self.str_ix("invalid assignment target");
                        fx.emit(Op::Throw(s));
                    }
                }
            }
            Expr::Call(callee, args) => {
                // Arguments evaluate before the callee is examined.
                for a in args {
                    self.compile_expr(a, fx);
                }
                let argc = args.len() as u16;
                match &**callee {
                    Expr::Ident(name) => match Builtin::of(name) {
                        Some(b) => fx.emit(Op::CallBuiltin(b, argc)),
                        None => {
                            let s = self.str_ix(name);
                            fx.emit(Op::CallNamed(s, argc));
                        }
                    },
                    Expr::Member(obj, method) => {
                        self.compile_expr(obj, fx);
                        let s = self.str_ix(method);
                        fx.emit(Op::CallMethod(s, argc));
                    }
                    _ => {
                        let s = self.str_ix("uncallable expression");
                        fx.emit(Op::Throw(s));
                    }
                }
            }
        }
    }
}

/// Names a function body can declare: parameters (deduplicated — later
/// duplicates rebind the same slot, like repeated `HashMap` inserts in
/// the treewalker), then every `var` target in source order. Nested
/// function bodies are their own scopes; `function` declaration *names*
/// bind globally at execution time, so neither is collected.
fn collect_locals(params: &[String], body: &[Stmt]) -> Vec<String> {
    fn add(out: &mut Vec<String>, name: &str) {
        if !out.iter().any(|l| l == name) {
            out.push(name.to_owned());
        }
    }
    fn walk(stmts: &[Stmt], out: &mut Vec<String>) {
        for s in stmts {
            match s {
                Stmt::Var(name, _) => add(out, name),
                Stmt::If(_, t, e) => {
                    walk(t, out);
                    walk(e, out);
                }
                Stmt::While(_, b) => walk(b, out),
                Stmt::For(init, _, _, b) => {
                    if let Some(i) = init {
                        walk(std::slice::from_ref(i), out);
                    }
                    walk(b, out);
                }
                Stmt::Function(..) | Stmt::Expr(_) | Stmt::Return(_) | Stmt::Empty => {}
            }
        }
    }
    let mut out = Vec::new();
    for p in params {
        add(&mut out, p);
    }
    walk(body, &mut out);
    out
}

fn cv_value(cv: &ConstVal) -> Value {
    match cv {
        ConstVal::Undefined => Value::Undefined,
        ConstVal::Null => Value::Null,
        ConstVal::Bool(b) => Value::Bool(*b),
        ConstVal::Num(n) => Value::Num(*n),
        ConstVal::Str(s) => Value::Str(s.clone()),
    }
}

fn value_cv(v: Value) -> ConstVal {
    match v {
        Value::Undefined => ConstVal::Undefined,
        Value::Null => ConstVal::Null,
        Value::Bool(b) => ConstVal::Bool(b),
        Value::Num(n) => ConstVal::Num(n),
        Value::Str(s) => ConstVal::Str(s),
        other => unreachable!("folded ops produce primitives, got {other:?}"),
    }
}

/// Constant evaluation. Returns the folded value *and the number of
/// budget steps the treewalker would charge evaluating the expression*,
/// so folding never changes budget-exhaustion behavior. Short-circuit
/// operators fold only the branch that would actually evaluate.
fn try_const(e: &Expr) -> Option<(ConstVal, u32)> {
    match e {
        Expr::Num(n) => Some((ConstVal::Num(*n), 1)),
        Expr::Str(s) => Some((ConstVal::Str(s.clone()), 1)),
        Expr::Bool(b) => Some((ConstVal::Bool(*b), 1)),
        Expr::Null => Some((ConstVal::Null, 1)),
        // `undefined` is intercepted before scope lookup, so it is a
        // constant even if a variable of that name exists.
        Expr::Ident(name) if name == "undefined" => Some((ConstVal::Undefined, 1)),
        Expr::Un(op, inner) => {
            let (cv, k) = try_const(inner)?;
            Some((value_cv(runtime::apply_un(*op, &cv_value(&cv))), 1 + k))
        }
        Expr::Bin(BinOp::And, a, b) => {
            let (ca, ka) = try_const(a)?;
            if !cv_value(&ca).truthy() {
                return Some((ca, 1 + ka));
            }
            let (cb, kb) = try_const(b)?;
            Some((cb, 1 + ka + kb))
        }
        Expr::Bin(BinOp::Or, a, b) => {
            let (ca, ka) = try_const(a)?;
            if cv_value(&ca).truthy() {
                return Some((ca, 1 + ka));
            }
            let (cb, kb) = try_const(b)?;
            Some((cb, 1 + ka + kb))
        }
        Expr::Bin(op, a, b) => {
            let (ca, ka) = try_const(a)?;
            let (cb, kb) = try_const(b)?;
            let v = runtime::apply_bin(*op, &cv_value(&ca), &cv_value(&cb));
            Some((value_cv(v), 1 + ka + kb))
        }
        Expr::Ternary(cond, a, b) => {
            let (cc, kc) = try_const(cond)?;
            let branch = if cv_value(&cc).truthy() { a } else { b };
            let (cv, k) = try_const(branch)?;
            Some((cv, 1 + kc + k))
        }
        _ => None,
    }
}

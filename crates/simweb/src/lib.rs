//! # ss-web
//!
//! The synthetic-web substrate for the `search-seizure` reproduction.
//!
//! The paper's measurement apparatus is web machinery: it fetches pages as
//! two different user agents, diffs them, renders JavaScript, inspects
//! iframes, reads cookies, and scrapes analytics and court documents. To
//! reproduce that faithfully without the 2013 web, this crate implements the
//! web itself, from scratch:
//!
//! * [`html`] — an HTML tokenizer, a lenient tree parser, and a small DOM
//!   with the query operations the crawler needs (text extraction, iframe
//!   geometry, link harvesting);
//! * [`js`] — a miniature JavaScript: lexer, recursive-descent parser and a
//!   tree-walking interpreter with DOM bindings (`document.write`,
//!   `createElement`, `window.location`, `String.fromCharCode`, …) rich
//!   enough to run the obfuscated iframe-cloaking payloads the page
//!   generators emit — and therefore rich enough that "rendering a page"
//!   in the VanGogh detector is real work, as in the paper (§3.1.1);
//! * [`http`] — request/response types with user agents, referrers, cookies
//!   and redirects, plus the fetch-plane/tick-plane trait pair: the pure
//!   [`http::Fetcher`] read plane the crawler speaks (`fetch(&self)`
//!   returning [`http::SideEffect`]s) and the [`http::Web`] tick plane
//!   whose `apply` is the one choke point for fetch-time mutation;
//! * [`cloak`] — the three cloaking mechanisms of §3.1.1 (redirect cloaking,
//!   JS redirect cloaking, iframe cloaking) as pure decision logic;
//! * [`pagegen`] — deterministic generators for every page class in the
//!   study: keyword-stuffed doorways, campaign-templated storefronts,
//!   legitimate sites, seizure-notice pages with embedded court documents,
//!   AWStats reports and the supplier's order-tracking portal.
//!
//! Everything is synchronous and deterministic; no I/O happens anywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cloak;
pub mod html;
pub mod http;
pub mod js;
pub mod pagegen;

pub use html::{Document, Node};
pub use http::{Fetcher, Request, Response, SideEffect, UserAgent, Web};

//! HTML: escaping, tokenizing, parsing, and a small query-oriented DOM.
//!
//! The crawler needs to parse pages it did not generate (it only sees
//! response bodies), extract visible text for the Dagger semantic diff,
//! find `<script>` payloads for the VanGogh renderer, measure `<iframe>`
//! geometry, harvest `<a href>` links, and pull tag/attribute/value triplets
//! for the campaign classifier. This module provides exactly that: a
//! forgiving tokenizer plus a stack-based tree builder in the spirit of (a
//! tiny fraction of) the HTML5 parsing algorithm.

mod dom;
mod token;

pub use dom::{Document, Element, Node};
pub use token::{tokenize, Token};

/// Escapes text for safe inclusion as HTML character data.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes text for inclusion inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Decodes the named and numeric entities the generators emit.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest.find(';').filter(|&i| i <= 10);
        match semi {
            Some(i) => {
                let ent = &rest[1..i];
                let decoded = match ent {
                    "amp" => Some('&'),
                    "lt" => Some('<'),
                    "gt" => Some('>'),
                    "quot" => Some('"'),
                    "apos" => Some('\''),
                    "nbsp" => Some(' '),
                    _ => ent
                        .strip_prefix('#')
                        .and_then(|n| n.parse::<u32>().ok())
                        .and_then(char::from_u32),
                };
                match decoded {
                    Some(c) => {
                        out.push(c);
                        rest = &rest[i + 1..];
                    }
                    None => {
                        out.push('&');
                        rest = &rest[1..];
                    }
                }
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn escape_and_unescape() {
        assert_eq!(escape_text("a<b & c>d"), "a&lt;b &amp; c&gt;d");
        assert_eq!(
            escape_attr(r#"say "hi" <now>"#),
            "say &quot;hi&quot; &lt;now>"
        );
        assert_eq!(unescape("a&lt;b &amp; c&gt;d"), "a<b & c>d");
        assert_eq!(unescape("&#65;&#66;"), "AB");
        assert_eq!(unescape("no entities"), "no entities");
        assert_eq!(unescape("dangling & amp"), "dangling & amp");
        assert_eq!(unescape("&bogus;"), "&bogus;");
    }

    proptest! {
        #[test]
        fn escape_roundtrip(s in "[ -~]{0,60}") {
            prop_assert_eq!(unescape(&escape_text(&s)), s.clone());
            prop_assert_eq!(unescape(&escape_attr(&s)), s);
        }
    }
}

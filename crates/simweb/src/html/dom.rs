//! The DOM tree and its query operations.

use super::token::{tokenize, Token};

/// Elements that never have children (HTML void elements we emit/accept).
fn is_void(tag: &str) -> bool {
    matches!(
        tag,
        "br" | "hr"
            | "img"
            | "meta"
            | "link"
            | "input"
            | "base"
            | "area"
            | "col"
            | "embed"
            | "source"
            | "track"
            | "wbr"
    )
}

/// An element node: tag, attributes, children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Lower-cased tag name.
    pub tag: String,
    /// Attributes in document order (names lower-cased, values decoded).
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(tag: &str) -> Self {
        Element {
            tag: tag.to_ascii_lowercase(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// First value of attribute `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Sets (or replaces) attribute `name`.
    pub fn set_attr(&mut self, name: &str, value: &str) {
        let name = name.to_ascii_lowercase();
        match self.attrs.iter_mut().find(|(k, _)| *k == name) {
            Some(slot) => slot.1 = value.to_owned(),
            None => self.attrs.push((name, value.to_owned())),
        }
    }

    /// Concatenated text content of the subtree (script/style excluded).
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        collect_text(&self.children, &mut out);
        out
    }
}

/// A DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element with children.
    Element(Element),
    /// A text run.
    Text(String),
    /// A comment.
    Comment(String),
}

impl Node {
    /// The element inside this node, if it is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }
}

fn collect_text(nodes: &[Node], out: &mut String) {
    for n in nodes {
        match n {
            Node::Text(t) => out.push_str(t),
            Node::Element(e) if e.tag == "script" || e.tag == "style" => {}
            Node::Element(e) => collect_text(&e.children, out),
            Node::Comment(_) => {}
        }
    }
}

/// A parsed HTML document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Document {
    /// Top-level nodes.
    pub roots: Vec<Node>,
}

impl Document {
    /// Parses HTML into a tree. Lenient: stray end tags are dropped,
    /// unclosed elements are closed at end of input, and void elements
    /// never take children.
    pub fn parse(html: &str) -> Self {
        Self::from_tokens(tokenize(html))
    }

    /// Builds a document from a pre-tokenized stream.
    pub fn from_tokens(tokens: Vec<Token>) -> Self {
        // Stack of open elements; index 0 is a synthetic root.
        let mut stack: Vec<Element> = vec![Element::new("#root")];
        for tok in tokens {
            match tok {
                Token::Text(t) => {
                    stack.last_mut().expect("root").children.push(Node::Text(t));
                }
                Token::Comment(c) => {
                    stack
                        .last_mut()
                        .expect("root")
                        .children
                        .push(Node::Comment(c));
                }
                Token::Start {
                    tag,
                    attrs,
                    self_closing,
                } => {
                    let el = Element {
                        tag: tag.clone(),
                        attrs,
                        children: Vec::new(),
                    };
                    if self_closing || is_void(&tag) {
                        stack
                            .last_mut()
                            .expect("root")
                            .children
                            .push(Node::Element(el));
                    } else {
                        stack.push(el);
                    }
                }
                Token::End { tag } => {
                    // Find the matching open element; ignore if none.
                    if let Some(pos) = stack.iter().rposition(|e| e.tag == tag) {
                        if pos == 0 {
                            continue; // never close the synthetic root
                        }
                        while stack.len() > pos {
                            let done = stack.pop().expect("len > pos >= 1");
                            stack
                                .last_mut()
                                .expect("stack non-empty")
                                .children
                                .push(Node::Element(done));
                        }
                    }
                }
            }
        }
        // Close any dangling elements.
        while stack.len() > 1 {
            let done = stack.pop().expect("len > 1");
            stack
                .last_mut()
                .expect("root remains")
                .children
                .push(Node::Element(done));
        }
        Document {
            roots: stack.pop().expect("root").children,
        }
    }

    /// Depth-first iterator over all elements.
    pub fn elements(&self) -> Vec<&Element> {
        let mut out = Vec::new();
        fn walk<'a>(nodes: &'a [Node], out: &mut Vec<&'a Element>) {
            for n in nodes {
                if let Node::Element(e) = n {
                    out.push(e);
                    walk(&e.children, out);
                }
            }
        }
        walk(&self.roots, &mut out);
        out
    }

    /// All elements with the given tag name.
    pub fn find_all(&self, tag: &str) -> Vec<&Element> {
        self.elements()
            .into_iter()
            .filter(|e| e.tag == tag)
            .collect()
    }

    /// First element with the given tag name.
    pub fn find_first(&self, tag: &str) -> Option<&Element> {
        self.elements().into_iter().find(|e| e.tag == tag)
    }

    /// First element with the given `id` attribute.
    pub fn by_id(&self, id: &str) -> Option<&Element> {
        self.elements()
            .into_iter()
            .find(|e| e.attr("id") == Some(id))
    }

    /// The `<title>` text, if any.
    pub fn title(&self) -> Option<String> {
        self.find_first("title").map(|t| t.text_content())
    }

    /// Visible text of the whole document.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        collect_text(&self.roots, &mut out);
        out
    }

    /// All `href` values of `<a>` elements.
    pub fn links(&self) -> Vec<String> {
        self.find_all("a")
            .into_iter()
            .filter_map(|a| a.attr("href").map(str::to_owned))
            .collect()
    }

    /// Bodies of all `<script>` elements (inline source text).
    pub fn scripts(&self) -> Vec<String> {
        self.find_all("script")
            .into_iter()
            .map(|s| s.text_content_raw())
            .collect()
    }

    /// All comment nodes' contents.
    pub fn comments(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(nodes: &'a [Node], out: &mut Vec<&'a str>) {
            for n in nodes {
                match n {
                    Node::Comment(c) => out.push(c.as_str()),
                    Node::Element(e) => walk(&e.children, out),
                    Node::Text(_) => {}
                }
            }
        }
        walk(&self.roots, &mut out);
        out
    }

    /// Serializes the document back to HTML.
    pub fn to_html(&self) -> String {
        let mut out = String::new();
        for n in &self.roots {
            write_node(n, &mut out);
        }
        out
    }
}

impl Element {
    /// Raw text content including script/style bodies (used to pull JS
    /// source out of `<script>` elements).
    pub fn text_content_raw(&self) -> String {
        let mut out = String::new();
        fn walk(nodes: &[Node], out: &mut String) {
            for n in nodes {
                match n {
                    Node::Text(t) => out.push_str(t),
                    Node::Element(e) => walk(&e.children, out),
                    Node::Comment(_) => {}
                }
            }
        }
        walk(&self.children, &mut out);
        out
    }
}

fn write_node(node: &Node, out: &mut String) {
    match node {
        Node::Text(t) => out.push_str(&super::escape_text(t)),
        Node::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        Node::Element(e) => {
            out.push('<');
            out.push_str(&e.tag);
            for (k, v) in &e.attrs {
                out.push(' ');
                out.push_str(k);
                if !v.is_empty() {
                    out.push_str("=\"");
                    out.push_str(&super::escape_attr(v));
                    out.push('"');
                }
            }
            out.push('>');
            if e.tag == "script" || e.tag == "style" {
                // Raw text: emit verbatim.
                for c in &e.children {
                    if let Node::Text(t) = c {
                        out.push_str(t);
                    }
                }
                out.push_str(&format!("</{}>", e.tag));
            } else if !is_void(&e.tag) {
                for c in &e.children {
                    write_node(c, out);
                }
                out.push_str(&format!("</{}>", e.tag));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_nested_structure() {
        let doc = Document::parse(
            "<html><head><title>T</title></head><body><p>a<b>c</b></p></body></html>",
        );
        assert_eq!(doc.title().as_deref(), Some("T"));
        let ps = doc.find_all("p");
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].text_content(), "ac");
    }

    #[test]
    fn void_elements_do_not_swallow_siblings() {
        let doc = Document::parse("<p>a<br>b<img src=\"x.png\">c</p>");
        assert_eq!(doc.find_first("p").unwrap().text_content(), "abc");
        assert_eq!(doc.find_all("img")[0].attr("src"), Some("x.png"));
    }

    #[test]
    fn stray_end_tags_ignored_and_unclosed_closed() {
        let doc = Document::parse("</b><div><p>text");
        assert_eq!(doc.find_first("div").unwrap().text_content(), "text");
    }

    #[test]
    fn misnesting_recovers() {
        let doc = Document::parse("<b><i>x</b></i>y");
        // </b> closes both i and b; y is top-level text.
        assert!(doc.text_content().contains('x'));
        assert!(doc.text_content().contains('y'));
    }

    #[test]
    fn by_id_and_links() {
        let doc = Document::parse(
            r#"<div id="main"><a href="/a">1</a><a href="http://x.com/b">2</a></div>"#,
        );
        assert!(doc.by_id("main").is_some());
        assert_eq!(doc.links(), vec!["/a", "http://x.com/b"]);
    }

    #[test]
    fn scripts_extracted_raw() {
        let doc = Document::parse(r#"<script>var a = 1 < 2 && "</x>";</script>"#);
        let s = doc.scripts();
        assert_eq!(s.len(), 1);
        assert!(s[0].contains("1 < 2"));
    }

    #[test]
    fn text_excludes_script_and_style() {
        let doc = Document::parse("<p>seen</p><script>hidden()</script><style>.x{}</style>");
        let t = doc.text_content();
        assert!(t.contains("seen"));
        assert!(!t.contains("hidden"));
        assert!(!t.contains(".x"));
    }

    #[test]
    fn serialization_roundtrips_structure() {
        let src = r#"<div class="a b"><p>Hello &amp; bye</p><iframe width="100%" height="900"></iframe></div>"#;
        let doc = Document::parse(src);
        let re = Document::parse(&doc.to_html());
        assert_eq!(doc, re);
    }

    proptest! {
        #[test]
        fn parse_never_panics(s in "[ -~]{0,200}") {
            let _ = Document::parse(&s);
        }

        #[test]
        fn reserialization_fixpoint(words in proptest::collection::vec("[a-z]{1,8}", 1..6)) {
            let html = format!("<div id=\"{}\"><p>{}</p></div>", words[0], words.join(" "));
            let doc = Document::parse(&html);
            let once = doc.to_html();
            let twice = Document::parse(&once).to_html();
            prop_assert_eq!(once, twice);
        }
    }
}

//! The HTML tokenizer.
//!
//! A forgiving, single-pass tokenizer producing start/end tags with parsed
//! attributes, text runs, comments, and raw-text elements (`<script>`,
//! `<style>`) whose contents are captured verbatim until the matching close
//! tag — which is what lets the renderer hand script bodies to the JS
//! interpreter untouched.

/// One lexical token of an HTML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<tag attr="v">`; `self_closing` records a trailing `/`.
    Start {
        /// Lower-cased tag name.
        tag: String,
        /// Attributes in document order, values entity-decoded.
        attrs: Vec<(String, String)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</tag>`.
    End {
        /// Lower-cased tag name.
        tag: String,
    },
    /// A run of character data (entity-decoded).
    Text(String),
    /// `<!-- … -->` contents.
    Comment(String),
}

/// Elements whose content is raw text up to the matching end tag.
fn is_raw_text(tag: &str) -> bool {
    matches!(tag, "script" | "style")
}

/// Tokenizes an HTML document. Never fails: malformed markup degrades to
/// text, mirroring browser behaviour.
pub fn tokenize(input: &str) -> Vec<Token> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut text_start = 0;

    let flush_text = |tokens: &mut Vec<Token>, from: usize, to: usize| {
        if from < to {
            let raw = &input[from..to];
            if !raw.is_empty() {
                tokens.push(Token::Text(super::unescape(raw)));
            }
        }
    };

    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        // Comment?
        if input[i..].starts_with("<!--") {
            flush_text(&mut tokens, text_start, i);
            let body_start = i + 4;
            let end = input[body_start..].find("-->").map(|e| body_start + e);
            match end {
                Some(e) => {
                    tokens.push(Token::Comment(input[body_start..e].to_owned()));
                    i = e + 3;
                }
                None => {
                    tokens.push(Token::Comment(input[body_start..].to_owned()));
                    i = bytes.len();
                }
            }
            text_start = i;
            continue;
        }
        // Doctype / processing noise: skip to '>'.
        if input[i..].starts_with("<!") || input[i..].starts_with("<?") {
            flush_text(&mut tokens, text_start, i);
            i = input[i..]
                .find('>')
                .map(|e| i + e + 1)
                .unwrap_or(bytes.len());
            text_start = i;
            continue;
        }
        // End tag.
        if input[i..].starts_with("</") {
            let close = input[i..].find('>');
            match close {
                Some(e) => {
                    flush_text(&mut tokens, text_start, i);
                    let name = input[i + 2..i + e].trim().to_ascii_lowercase();
                    if !name.is_empty() && name.bytes().all(|b| b.is_ascii_alphanumeric()) {
                        tokens.push(Token::End { tag: name });
                    }
                    i += e + 1;
                    text_start = i;
                }
                None => {
                    i += 1;
                }
            }
            continue;
        }
        // Start tag: must begin with a letter, else literal '<' text.
        let next = bytes.get(i + 1).copied().unwrap_or(0);
        if !next.is_ascii_alphabetic() {
            i += 1;
            continue;
        }
        match parse_start_tag(&input[i..]) {
            Some((tag, attrs, self_closing, consumed)) => {
                flush_text(&mut tokens, text_start, i);
                i += consumed;
                text_start = i;
                let raw = is_raw_text(&tag) && !self_closing;
                tokens.push(Token::Start {
                    tag: tag.clone(),
                    attrs,
                    self_closing,
                });
                if raw {
                    // Capture raw content verbatim until the close tag.
                    let close_pat = format!("</{tag}");
                    let rest = &input[i..];
                    let lower = rest.to_ascii_lowercase();
                    match lower.find(&close_pat) {
                        Some(e) => {
                            if e > 0 {
                                tokens.push(Token::Text(rest[..e].to_owned()));
                            }
                            let after = i + e;
                            let gt = input[after..]
                                .find('>')
                                .map(|g| after + g + 1)
                                .unwrap_or(bytes.len());
                            tokens.push(Token::End { tag });
                            i = gt;
                            text_start = i;
                        }
                        None => {
                            tokens.push(Token::Text(rest.to_owned()));
                            tokens.push(Token::End { tag });
                            i = bytes.len();
                            text_start = i;
                        }
                    }
                }
            }
            None => {
                i += 1;
            }
        }
    }
    flush_text(&mut tokens, text_start, bytes.len());
    tokens
}

/// Parsed `<name attrs…>`: `(tag, attrs, self_closing, bytes_consumed)`.
type StartTag = (String, Vec<(String, String)>, bool, usize);

/// Parses `<name attrs…>` at the start of `s`.
fn parse_start_tag(s: &str) -> Option<StartTag> {
    let bytes = s.as_bytes();
    debug_assert_eq!(bytes[0], b'<');
    let mut i = 1;
    let name_start = i;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'-') {
        i += 1;
    }
    if i == name_start {
        return None;
    }
    let tag = s[name_start..i].to_ascii_lowercase();
    let mut attrs = Vec::new();
    let mut self_closing = false;
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            return None; // unterminated tag: treat as text
        }
        match bytes[i] {
            b'>' => return Some((tag, attrs, self_closing, i + 1)),
            b'/' => {
                self_closing = true;
                i += 1;
            }
            _ => {
                // Attribute name.
                let an = i;
                while i < bytes.len()
                    && !bytes[i].is_ascii_whitespace()
                    && !matches!(bytes[i], b'=' | b'>' | b'/')
                {
                    i += 1;
                }
                if i == an {
                    return None;
                }
                let name = s[an..i].to_ascii_lowercase();
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                let mut value = String::new();
                if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    if i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'\'') {
                        let quote = bytes[i];
                        i += 1;
                        let vs = i;
                        while i < bytes.len() && bytes[i] != quote {
                            i += 1;
                        }
                        if i >= bytes.len() {
                            return None;
                        }
                        value = super::unescape(&s[vs..i]);
                        i += 1;
                    } else {
                        let vs = i;
                        while i < bytes.len() && !bytes[i].is_ascii_whitespace() && bytes[i] != b'>'
                        {
                            i += 1;
                        }
                        value = super::unescape(&s[vs..i]);
                    }
                }
                attrs.push((name, value));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(tag: &str, attrs: &[(&str, &str)]) -> Token {
        Token::Start {
            tag: tag.into(),
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).into(), (*v).into()))
                .collect(),
            self_closing: false,
        }
    }

    #[test]
    fn tokenizes_simple_markup() {
        let t = tokenize(r#"<html><body class="x">Hi <b>there</b></body></html>"#);
        assert_eq!(
            t,
            vec![
                start("html", &[]),
                start("body", &[("class", "x")]),
                Token::Text("Hi ".into()),
                start("b", &[]),
                Token::Text("there".into()),
                Token::End { tag: "b".into() },
                Token::End { tag: "body".into() },
                Token::End { tag: "html".into() },
            ]
        );
    }

    #[test]
    fn script_contents_are_raw() {
        let t = tokenize(
            r#"<script type="text/javascript">if (a < b) { x("</s" + "cript>"); }</script>done"#,
        );
        assert_eq!(t[0], start("script", &[("type", "text/javascript")]));
        match &t[1] {
            Token::Text(s) => assert!(s.contains("a < b"), "{s}"),
            other => panic!("expected raw text, got {other:?}"),
        }
        assert_eq!(
            t[2],
            Token::End {
                tag: "script".into()
            }
        );
        assert_eq!(t[3], Token::Text("done".into()));
    }

    #[test]
    fn comments_and_doctype() {
        let t = tokenize("<!DOCTYPE html><!-- note --><p>x</p>");
        assert_eq!(t[0], Token::Comment(" note ".into()));
        assert_eq!(t[1], start("p", &[]));
    }

    #[test]
    fn attribute_styles() {
        let t = tokenize(r#"<iframe width="100%" height=900 allowfullscreen src='/a?b=1'/>"#);
        match &t[0] {
            Token::Start {
                tag,
                attrs,
                self_closing,
            } => {
                assert_eq!(tag, "iframe");
                assert!(self_closing);
                assert_eq!(
                    attrs,
                    &vec![
                        ("width".to_owned(), "100%".to_owned()),
                        ("height".to_owned(), "900".to_owned()),
                        ("allowfullscreen".to_owned(), String::new()),
                        ("src".to_owned(), "/a?b=1".to_owned()),
                    ]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_markup_degrades_to_text() {
        let t = tokenize("a < b and <1notatag> and <unclosed");
        let text: String = t
            .iter()
            .map(|tok| match tok {
                Token::Text(s) => s.as_str(),
                _ => "",
            })
            .collect();
        assert!(text.contains("a < b"));
        assert!(text.contains("<1notatag>"));
        assert!(text.contains("<unclosed"));
    }

    #[test]
    fn entities_decoded_in_text_and_attrs() {
        let t = tokenize(r#"<a title="A &amp; B">x &lt; y</a>"#);
        assert_eq!(t[0], start("a", &[("title", "A & B")]));
        assert_eq!(t[1], Token::Text("x < y".into()));
    }

    #[test]
    fn uppercase_tags_normalized() {
        let t = tokenize("<DIV CLASS=\"a\">x</DIV>");
        assert_eq!(t[0], start("div", &[("class", "a")]));
        assert_eq!(t[2], Token::End { tag: "div".into() });
    }
}

//! The differential harness that locks the bytecode VM to the treewalker.
//!
//! Three layers of evidence that the engines are observably identical:
//!
//! 1. a seeded property generator over the whole Stmt/Expr grammar
//!    (shadowing, bounded loops, DOM builtins, deliberate error paths),
//!    asserting identical effects *and* identical `JsError`s;
//! 2. the pinned pagegen corpus — every page template the generators can
//!    emit, rendered by both engines under every visitor class;
//! 3. compile-cache correctness: caching must change performance, never
//!    results or determinism.

use rand::Rng;
use ss_types::rng::{sub_rng, SimRng};
use ss_web::js::{render::render_with, run_script_with, JsCache, JsEngine, PageEnv};
use ss_web::pagegen::{awstats, doorway, legit, notice, storefront};
use ss_web::UserAgent;

/// Runs one source string through both engines against identical
/// environments and asserts every observable agrees.
fn assert_engines_agree(src: &str, ctx: &str) {
    let mk_env = || PageEnv {
        user_agent: UserAgent::Browser.header_value().to_owned(),
        referrer: "http://www.google.com/search?q=x".to_owned(),
        title: "seed title".to_owned(),
        location_href: "http://doorway.example.com/page".to_owned(),
        dom_ids: vec!["main".to_owned(), "footer".to_owned()],
        effects: Default::default(),
    };
    let mut tw_env = mk_env();
    let mut vm_env = mk_env();
    let tw = run_script_with(src, &mut tw_env, JsEngine::TreeWalk, &JsCache::new());
    let vm = run_script_with(src, &mut vm_env, JsEngine::Vm, &JsCache::new());
    assert_eq!(tw, vm, "result diverged ({ctx})\nsource:\n{src}");
    assert_eq!(
        tw_env.effects, vm_env.effects,
        "effects diverged ({ctx})\nsource:\n{src}"
    );
    assert_eq!(
        tw_env.title, vm_env.title,
        "title diverged ({ctx})\nsource:\n{src}"
    );
}

// ------------------------------------------------- hand-picked programs ----

/// Semantic corner cases worth pinning explicitly, beyond what random
/// generation reliably hits.
#[test]
fn pinned_semantic_corpus() {
    let cases: &[&str] = &[
        // Dynamic scoping: inner function reads and writes outer locals.
        "var x = 1; function f() { x = x + 1; return x; } f(); f(); document.write('' + x);",
        // Shadowing: parameter hides a global of the same name.
        "var x = 'outer'; function f(x) { return x; } document.write(f('inner') + x);",
        // Assignment without `var` creates a global from inside a call.
        "function f() { g = 'made'; } f(); document.write(g);",
        // Reading a declared-but-unassigned local falls through to outer.
        "var y = 'outer'; function f() { if (false) { var y = 'in'; } return y; } document.write('' + f());",
        // Duplicate parameter names: the later binding wins.
        "function f(a, a) { return a; } document.write('' + f(1, 2));",
        // Function value flowing through a variable and truthiness.
        "function f() { return 1; } var g = f; if (g) { document.write('' + g()); }",
        // `undefined` is a constant even when evaluated as an identifier.
        "document.write('' + undefined);",
        // eval declares into the *calling* frame.
        "function f() { eval('var z = 42;'); return z; } document.write('' + f());",
        // A top-level return inside eval is swallowed.
        "eval('return 9;'); document.write('after');",
        // eval parse errors surface as runtime errors with the eval prefix.
        "eval('var = ;');",
        // Errors after effects: the write must land in both engines.
        "document.write('pre'); nosuch();",
        // Evaluation order: arguments run before the callee is examined.
        "var log = ''; function t(v) { log = log + v; return v; } missing(t('a'), t('b')); ",
        // Assignment evaluates the value before the (invalid) target.
        "var log = ''; function t(v) { log = log + v; return v; } var arr = [1]; arr[nosuchfn()] = t('x');",
        // Ternary / short-circuit only evaluate the taken branch.
        "var n = 0; function bump() { n = n + 1; return n; } var v = (1 ? bump() : bump()) + (0 && bump()) + (0 || bump()); document.write('' + n + '/' + v);",
        // String/array method zoo through both engines.
        "var s = 'Hello World'; document.write(s.toLowerCase() + s.indexOf('o') + s.substring(1, 4) + s.split(' ').join('-') + s.charAt(4) + s.length);",
        "var a = [3, 1, 2]; a.push(9); document.write(a.join(',') + a.length + a[0]);",
        // String.fromCharCode + unescape + parseInt round trip.
        "document.write(String.fromCharCode(104, 105) + unescape('%41') + parseInt('12px') + parseInt('x'));",
        // DOM construction, attach, attributes, innerHTML.
        "var d = document.createElement('div'); d.setAttribute('ID', 'x'); d.innerHTML = '<b>b</b>'; document.body.appendChild(d); var e = document.createElement('span'); e.className = 'c';",
        // getElementById against static ids and dynamic elements.
        "var m = document.getElementById('main'); var n = document.getElementById('nope'); document.write('' + (m ? 1 : 0) + (n ? 1 : 0));",
        // Redirect via the three supported forms (last wins).
        "window.location = 'http://a.com/'; window.location.href = 'http://b.com/'; window.location.replace('http://c.com/');",
        // Cloaking branch on referrer and user agent.
        "if (document.referrer.indexOf('google') >= 0 && navigator.userAgent.indexOf('bot') < 0) { document.write('cloaked'); } else { document.write('clean'); }",
        // document.title read/write.
        "document.title = document.title + '!';",
        // Step budget: both engines exhaust at the same instant.
        "var i = 0; while (true) { i = i + 1; }",
        "for (;;) { var q = 1; }",
        // Call-depth cap.
        "function r() { return r(); } r();",
        // Mutual recursion under the cap.
        "function even(n) { if (n == 0) { return true; } return odd(n - 1); } function odd(n) { if (n == 0) { return false; } return even(n - 1); } document.write('' + even(10) + odd(7));",
        // Numeric coercion edge cases through +, comparison, and write.
        "document.write('' + (1 / 0) + (0 / 0) + ('5' - 2) + ('5' + 2) + (true + 1) + (null + 1) + ([] + 1) + ([2] * 3));",
        // Loose equality table corners.
        "document.write('' + (null == undefined) + (0 == '0') + ('' == 0) + (1 == true) + ([1] == 1));",
        // Member access on primitives and errors.
        "var v = 'abc'.length; document.write('' + v); var bad = (5).foo;",
        // Empty statements, nested blocks, and fall-through returns.
        ";;; if (1) {} else {}; function f() {}; document.write('' + f());",
    ];
    for (i, src) in cases.iter().enumerate() {
        assert_engines_agree(src, &format!("pinned case {i}"));
    }
}

// --------------------------------------------------- program generation ----

/// Grammar-directed program generator. Emits fully parenthesized source so
/// the printed text round-trips through the parser unambiguously; biases
/// toward name collisions (a tiny identifier pool) to exercise shadowing
/// and dynamic scope, and toward DOM builtins so effects actually differ
/// when engines diverge.
struct GenCtx {
    rng: SimRng,
    /// Function declarations hoisted to the program prologue.
    funcs: Vec<String>,
    fuel: u32,
}

const VARS: &[&str] = &["a", "b", "c", "x", "y"];

impl GenCtx {
    fn var(&mut self) -> &'static str {
        VARS[self.rng.gen_range(0..VARS.len())]
    }

    fn expr(&mut self, depth: u32) -> String {
        if depth >= 4 || self.fuel == 0 {
            return match self.rng.gen_range(0..6) {
                0 => self.rng.gen_range(0..20u32).to_string(),
                1 => format!("'{}'", "s".repeat(self.rng.gen_range(1..3))),
                2 => "true".into(),
                3 => "null".into(),
                4 => "undefined".into(),
                _ => self.var().to_owned(),
            };
        }
        self.fuel -= 1;
        match self.rng.gen_range(0..14) {
            0 => self.rng.gen_range(0..100u32).to_string(),
            1 => format!("'t{}'", self.rng.gen_range(0..9u32)),
            2 => self.var().to_owned(),
            3 => {
                let op = ["+", "-", "*", "/", "%"][self.rng.gen_range(0..5)];
                format!("({} {} {})", self.expr(depth + 1), op, self.expr(depth + 1))
            }
            4 => {
                let op = ["==", "!=", "<", ">", "<=", ">=", "===", "!=="][self.rng.gen_range(0..8)];
                format!("({} {} {})", self.expr(depth + 1), op, self.expr(depth + 1))
            }
            5 => {
                let op = ["&&", "||"][self.rng.gen_range(0..2)];
                format!("({} {} {})", self.expr(depth + 1), op, self.expr(depth + 1))
            }
            6 => format!(
                "({}{})",
                ["!", "-"][self.rng.gen_range(0..2)],
                self.expr(depth + 1)
            ),
            7 => format!(
                "({} ? {} : {})",
                self.expr(depth + 1),
                self.expr(depth + 1),
                self.expr(depth + 1)
            ),
            8 => format!("[{}, {}]", self.expr(depth + 1), self.expr(depth + 1)),
            9 => format!("({})[{}]", self.expr(depth + 1), self.expr(depth + 1)),
            10 => format!("({} = {})", self.var(), self.expr(depth + 1)),
            11 => match self.rng.gen_range(0..6) {
                0 => format!("('' + {})", self.expr(depth + 1)),
                1 => format!(
                    "String.fromCharCode((65 + ({} % 26)))",
                    self.expr(depth + 1)
                ),
                2 => format!("parseInt({})", self.expr(depth + 1)),
                3 => "navigator.userAgent.length".into(),
                4 => "document.referrer.indexOf('google')".into(),
                _ => format!("unescape({})", self.expr(depth + 1)),
            },
            12 => {
                // Call a generated function (may not exist yet → the
                // "not a function" path is part of the contract).
                let name = format!("fn{}", self.rng.gen_range(0..3u32));
                format!("{}({})", name, self.expr(depth + 1))
            }
            _ => format!("({}).length", self.expr(depth + 1)),
        }
    }

    fn stmt(&mut self, depth: u32) -> String {
        if self.fuel == 0 {
            return ";".into();
        }
        self.fuel -= 1;
        match self.rng.gen_range(0..10) {
            0 => format!("var {} = {};", self.var(), self.expr(depth)),
            1 => format!("{} = {};", self.var(), self.expr(depth)),
            2 if depth < 3 => format!(
                "if ({}) {{ {} }} else {{ {} }}",
                self.expr(depth + 1),
                self.stmt(depth + 1),
                self.stmt(depth + 1)
            ),
            3 if depth < 3 => {
                // Bounded loop over a dedicated counter so generated loops
                // terminate (the budget case is pinned separately).
                let i = format!("i{}", self.rng.gen_range(0..100u32));
                format!(
                    "for (var {i} = 0; {i} < {}; {i} = ({i} + 1)) {{ {} }}",
                    self.rng.gen_range(1..4u32),
                    self.stmt(depth + 1)
                )
            }
            4 if depth < 3 => {
                let i = format!("w{}", self.rng.gen_range(0..100u32));
                format!(
                    "var {i} = 0; while ({i} < {}) {{ {i} = ({i} + 1); {} }}",
                    self.rng.gen_range(1..4u32),
                    self.stmt(depth + 1)
                )
            }
            5 => {
                // Declare a function into the hoisted prologue; bodies use
                // the same tiny name pool, so they shadow globals.
                let name = format!("fn{}", self.rng.gen_range(0..3u32));
                let param = self.var().to_owned();
                let body = format!(
                    "{} return {};",
                    self.stmt(depth + 1),
                    self.expr(depth + 1)
                );
                self.funcs
                    .push(format!("function {name}({param}) {{ {body} }}"));
                format!("{name}({});", self.expr(depth + 1))
            }
            6 => format!("document.write('' + ({}));", self.expr(depth)),
            7 => match self.rng.gen_range(0..4) {
                0 => format!(
                    "var e{0} = document.createElement('div'); e{0}.setAttribute('data-k', '' + ({1})); document.body.appendChild(e{0});",
                    self.rng.gen_range(0..50u32),
                    self.expr(depth)
                ),
                1 => format!("document.title = '' + ({});", self.expr(depth)),
                2 => format!(
                    "if ({}) {{ window.location = 'http://g{}.com/'; }}",
                    self.expr(depth),
                    self.rng.gen_range(0..9u32)
                ),
                _ => format!(
                    "var ge = document.getElementById('main'); if (ge) {{ document.write('' + ({})); }}",
                    self.expr(depth)
                ),
            },
            8 => format!("{};", self.expr(depth)),
            _ => ";".into(),
        }
    }

    fn program(&mut self) -> String {
        let n = self.rng.gen_range(2..8);
        let body: Vec<String> = (0..n).map(|_| self.stmt(0)).collect();
        let mut out = self.funcs.join("\n");
        out.push('\n');
        out.push_str(&body.join("\n"));
        out
    }
}

fn differential_rounds(seed: u64, rounds: u32) {
    for round in 0..rounds {
        let mut g = GenCtx {
            rng: sub_rng(seed, &format!("js/differential/{round}")),
            funcs: Vec::new(),
            fuel: 60,
        };
        let src = g.program();
        assert_engines_agree(&src, &format!("generated round {round} (seed {seed})"));
    }
}

#[test]
fn generated_programs_agree() {
    differential_rounds(0xD1FF, 300);
}

/// The heavyweight sweep; run with `--include-ignored` in release CI.
#[test]
#[ignore = "heavyweight differential sweep; run in release CI"]
fn generated_programs_agree_deep() {
    for seed in [0xD1FF_u64, 0xBEEF, 0xA11CE, 7, 999] {
        differential_rounds(seed, 2_000);
    }
}

// ----------------------------------------------------- pagegen corpus ----

/// Every page template the generators emit, one seed apiece.
fn pagegen_corpus() -> Vec<(String, String)> {
    let mut out = Vec::new();
    let backlinks = vec![
        "peer1.example.net".to_owned(),
        "peer2.example.org".to_owned(),
    ];
    let dctx = doorway::DoorwayCtx {
        domain: "hacked-blog.com",
        term: "cheap louis vuitton",
        brand: "Louis Vuitton",
        backlinks: &backlinks,
        seed: 11,
    };
    out.push(("doorway/seo".into(), doorway::seo_page(&dctx)));
    out.push((
        "doorway/js-redirect".into(),
        doorway::seo_page_with_js_redirect(&dctx, "http://store.example.com/"),
    ));
    for level in 0..=3u8 {
        out.push((
            format!("doorway/iframe-obf{level}"),
            doorway::iframe_page(&dctx, "http://store.example.com/", level),
        ));
    }
    out.push(("doorway/original".into(), doorway::original_content(&dctx)));

    let template = storefront::StoreTemplate::for_campaign("coco vip bags", 5);
    let sctx = storefront::StoreCtx {
        domain: "cocovipbags.com",
        store_name: "coco vip bags",
        template: &template,
        brands: &["Louis Vuitton", "Gucci"],
        locale: "us",
        merchant_id: "M-1031",
        seed: 17,
    };
    out.push(("store/home".into(), storefront::home_page(&sctx)));
    out.push(("store/product".into(), storefront::product_page(&sctx, 2)));
    out.push((
        "store/checkout".into(),
        storefront::checkout_page(&sctx, 9001),
    ));
    out.push((
        "store/checkout-unavailable".into(),
        storefront::checkout_unavailable_page(&sctx, 9001),
    ));

    let lctx = legit::LegitCtx {
        domain: "forum.example.org",
        theme: legit::LegitTheme::Forum,
        brand: "Louis Vuitton",
        seed: 23,
    };
    out.push(("legit/forum".into(), legit::page(&lctx)));

    let seized = vec!["cocovipbags.com".to_owned(), "bestbags.net".to_owned()];
    let nctx = notice::NoticeCtx {
        domain: "cocovipbags.com",
        firm: "BrandGuard LLP",
        case_id: "14-cv-02317",
        brand: "Louis Vuitton",
        seized_domains: &seized,
    };
    out.push(("notice/seizure".into(), notice::page(&nctx)));

    let report = awstats::TrafficReport {
        period: "Jul 2014".into(),
        unique_visitors: 1200,
        visits: 1900,
        pages: 5400,
        hits: 21_000,
        referrers: vec![
            ("www.google.com".into(), 700),
            ("hacked-blog.com".into(), 300),
        ],
        direct_visits: 250,
        daily: vec![
            ("2014-07-01".into(), 60, 170),
            ("2014-07-02".into(), 65, 180),
        ],
    };
    out.push((
        "awstats/report".into(),
        awstats::page("hacked-blog.com", &report),
    ));
    out
}

#[test]
fn pagegen_corpus_renders_identically() {
    let visitors = [
        (
            UserAgent::Browser,
            Some("http://www.google.com/search?q=bags"),
        ),
        (UserAgent::Browser, None),
        (UserAgent::GoogleBot, None),
    ];
    for (name, html) in pagegen_corpus() {
        for (ua, referrer) in visitors {
            let tw_cache = JsCache::new();
            let vm_cache = JsCache::new();
            let url = "http://site.example.com/page";
            let tw = render_with(&html, url, ua, referrer, JsEngine::TreeWalk, &tw_cache);
            let vm = render_with(&html, url, ua, referrer, JsEngine::Vm, &vm_cache);
            assert_eq!(
                tw.doc, vm.doc,
                "DOM diverged: {name} ({ua:?}, {referrer:?})"
            );
            assert_eq!(
                tw.js_redirect, vm.js_redirect,
                "redirect diverged: {name} ({ua:?}, {referrer:?})"
            );
            assert_eq!(
                tw.script_errors, vm.script_errors,
                "error count diverged: {name} ({ua:?}, {referrer:?})"
            );
            assert_eq!(
                tw.effects, vm.effects,
                "effects diverged: {name} ({ua:?}, {referrer:?})"
            );
            // The treewalker never touches a compile cache.
            assert_eq!(tw_cache.stats(), (0, 0));
        }
    }
}

// ----------------------------------------------------- compile caching ----

#[test]
fn same_template_compiles_once() {
    let cache = JsCache::new();
    let html = pagegen_corpus()
        .into_iter()
        .find(|(name, _)| name == "doorway/iframe-obf1")
        .map(|(_, html)| html)
        .unwrap();
    let r1 = render_with(
        &html,
        "http://a.com/",
        UserAgent::Browser,
        None,
        JsEngine::Vm,
        &cache,
    );
    let (compiles_first, hits_first) = cache.stats();
    assert!(compiles_first > 0, "rendering a JS page must compile");
    assert_eq!(hits_first, 0, "first render cannot hit the cache");

    // Re-render the *same template* many times: zero new compiles.
    for _ in 0..10 {
        let r = render_with(
            &html,
            "http://a.com/",
            UserAgent::Browser,
            None,
            JsEngine::Vm,
            &cache,
        );
        assert_eq!(r.doc, r1.doc);
    }
    let (compiles_after, hits_after) = cache.stats();
    assert_eq!(
        compiles_after, compiles_first,
        "identical template re-compiled"
    );
    assert_eq!(
        hits_after,
        hits_first + 10 * compiles_first,
        "each re-render should hit once per script compile of the first"
    );
}

#[test]
fn mutated_content_invalidates() {
    let cache = JsCache::new();
    let src_a = "document.write('A');";
    let src_b = "document.write('B');";
    let mut env = PageEnv::default();
    run_script_with(src_a, &mut env, JsEngine::Vm, &cache).unwrap();
    run_script_with(src_b, &mut env, JsEngine::Vm, &cache).unwrap();
    run_script_with(src_a, &mut env, JsEngine::Vm, &cache).unwrap();
    assert_eq!(env.effects.written_html, "ABA");
    let (compiles, hits) = cache.stats();
    assert_eq!(compiles, 2, "two distinct sources, two compiles");
    assert_eq!(hits, 1, "the repeat of src_a hits");
}

#[test]
fn parse_failures_are_cached_too() {
    let cache = JsCache::new();
    let bad = "var = ((;";
    let mut env = PageEnv::default();
    for _ in 0..3 {
        let e = run_script_with(bad, &mut env, JsEngine::Vm, &cache).unwrap_err();
        assert!(matches!(e, ss_web::js::JsError::Syntax(_)));
    }
    let (compiles, hits) = cache.stats();
    assert_eq!(
        compiles, 1,
        "a parse failure is compiled (to an error) once"
    );
    assert_eq!(hits, 2);
}

#[test]
fn eval_chunks_cache_across_renders() {
    // Level-3 obfuscation evals an identical payload string every render:
    // the eval-mode chunk must cache exactly like a top-level one.
    let cache = JsCache::new();
    let html = pagegen_corpus()
        .into_iter()
        .find(|(name, _)| name == "doorway/iframe-obf3")
        .map(|(_, html)| html)
        .unwrap();
    for _ in 0..3 {
        let r = render_with(
            &html,
            "http://a.com/",
            UserAgent::Browser,
            None,
            JsEngine::Vm,
            &cache,
        );
        assert_eq!(r.iframes().len(), 1, "obf3 payload must attach its iframe");
    }
    let (compiles, hits) = cache.stats();
    assert!(compiles >= 2, "main chunk + eval chunk");
    let (c2, h2) = {
        let r = render_with(
            &html,
            "http://a.com/",
            UserAgent::Browser,
            None,
            JsEngine::Vm,
            &cache,
        );
        assert_eq!(r.iframes().len(), 1);
        cache.stats()
    };
    assert_eq!(c2, compiles, "steady state: no new compiles");
    assert!(h2 > hits, "steady state renders are pure cache hits");
}

/// Cache stats must be deterministic for a fixed workload regardless of
/// interleaving — the crawler folds them into pinned metrics.
#[test]
fn cache_stats_deterministic_across_threads() {
    let corpus: Vec<(String, String)> = pagegen_corpus();
    let run_once = |threads: usize| -> (u64, u64) {
        let cache = JsCache::new();
        std::thread::scope(|s| {
            for t in 0..threads {
                let cache = &cache;
                let corpus = &corpus;
                s.spawn(move || {
                    for (i, (_, html)) in corpus.iter().enumerate() {
                        if i % threads == t {
                            for _ in 0..3 {
                                render_with(
                                    html,
                                    "http://a.com/",
                                    UserAgent::Browser,
                                    None,
                                    JsEngine::Vm,
                                    cache,
                                );
                            }
                        }
                    }
                });
            }
        });
        cache.stats()
    };
    let single = run_once(1);
    assert_eq!(single, run_once(2), "2-thread stats differ from 1-thread");
    assert_eq!(single, run_once(8), "8-thread stats differ from 1-thread");
}

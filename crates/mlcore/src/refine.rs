//! The §4.2.3 model-refinement loop: "using the manually verified
//! predictions to expand the set of labeled Web pages, retraining the
//! classifier on this expanded set, and repeating this process in rounds."
//!
//! The "domain expert" is an [`Oracle`]: the pipeline asks it to validate
//! the classifier's most confident predictions per class (cheapest to
//! check first, as the paper notes), adds confirmations to the labeled
//! pool, and retrains. In the reproduction the oracle is backed by
//! simulator ground truth with a configurable error rate, standing in for
//! the human analysts.

use crate::logreg::{MulticlassModel, TrainConfig};
use crate::sparse::SparseVec;

/// The expert who can (imperfectly, slowly, expensively) label a sample.
pub trait Oracle {
    /// Returns the expert's class judgement for sample `idx` (an index
    /// into the unlabeled pool), or `None` when the expert cannot tell.
    fn label(&mut self, idx: usize) -> Option<usize>;
}

/// Outcome of a refinement run.
#[derive(Debug)]
pub struct RefineResult {
    /// The final model.
    pub model: MulticlassModel,
    /// Labeled training set after all rounds: `(pool_index, class)`.
    pub labeled: Vec<(usize, usize)>,
    /// Oracle consultations performed.
    pub oracle_queries: usize,
    /// Per-round counts of newly confirmed samples.
    pub confirmed_per_round: Vec<usize>,
}

/// Runs the iterative loop.
///
/// * `pool` — feature vectors of the whole corpus;
/// * `seed_labels` — the initial manually labeled subset
///   (`(pool_index, class)`), the paper's 491 pages;
/// * `per_class_per_round` — how many top-confidence predictions per class
///   the expert checks each round;
/// * `rounds` — how many label→retrain rounds to run.
#[allow(clippy::too_many_arguments)]
pub fn refine(
    pool: &[SparseVec],
    seed_labels: &[(usize, usize)],
    class_names: &[String],
    dim: usize,
    cfg: &TrainConfig,
    oracle: &mut impl Oracle,
    per_class_per_round: usize,
    rounds: usize,
) -> RefineResult {
    let mut labeled: Vec<(usize, usize)> = seed_labels.to_vec();
    let mut in_labeled: Vec<bool> = vec![false; pool.len()];
    for (i, _) in &labeled {
        in_labeled[*i] = true;
    }
    let mut oracle_queries = 0usize;
    let mut confirmed_per_round = Vec::with_capacity(rounds);
    let mut model = train_on(pool, &labeled, class_names, dim, cfg);

    for _ in 0..rounds {
        // Rank unlabeled samples by confidence within each predicted class.
        let mut per_class: Vec<Vec<(f32, usize)>> = vec![Vec::new(); class_names.len()];
        for (i, x) in pool.iter().enumerate() {
            if in_labeled[i] {
                continue;
            }
            if let Some((c, p)) = model.predict(x) {
                per_class[c].push((p, i));
            }
        }
        let mut confirmed = 0usize;
        for candidates in &mut per_class {
            candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            for &(_, i) in candidates.iter().take(per_class_per_round) {
                oracle_queries += 1;
                if let Some(true_class) = oracle.label(i) {
                    labeled.push((i, true_class));
                    in_labeled[i] = true;
                    confirmed += 1;
                }
            }
        }
        confirmed_per_round.push(confirmed);
        if confirmed == 0 {
            break; // converged: nothing new to fold in
        }
        model = train_on(pool, &labeled, class_names, dim, cfg);
    }

    RefineResult {
        model,
        labeled,
        oracle_queries,
        confirmed_per_round,
    }
}

fn train_on(
    pool: &[SparseVec],
    labeled: &[(usize, usize)],
    class_names: &[String],
    dim: usize,
    cfg: &TrainConfig,
) -> MulticlassModel {
    let xs: Vec<SparseVec> = labeled.iter().map(|(i, _)| pool[*i].clone()).collect();
    let ys: Vec<usize> = labeled.iter().map(|(_, c)| *c).collect();
    MulticlassModel::train(&xs, &ys, class_names.to_vec(), dim, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ground truth oracle with no error.
    struct TruthOracle {
        truth: Vec<usize>,
    }
    impl Oracle for TruthOracle {
        fn label(&mut self, idx: usize) -> Option<usize> {
            Some(self.truth[idx])
        }
    }

    fn toy_pool(n_per: usize, classes: usize) -> (Vec<SparseVec>, Vec<usize>, usize) {
        let mut xs = Vec::new();
        let mut truth = Vec::new();
        for c in 0..classes {
            for k in 0..n_per {
                let pairs = vec![(c as u32, 1.0f32), ((classes + (k % 4)) as u32, 0.5)];
                xs.push(SparseVec::from_pairs(pairs).l2_normalized());
                truth.push(c);
            }
        }
        (xs, truth, classes + 4)
    }

    #[test]
    fn refinement_grows_the_labeled_set_and_stays_accurate() {
        let (pool, truth, dim) = toy_pool(20, 3);
        // Seed: two labeled examples per class.
        let mut seed = Vec::new();
        for c in 0..3 {
            let mut found = 0;
            for (i, t) in truth.iter().enumerate() {
                if *t == c && found < 2 {
                    seed.push((i, c));
                    found += 1;
                }
            }
        }
        let names: Vec<String> = (0..3).map(|c| format!("C{c}")).collect();
        let mut oracle = TruthOracle {
            truth: truth.clone(),
        };
        let r = refine(
            &pool,
            &seed,
            &names,
            dim,
            &TrainConfig::default(),
            &mut oracle,
            4,
            3,
        );
        assert!(r.labeled.len() > seed.len(), "labeled set did not grow");
        assert!(r.oracle_queries >= r.labeled.len() - seed.len());
        // Final model classifies the pool near-perfectly.
        let correct = pool
            .iter()
            .zip(&truth)
            .filter(|(x, &t)| r.model.predict_forced(x) == t)
            .count();
        assert!(correct as f64 / pool.len() as f64 > 0.95);
    }

    #[test]
    fn loop_terminates_when_oracle_finds_nothing() {
        struct MuteOracle;
        impl Oracle for MuteOracle {
            fn label(&mut self, _idx: usize) -> Option<usize> {
                None
            }
        }
        let (pool, truth, dim) = toy_pool(10, 2);
        let seed: Vec<(usize, usize)> = vec![
            (0, truth[0]),
            (10, truth[10]),
            (1, truth[1]),
            (11, truth[11]),
        ];
        let names: Vec<String> = (0..2).map(|c| format!("C{c}")).collect();
        let r = refine(
            &pool,
            &seed,
            &names,
            dim,
            &TrainConfig::default(),
            &mut MuteOracle,
            3,
            5,
        );
        assert_eq!(r.labeled.len(), seed.len());
        assert_eq!(
            r.confirmed_per_round,
            vec![0],
            "loop should stop after one dry round"
        );
    }
}

//! # ss-ml
//!
//! The machine-learning substrate behind campaign identification (§4.2),
//! built from scratch (the paper used LIBLINEAR; we depend on nothing):
//!
//! * [`sparse`] — sparse feature vectors and a term dictionary;
//! * [`features`] — the bag-of-words extractor over HTML
//!   tag-attribute-value triplets (§4.2.1, following Der et al.);
//! * [`logreg`] — L1-regularized logistic regression trained by proximal
//!   gradient descent, wrapped one-vs-rest for 52-way classification
//!   (§4.2.2), with per-class probability outputs and an "unknown"
//!   abstention threshold (the paper attributes 58% of PSRs, not all);
//! * [`eval`] — stratified k-fold cross-validation, accuracy, confusion
//!   and top-weighted-feature introspection (the L1 models are
//!   "highly interpretable": a handful of features per campaign);
//! * [`refine`] — the §4.2.3 human-machine loop: train on a labeled seed,
//!   validate the classifier's most confident predictions with an expert
//!   oracle, fold confirmations back in, retrain, repeat.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod features;
pub mod logreg;
pub mod refine;
pub mod sparse;

pub use features::{extract_features, Dictionary};
pub use logreg::{BinaryLogReg, MulticlassModel, TrainConfig};
pub use sparse::SparseVec;

//! L1-regularized logistic regression, binary and one-vs-rest multiclass.
//!
//! The trainer is proximal (sub)gradient descent: a full-batch logistic
//! gradient step followed by soft-thresholding, which drives most weights
//! exactly to zero — the sparsity §4.2.2 leans on ("the predictions of SEO
//! campaigns are derived from only a handful of HTML features").

use crate::sparse::SparseVec;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// L1 penalty weight.
    pub lambda: f32,
    /// Learning rate.
    pub lr: f32,
    /// Full-batch iterations.
    pub epochs: usize,
    /// Abstention threshold for multiclass prediction: the winning class's
    /// OvR probability must reach it, or the model answers "unknown".
    /// One-vs-rest sigmoids are conservative when classes have few
    /// positives against many negatives, so this sits well below 0.5.
    pub min_confidence: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lambda: 1e-4,
            lr: 4.0,
            epochs: 300,
            min_confidence: 0.2,
        }
    }
}

fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// A trained binary model.
#[derive(Debug, Clone)]
pub struct BinaryLogReg {
    /// Dense weights over the dictionary.
    pub weights: Vec<f32>,
    /// Intercept.
    pub bias: f32,
}

impl BinaryLogReg {
    /// Trains on `(x, y)` pairs with `y ∈ {0, 1}`, `dim` = dictionary size.
    pub fn train(xs: &[SparseVec], ys: &[f32], dim: usize, cfg: &TrainConfig) -> Self {
        assert_eq!(xs.len(), ys.len(), "features and labels must align");
        let n = xs.len().max(1) as f32;
        let mut w = vec![0.0f32; dim];
        let mut b = 0.0f32;
        let mut grad = vec![0.0f32; dim];
        for _ in 0..cfg.epochs {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut gb = 0.0f32;
            for (x, &y) in xs.iter().zip(ys) {
                let p = sigmoid(x.dot(&w) + b);
                let err = p - y;
                x.add_scaled_into(err, &mut grad);
                gb += err;
            }
            let step = cfg.lr / n;
            for (wi, gi) in w.iter_mut().zip(&grad) {
                *wi -= step * gi;
                // Proximal step: soft-threshold toward zero (L1).
                let t = cfg.lr * cfg.lambda;
                *wi = if *wi > t {
                    *wi - t
                } else if *wi < -t {
                    *wi + t
                } else {
                    0.0
                };
            }
            b -= step * gb;
        }
        BinaryLogReg {
            weights: w,
            bias: b,
        }
    }

    /// Probability that `x` is positive.
    pub fn prob(&self, x: &SparseVec) -> f32 {
        sigmoid(x.dot(&self.weights) + self.bias)
    }

    /// Number of non-zero weights (model sparsity).
    pub fn nnz(&self) -> usize {
        self.weights.iter().filter(|w| **w != 0.0).count()
    }

    /// Indices of the `k` most positive weights (most characteristic
    /// features of the class).
    pub fn top_features(&self, k: usize) -> Vec<(u32, f32)> {
        let mut idx: Vec<(u32, f32)> = self
            .weights
            .iter()
            .enumerate()
            .filter(|(_, w)| **w > 0.0)
            .map(|(i, w)| (i as u32, *w))
            .collect();
        idx.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        idx.truncate(k);
        idx
    }
}

/// A one-vs-rest multiclass model with abstention.
#[derive(Debug, Clone)]
pub struct MulticlassModel {
    /// Per-class binary models, indexed by class id.
    pub classes: Vec<BinaryLogReg>,
    /// Class display names (same indexing).
    pub class_names: Vec<String>,
    /// Minimum winning probability; below it the model abstains
    /// ("unknown" — the paper attributes only 58% of PSRs).
    pub min_confidence: f32,
}

impl MulticlassModel {
    /// Trains one binary model per class. `labels[i]` is the class index
    /// of sample `i`.
    pub fn train(
        xs: &[SparseVec],
        labels: &[usize],
        class_names: Vec<String>,
        dim: usize,
        cfg: &TrainConfig,
    ) -> Self {
        assert_eq!(xs.len(), labels.len());
        let mut classes = Vec::with_capacity(class_names.len());
        for c in 0..class_names.len() {
            let ys: Vec<f32> = labels
                .iter()
                .map(|&l| if l == c { 1.0 } else { 0.0 })
                .collect();
            classes.push(BinaryLogReg::train(xs, &ys, dim, cfg));
        }
        MulticlassModel {
            classes,
            class_names,
            min_confidence: cfg.min_confidence,
        }
    }

    /// Per-class probabilities (independent OvR sigmoids).
    pub fn probs(&self, x: &SparseVec) -> Vec<f32> {
        self.classes.iter().map(|m| m.prob(x)).collect()
    }

    /// Predicts `(class, confidence)`; `None` = abstain/unknown.
    pub fn predict(&self, x: &SparseVec) -> Option<(usize, f32)> {
        let probs = self.probs(x);
        let (best, p) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))?;
        (*p >= self.min_confidence).then_some((best, *p))
    }

    /// Forced (no-abstention) prediction, for accuracy measurement.
    pub fn predict_forced(&self, x: &SparseVec) -> usize {
        self.probs(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A separable toy problem: class decided by which indicator feature
    /// is present, plus shared noise features.
    fn toy(n_per: usize, classes: usize) -> (Vec<SparseVec>, Vec<usize>, usize) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let noise_dims = 10u32;
        for c in 0..classes {
            for k in 0..n_per {
                let mut pairs = vec![(noise_dims + c as u32, 1.0f32)];
                pairs.push((((k * 7 + c) % noise_dims as usize) as u32, 1.0));
                pairs.push((((k * 3 + 1) % noise_dims as usize) as u32, 1.0));
                xs.push(SparseVec::from_pairs(pairs).l2_normalized());
                ys.push(c);
            }
        }
        (xs, ys, noise_dims as usize + classes)
    }

    #[test]
    fn binary_separates_toy_data() {
        let (xs, ys, dim) = toy(20, 2);
        let labels: Vec<f32> = ys.iter().map(|&y| y as f32).collect();
        let m = BinaryLogReg::train(&xs, &labels, dim, &TrainConfig::default());
        let correct = xs
            .iter()
            .zip(&labels)
            .filter(|(x, &y)| (m.prob(x) > 0.5) == (y > 0.5))
            .count();
        assert!(
            correct as f64 / xs.len() as f64 > 0.95,
            "{correct}/{}",
            xs.len()
        );
    }

    #[test]
    fn l1_produces_sparse_models() {
        let (xs, ys, dim) = toy(20, 2);
        let labels: Vec<f32> = ys.iter().map(|&y| y as f32).collect();
        let dense_cfg = TrainConfig {
            lambda: 0.0,
            ..TrainConfig::default()
        };
        let sparse_cfg = TrainConfig {
            lambda: 3e-3,
            ..TrainConfig::default()
        };
        let dense = BinaryLogReg::train(&xs, &labels, dim, &dense_cfg);
        let sparse = BinaryLogReg::train(&xs, &labels, dim, &sparse_cfg);
        assert!(
            sparse.nnz() < dense.nnz(),
            "{} !< {}",
            sparse.nnz(),
            dense.nnz()
        );
        assert!(sparse.nnz() > 0);
    }

    #[test]
    fn top_features_identify_the_indicator() {
        let (xs, ys, dim) = toy(25, 3);
        let labels: Vec<f32> = ys.iter().map(|&y| if y == 1 { 1.0 } else { 0.0 }).collect();
        let m = BinaryLogReg::train(&xs, &labels, dim, &TrainConfig::default());
        let top = m.top_features(1);
        assert_eq!(
            top[0].0, 11,
            "indicator feature for class 1 sits at index 11"
        );
    }

    #[test]
    fn multiclass_learns_and_abstains() {
        let (xs, ys, dim) = toy(15, 4);
        let names = (0..4).map(|c| format!("C{c}")).collect();
        let m = MulticlassModel::train(&xs, &ys, names, dim, &TrainConfig::default());
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| m.predict_forced(x) == y)
            .count();
        assert!(
            correct as f64 / xs.len() as f64 > 0.9,
            "{correct}/{}",
            xs.len()
        );
        // A featureless vector must be abstained on.
        let blank = SparseVec::default();
        assert_eq!(m.predict(&blank), None);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
    }
}

//! Sparse vectors and the feature dictionary's numeric side.

/// A sparse feature vector: sorted `(index, value)` pairs with unique
/// indices. All training and prediction math runs on these.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVec {
    entries: Vec<(u32, f32)>,
}

impl SparseVec {
    /// Builds from unsorted `(index, value)` pairs, summing duplicates and
    /// dropping zeros.
    pub fn from_pairs(mut pairs: Vec<(u32, f32)>) -> Self {
        pairs.sort_by_key(|(i, _)| *i);
        let mut entries: Vec<(u32, f32)> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            match entries.last_mut() {
                Some((j, acc)) if *j == i => *acc += v,
                _ => entries.push((i, v)),
            }
        }
        entries.retain(|(_, v)| *v != 0.0);
        SparseVec { entries }
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[(u32, f32)] {
        &self.entries
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is all-zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Dot product against a dense weight vector (indices beyond the dense
    /// length contribute nothing — lets models score unseen features).
    pub fn dot(&self, dense: &[f32]) -> f32 {
        self.entries
            .iter()
            .filter_map(|(i, v)| dense.get(*i as usize).map(|w| w * v))
            .sum()
    }

    /// Adds `scale * self` into a dense accumulator (must be long enough).
    pub fn add_scaled_into(&self, scale: f32, dense: &mut [f32]) {
        for (i, v) in &self.entries {
            if let Some(slot) = dense.get_mut(*i as usize) {
                *slot += scale * v;
            }
        }
    }

    /// Euclidean norm.
    pub fn l2_norm(&self) -> f32 {
        self.entries.iter().map(|(_, v)| v * v).sum::<f32>().sqrt()
    }

    /// Returns a copy scaled to unit L2 norm (zero vectors unchanged).
    pub fn l2_normalized(&self) -> SparseVec {
        let n = self.l2_norm();
        if n == 0.0 {
            return self.clone();
        }
        SparseVec {
            entries: self.entries.iter().map(|(i, v)| (*i, v / n)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_pairs_sorts_merges_and_drops_zeros() {
        let v = SparseVec::from_pairs(vec![(5, 1.0), (2, 2.0), (5, 3.0), (7, 0.0)]);
        assert_eq!(v.entries(), &[(2, 2.0), (5, 4.0)]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn dot_and_add_scaled() {
        let v = SparseVec::from_pairs(vec![(0, 1.0), (3, 2.0)]);
        let dense = [1.0, 0.0, 0.0, 4.0];
        assert_eq!(v.dot(&dense), 9.0);
        let mut acc = vec![0.0; 4];
        v.add_scaled_into(0.5, &mut acc);
        assert_eq!(acc, vec![0.5, 0.0, 0.0, 1.0]);
        // Out-of-range indices are ignored in both directions.
        let long = SparseVec::from_pairs(vec![(10, 5.0)]);
        assert_eq!(long.dot(&dense), 0.0);
        let mut short = vec![0.0; 2];
        long.add_scaled_into(1.0, &mut short);
        assert_eq!(short, vec![0.0, 0.0]);
    }

    #[test]
    fn normalization() {
        let v = SparseVec::from_pairs(vec![(0, 3.0), (1, 4.0)]);
        assert_eq!(v.l2_norm(), 5.0);
        let n = v.l2_normalized();
        assert!((n.l2_norm() - 1.0).abs() < 1e-6);
        let z = SparseVec::default();
        assert_eq!(z.l2_normalized(), z);
    }

    proptest! {
        #[test]
        fn normalized_norm_is_unit(pairs in proptest::collection::vec((0u32..100, -10.0f32..10.0), 1..20)) {
            let v = SparseVec::from_pairs(pairs);
            if !v.is_empty() {
                let n = v.l2_normalized().l2_norm();
                prop_assert!((n - 1.0).abs() < 1e-4);
            }
        }

        #[test]
        fn dot_is_linear_in_scale(pairs in proptest::collection::vec((0u32..20, -5.0f32..5.0), 1..10), k in -3.0f32..3.0) {
            let v = SparseVec::from_pairs(pairs);
            let dense: Vec<f32> = (0..20).map(|i| i as f32 * 0.1).collect();
            let mut acc = vec![0.0f32; 20];
            v.add_scaled_into(k, &mut acc);
            let via_acc: f32 = acc.iter().zip(&dense).map(|(a, d)| a * d).sum();
            prop_assert!((via_acc - k * v.dot(&dense)).abs() < 1e-3);
        }
    }
}

//! Model evaluation: stratified k-fold cross-validation, accuracy, and
//! confusion counting (§4.2.2 reports 86.8% 10-fold CV accuracy over 52
//! campaigns against a 1.9% chance baseline).

use rand::seq::SliceRandom;
use ss_types::rng::sub_rng;

use crate::logreg::{MulticlassModel, TrainConfig};
use crate::sparse::SparseVec;

/// Stratified fold assignment: samples of each class are spread round-robin
/// across folds so every fold sees every (sufficiently large) class.
pub fn stratified_folds(labels: &[usize], k: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 2, "need at least two folds");
    let mut rng = sub_rng(seed, "folds");
    let n_classes = labels.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut fold = vec![0usize; labels.len()];
    for c in 0..n_classes {
        let mut members: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == c).collect();
        members.shuffle(&mut rng);
        // Offset by class so under-sized classes (fewer members than folds)
        // spread across folds instead of piling into fold 0.
        for (j, i) in members.into_iter().enumerate() {
            fold[i] = (j + c) % k;
        }
    }
    fold
}

/// Cross-validation result.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// Held-out accuracy over all folds.
    pub accuracy: f64,
    /// Per-fold accuracies.
    pub fold_accuracy: Vec<f64>,
    /// Confusion counts `(true_class, predicted_class, count)`, only
    /// non-zero off-diagonal cells.
    pub confusions: Vec<(usize, usize, usize)>,
    /// Chance baseline (1 / #classes).
    pub chance: f64,
}

/// Runs stratified k-fold cross-validation of the one-vs-rest model.
pub fn cross_validate(
    xs: &[SparseVec],
    labels: &[usize],
    class_names: &[String],
    dim: usize,
    k: usize,
    cfg: &TrainConfig,
    seed: u64,
) -> CvResult {
    assert_eq!(xs.len(), labels.len());
    let folds = stratified_folds(labels, k, seed);
    let mut correct = 0usize;
    let mut total = 0usize;
    let mut fold_accuracy = Vec::with_capacity(k);
    let mut confusion = std::collections::HashMap::<(usize, usize), usize>::new();

    for f in 0..k {
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut test_idx = Vec::new();
        for i in 0..xs.len() {
            if folds[i] == f {
                test_idx.push(i);
            } else {
                train_x.push(xs[i].clone());
                train_y.push(labels[i]);
            }
        }
        if test_idx.is_empty() || train_x.is_empty() {
            continue;
        }
        let model = MulticlassModel::train(&train_x, &train_y, class_names.to_vec(), dim, cfg);
        let mut fold_correct = 0usize;
        for &i in &test_idx {
            let pred = model.predict_forced(&xs[i]);
            if pred == labels[i] {
                fold_correct += 1;
            } else {
                *confusion.entry((labels[i], pred)).or_insert(0) += 1;
            }
        }
        correct += fold_correct;
        total += test_idx.len();
        fold_accuracy.push(fold_correct as f64 / test_idx.len() as f64);
    }

    let mut confusions: Vec<(usize, usize, usize)> =
        confusion.into_iter().map(|((t, p), c)| (t, p, c)).collect();
    confusions.sort_by_key(|c| std::cmp::Reverse(c.2));
    CvResult {
        accuracy: if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        },
        fold_accuracy,
        confusions,
        chance: 1.0 / class_names.len().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_per: usize, classes: usize) -> (Vec<SparseVec>, Vec<usize>, usize) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for c in 0..classes {
            for k in 0..n_per {
                let pairs = vec![(c as u32, 1.0f32), ((classes + (k % 5)) as u32, 0.6)];
                xs.push(SparseVec::from_pairs(pairs).l2_normalized());
                ys.push(c);
            }
        }
        (xs, ys, classes + 5)
    }

    #[test]
    fn folds_are_stratified_and_complete() {
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2];
        let folds = stratified_folds(&labels, 4, 1);
        assert_eq!(folds.len(), labels.len());
        for f in 0..4 {
            let members: Vec<usize> = (0..labels.len()).filter(|&i| folds[i] == f).collect();
            assert_eq!(members.len(), 3, "fold {f} unbalanced");
            // One member per class in each fold (classes offset-rotate, so
            // each fold still sees all three classes here).
            let mut classes: Vec<usize> = members.iter().map(|&i| labels[i]).collect();
            classes.sort();
            assert_eq!(classes, vec![0, 1, 2]);
        }
        // Singleton classes must not all share fold 0.
        let singles = vec![0usize, 1, 2, 3];
        let sf = stratified_folds(&singles, 4, 1);
        let distinct: std::collections::HashSet<usize> = sf.iter().copied().collect();
        assert!(distinct.len() > 1, "singletons piled into one fold: {sf:?}");
    }

    #[test]
    fn cv_scores_separable_data_highly() {
        let (xs, ys, dim) = toy(12, 5);
        let names: Vec<String> = (0..5).map(|c| format!("C{c}")).collect();
        let r = cross_validate(&xs, &ys, &names, dim, 4, &TrainConfig::default(), 7);
        assert!(r.accuracy > 0.9, "accuracy {}", r.accuracy);
        assert_eq!(r.fold_accuracy.len(), 4);
        assert!((r.chance - 0.2).abs() < 1e-12);
    }

    #[test]
    fn cv_detects_unlearnable_labels() {
        // Random labels over identical features: accuracy ≈ chance.
        let xs: Vec<SparseVec> = (0..60)
            .map(|_| SparseVec::from_pairs(vec![(0, 1.0)]))
            .collect();
        let ys: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let names: Vec<String> = (0..3).map(|c| format!("C{c}")).collect();
        let r = cross_validate(&xs, &ys, &names, 1, 3, &TrainConfig::default(), 7);
        assert!(r.accuracy < 0.6, "accuracy {} on noise", r.accuracy);
    }

    #[test]
    fn confusions_are_recorded_for_errors() {
        let (mut xs, mut ys, dim) = toy(10, 3);
        // Poison a few labels to force confusions.
        for i in 0..4 {
            ys[i] = (ys[i] + 1) % 3;
            let _ = &xs[i];
        }
        let names: Vec<String> = (0..3).map(|c| format!("C{c}")).collect();
        let r = cross_validate(&xs, &ys, &names, dim, 3, &TrainConfig::default(), 7);
        assert!(!r.confusions.is_empty());
        xs.clear();
    }
}

//! Bag-of-words feature extraction over HTML tag-attribute-value triplets.
//!
//! §4.2.1: each page becomes "a sparse, high-dimensional vector of feature
//! counts" from "a custom bag-of-words feature extractor based on
//! tag-attribute-value triplets". For every element we emit three token
//! classes — the tag, each `tag.attr` pair, and each `tag.attr=value`
//! triplet — plus visible-text word tokens. Counts are log-damped and
//! L2-normalized so template structure (not page length) dominates.

use std::collections::HashMap;

use ss_web::Document;

use crate::sparse::SparseVec;

/// A grow-on-demand token dictionary shared across a corpus.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    by_token: HashMap<String, u32>,
    tokens: Vec<String>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a token (training mode).
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.by_token.get(token) {
            return id;
        }
        let id = self.tokens.len() as u32;
        self.tokens.push(token.to_owned());
        self.by_token.insert(token.to_owned(), id);
        id
    }

    /// Looks a token up without growing (prediction mode: unseen tokens
    /// are dropped, as LIBLINEAR does).
    pub fn get(&self, token: &str) -> Option<u32> {
        self.by_token.get(token).copied()
    }

    /// Token text for an id (for model introspection).
    pub fn token(&self, id: u32) -> &str {
        &self.tokens[id as usize]
    }

    /// Dictionary size.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Attribute values longer than this are hashed into a length bucket
/// rather than kept verbatim (keeps per-store noise like inline text out
/// of the vocabulary while preserving template-identity values).
const MAX_VALUE_LEN: usize = 40;

fn value_token(value: &str) -> String {
    if value.len() > MAX_VALUE_LEN {
        format!("len{}", value.len() / 16)
    } else {
        value.to_owned()
    }
}

/// Emits the raw token stream for a page.
pub fn tokens_of(html: &str) -> Vec<String> {
    let doc = Document::parse(html);
    let mut out = Vec::new();
    for el in doc.elements() {
        out.push(el.tag.clone());
        for (attr, value) in &el.attrs {
            out.push(format!("{}.{}", el.tag, attr));
            out.push(format!("{}.{}={}", el.tag, attr, value_token(value)));
        }
    }
    for word in doc.text_content().split_whitespace() {
        let w: String = word.chars().filter(|c| c.is_ascii_alphanumeric()).collect();
        if w.len() >= 3 {
            out.push(format!("w:{}", w.to_ascii_lowercase()));
        }
    }
    out
}

/// Extracts the feature vector for a page. With `grow`, unseen tokens are
/// added to the dictionary (training); without, they are dropped
/// (prediction).
pub fn extract_features(html: &str, dict: &mut Dictionary, grow: bool) -> SparseVec {
    let mut counts: HashMap<u32, f32> = HashMap::new();
    for tok in tokens_of(html) {
        let id = if grow {
            Some(dict.intern(&tok))
        } else {
            dict.get(&tok)
        };
        if let Some(id) = id {
            *counts.entry(id).or_insert(0.0) += 1.0;
        }
    }
    let pairs: Vec<(u32, f32)> = counts
        .into_iter()
        .map(|(i, c)| (i, (1.0 + c).ln()))
        .collect();
    SparseVec::from_pairs(pairs).l2_normalized()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_and_words_are_emitted() {
        let toks = tokens_of(r#"<div class="biglove-grid"><p>Cheap Bags</p></div>"#);
        assert!(toks.contains(&"div".to_owned()));
        assert!(toks.contains(&"div.class".to_owned()));
        assert!(toks.contains(&"div.class=biglove-grid".to_owned()));
        assert!(toks.contains(&"w:cheap".to_owned()));
        assert!(toks.contains(&"w:bags".to_owned()));
    }

    #[test]
    fn long_values_are_bucketed() {
        let long = "x".repeat(100);
        let toks = tokens_of(&format!(r#"<a href="{long}">z</a>"#));
        assert!(toks.iter().any(|t| t.starts_with("a.href=len")));
        assert!(!toks.iter().any(|t| t.contains(&long)));
    }

    #[test]
    fn growth_mode_controls_vocabulary() {
        let mut dict = Dictionary::new();
        let v1 = extract_features("<div class=\"a\">hello world</div>", &mut dict, true);
        assert!(!v1.is_empty());
        let size = dict.len();
        let v2 = extract_features("<span data-x=\"new\">fresh tokens</span>", &mut dict, false);
        assert_eq!(dict.len(), size, "prediction must not grow the dictionary");
        assert!(v2.nnz() <= v1.nnz());
    }

    #[test]
    fn vectors_are_normalized() {
        let mut dict = Dictionary::new();
        let v = extract_features("<p>a few words appear here</p>", &mut dict, true);
        assert!((v.l2_norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn same_template_different_noise_stays_close() {
        // Two stores of one campaign share structure; a store of another
        // campaign differs more. Cosine similarity must reflect that.
        let mut dict = Dictionary::new();
        let t = ss_web::pagegen::storefront::StoreTemplate::for_campaign("BIGLOVE", 1);
        let u = ss_web::pagegen::storefront::StoreTemplate::for_campaign("MOONKIS", 1);
        let page = |tpl, seed| {
            ss_web::pagegen::storefront::home_page(&ss_web::pagegen::storefront::StoreCtx {
                domain: "x.com",
                store_name: "x",
                template: tpl,
                brands: &["Chanel"],
                locale: "us",
                merchant_id: "m-1",
                seed,
            })
        };
        let a = extract_features(&page(&t, 1), &mut dict, true);
        let b = extract_features(&page(&t, 2), &mut dict, true);
        let c = extract_features(&page(&u, 3), &mut dict, true);
        let dense_b: Vec<f32> = {
            let mut d = vec![0.0; dict.len()];
            b.add_scaled_into(1.0, &mut d);
            d
        };
        let dense_c: Vec<f32> = {
            let mut d = vec![0.0; dict.len()];
            c.add_scaled_into(1.0, &mut d);
            d
        };
        let sim_same = a.dot(&dense_b);
        let sim_cross = a.dot(&dense_c);
        assert!(
            sim_same > sim_cross,
            "same-campaign similarity {sim_same} should beat cross-campaign {sim_cross}"
        );
    }
}

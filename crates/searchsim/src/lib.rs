//! # ss-search
//!
//! A search-engine simulator: the substrate both the SEO campaigns attack
//! and the measurement crawler queries.
//!
//! The paper crawls the daily top-100 Google results for 1,600 search terms
//! across 16 luxury verticals (§4.1). This crate supplies the pieces that
//! replaces:
//!
//! * [`engine`] — a document index with per-term postings and a daily
//!   ranking function combining base relevance, site quality, the SEO
//!   "juice" campaigns inject, penalization, and deterministic day-to-day
//!   jitter (producing realistic SERP churn), split into a mutable writer
//!   and immutable published [`EngineEpoch`] snapshots that readers query
//!   concurrently between commits (the query plane);
//! * penalization machinery on the engine: rank **demotion** and the
//!   root-only **"This site may be hacked" label** with its coverage gap
//!   (§5.2.1–5.2.2);
//! * [`suggest`] — a Google-Suggest-style completion service, used by the
//!   paper's second term-selection methodology (§4.1.1).
//!
//! The engine knows nothing about campaigns or ground truth: it ranks what
//! it is given. Policy (when to demote, what to label) lives with the world
//! simulation in `ss-eco`; mechanism lives here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod suggest;

pub use engine::{
    DocId, EngineEpoch, EngineOp, RankedHit, RankedSerp, SearchEngine, SearchResult, Serp,
};

//! The index, the ranking function, SERP generation, and penalization.

use std::collections::HashMap;

use ss_types::rng::{mix, unit_f64};
use ss_types::snapshot::{fnv1a64, Reader, Snapshot, SnapshotError, Writer};
use ss_types::{DomainId, SimDate, TermId, Url, VerticalId};

/// A document id, dense per engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub u32);

/// A monitored search term.
#[derive(Debug, Clone)]
pub struct TermRecord {
    /// The vertical this term belongs to.
    pub vertical: VerticalId,
    /// The query string, e.g. "cheap louis vuitton".
    pub text: String,
}

/// One indexed page, attached to exactly one term's posting list.
#[derive(Debug, Clone)]
pub struct Doc {
    /// The result URL.
    pub url: Url,
    /// Owning registered domain.
    pub domain: DomainId,
    /// The term whose postings this document sits in.
    pub term: TermId,
    /// Query-independent quality (reputation) in `[0, 1]`.
    pub quality: f64,
    /// Query-dependent relevance in `[0, 1]`.
    pub relevance: f64,
    /// When the page entered the index.
    pub first_indexed: SimDate,
}

/// One search result as the engine presents it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// 1-based rank.
    pub rank: u32,
    /// Result URL.
    pub url: Url,
    /// Owning domain.
    pub domain: DomainId,
    /// Whether the result carries the "This site may be hacked" label.
    /// Under the root-only policy (§5.2.2) this is set only on the result
    /// whose URL is the site root, even when the whole domain is flagged.
    pub hacked_label: bool,
}

/// A search-engine results page: the top-k results for one term on one day.
#[derive(Debug, Clone)]
pub struct Serp {
    /// The queried term.
    pub term: TermId,
    /// The day of the query.
    pub day: SimDate,
    /// Results in rank order.
    pub results: Vec<SearchResult>,
}

/// One ranking mutation, planned against a frozen engine and committed in
/// batch via [`SearchEngine::apply_batch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineOp {
    /// Set a domain's SEO juice to an absolute level.
    SetJuice {
        /// Target domain.
        domain: DomainId,
        /// New juice level.
        juice: f64,
    },
    /// Add a demotion penalty to a domain.
    Demote {
        /// Target domain.
        domain: DomainId,
        /// Penalty to add (score units).
        penalty: f64,
    },
    /// Mark a domain "hacked" as of `day` (first writer wins).
    LabelHacked {
        /// Target domain.
        domain: DomainId,
        /// Label day.
        day: SimDate,
    },
}

/// The engine.
///
/// Scoring model (per document, per day):
///
/// ```text
/// score = 0.45·relevance + 0.35·quality + juice(domain) − penalty(domain) + jitter(doc, day)
/// ```
///
/// `juice` is what black-hat SEO buys (backlink farms raising perceived
/// reputation); campaigns set it while actively SEOing and it decays when
/// they stop. `penalty` models demotion. `jitter` is a small deterministic
/// per-(doc, day) perturbation that makes rankings churn realistically.
#[derive(Debug)]
pub struct SearchEngine {
    terms: Vec<TermRecord>,
    docs: Vec<Doc>,
    postings: Vec<Vec<DocId>>,
    /// Per-domain SEO juice, indexed by `DomainId` (grown on demand).
    juice: Vec<f64>,
    /// Per-domain demotion penalty.
    penalty: Vec<f64>,
    /// Day the domain was labeled "hacked", if ever.
    hacked_since: HashMap<DomainId, SimDate>,
    /// Jitter amplitude (score units).
    jitter_amp: f64,
    seed: u64,
}

impl SearchEngine {
    /// Creates an empty engine. `jitter_amp` controls day-to-day SERP
    /// churn; 0.05 yields low single-digit percent daily domain churn with
    /// the default score weights.
    pub fn new(seed: u64, jitter_amp: f64) -> Self {
        SearchEngine {
            terms: Vec::new(),
            docs: Vec::new(),
            postings: Vec::new(),
            juice: Vec::new(),
            penalty: Vec::new(),
            hacked_since: HashMap::new(),
            jitter_amp,
            seed,
        }
    }

    /// Registers a monitored term and returns its id.
    pub fn add_term(&mut self, vertical: VerticalId, text: &str) -> TermId {
        let id = TermId::from_index(self.terms.len());
        self.terms.push(TermRecord {
            vertical,
            text: text.to_owned(),
        });
        self.postings.push(Vec::new());
        id
    }

    /// All registered terms.
    pub fn terms(&self) -> &[TermRecord] {
        &self.terms
    }

    /// Number of registered terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Indexes a page into a term's postings.
    pub fn index_page(
        &mut self,
        term: TermId,
        url: Url,
        domain: DomainId,
        quality: f64,
        relevance: f64,
        day: SimDate,
    ) -> DocId {
        let id = DocId(self.docs.len() as u32);
        self.docs.push(Doc {
            url,
            domain,
            term,
            quality,
            relevance,
            first_indexed: day,
        });
        self.postings[term.index()].push(id);
        self.ensure_domain(domain);
        id
    }

    /// Removes a page from the index (site cleaned or de-indexed).
    pub fn deindex_page(&mut self, doc: DocId) {
        let term = self.docs[doc.0 as usize].term;
        self.postings[term.index()].retain(|d| *d != doc);
    }

    fn ensure_domain(&mut self, domain: DomainId) {
        let need = domain.index() + 1;
        if self.juice.len() < need {
            self.juice.resize(need, 0.0);
            self.penalty.resize(need, 0.0);
        }
    }

    /// Sets the SEO juice for a domain (what a campaign's link farm buys).
    pub fn set_juice(&mut self, domain: DomainId, juice: f64) {
        self.ensure_domain(domain);
        self.juice[domain.index()] = juice;
    }

    /// Current juice for a domain.
    pub fn juice(&self, domain: DomainId) -> f64 {
        self.juice.get(domain.index()).copied().unwrap_or(0.0)
    }

    /// Applies (adds) a demotion penalty to a domain.
    pub fn demote(&mut self, domain: DomainId, penalty: f64) {
        self.ensure_domain(domain);
        self.penalty[domain.index()] += penalty;
    }

    /// Current penalty for a domain.
    pub fn penalty(&self, domain: DomainId) -> f64 {
        self.penalty.get(domain.index()).copied().unwrap_or(0.0)
    }

    /// Marks a domain "hacked" as of `day` (GSB-style label, §5.2.2).
    pub fn label_hacked(&mut self, domain: DomainId, day: SimDate) {
        self.hacked_since.entry(domain).or_insert(day);
    }

    /// Whether (and since when) a domain carries the hacked label.
    pub fn hacked_since(&self, domain: DomainId) -> Option<SimDate> {
        self.hacked_since.get(&domain).copied()
    }

    /// Applies an ordered batch of ranking mutations — the engine's half of
    /// the tick plane's plan/commit protocol. Planners compute [`EngineOp`]s
    /// against a frozen `&SearchEngine`; the world's reducer commits them
    /// here in plan order, so this is the only mutation entry point a tick
    /// needs (the granular setters remain for construction and tests).
    pub fn apply_batch(&mut self, ops: impl IntoIterator<Item = EngineOp>) {
        for op in ops {
            match op {
                EngineOp::SetJuice { domain, juice } => self.set_juice(domain, juice),
                EngineOp::Demote { domain, penalty } => self.demote(domain, penalty),
                EngineOp::LabelHacked { domain, day } => self.label_hacked(domain, day),
            }
        }
    }

    /// Deterministic per-(doc, day) jitter in `[-amp/2, amp/2]`. Uses the
    /// allocation-free numeric mixer — this runs per document per SERP.
    fn jitter(&self, doc: DocId, day: SimDate) -> f64 {
        let h = mix(self.seed, u64::from(doc.0), u64::from(day.day_index()));
        (unit_f64(h) - 0.5) * self.jitter_amp
    }

    /// Scores one document on one day.
    pub fn score(&self, doc: DocId, day: SimDate) -> f64 {
        let d = &self.docs[doc.0 as usize];
        0.45 * d.relevance + 0.35 * d.quality + self.juice(d.domain) - self.penalty(d.domain)
            + self.jitter(doc, day)
    }

    /// Produces the top-`k` SERP for `term` on `day`.
    pub fn serp(&self, term: TermId, day: SimDate, k: usize) -> Serp {
        let mut scored: Vec<(f64, DocId)> = self.postings[term.index()]
            .iter()
            .filter(|d| self.docs[d.0 as usize].first_indexed <= day)
            .map(|d| (self.score(*d, day), *d))
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let results = scored
            .into_iter()
            .take(k)
            .enumerate()
            .map(|(i, (_, d))| {
                let doc = &self.docs[d.0 as usize];
                let labeled = self
                    .hacked_since
                    .get(&doc.domain)
                    .map(|since| *since <= day)
                    .unwrap_or(false)
                    && doc.url.is_root_page();
                SearchResult {
                    rank: (i + 1) as u32,
                    url: doc.url.clone(),
                    domain: doc.domain,
                    hacked_label: labeled,
                }
            })
            .collect();
        Serp { term, day, results }
    }

    /// `site:` query — every indexed page of `domain` (§4.1.1 uses this to
    /// harvest a doorway's search results for term extraction).
    pub fn site_query(&self, domain: DomainId) -> Vec<&Doc> {
        self.docs.iter().filter(|d| d.domain == domain).collect()
    }

    /// Document lookup.
    pub fn doc(&self, id: DocId) -> &Doc {
        &self.docs[id.0 as usize]
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// FNV-1a fingerprint of the engine's complete state — the index,
    /// postings, juice/penalty levels, and hacked labels. Folded into the
    /// run-level `run_fingerprint` so resume equivalence covers ranking
    /// state, not just the world's entity tables.
    pub fn state_fingerprint(&self) -> u64 {
        fnv1a64(&self.encode())
    }
}

impl Snapshot for SearchEngine {
    const TAG: &'static str = "search-engine";
    const VERSION: u16 = 1;

    fn write_body(&self, w: &mut Writer) {
        w.put_u64(self.seed);
        w.put_f64(self.jitter_amp);
        w.put_seq(&self.terms, |w, t| {
            w.put_u32(t.vertical.0);
            w.put_str(&t.text);
        });
        w.put_seq(&self.docs, |w, d| {
            w.put_str(&d.url.to_string());
            w.put_u32(d.domain.0);
            w.put_u32(d.term.0);
            w.put_f64(d.quality);
            w.put_f64(d.relevance);
            w.put_date(d.first_indexed);
        });
        // Postings are serialized explicitly: `deindex_page` removes
        // entries while leaving the doc record behind, so postings are
        // not reconstructible from the doc list alone.
        w.put_seq(&self.postings, |w, list| {
            w.put_seq(list, |w, d| w.put_u32(d.0));
        });
        w.put_seq(&self.juice, |w, j| w.put_f64(*j));
        w.put_seq(&self.penalty, |w, p| w.put_f64(*p));
        let mut hacked: Vec<(DomainId, SimDate)> =
            self.hacked_since.iter().map(|(d, s)| (*d, *s)).collect();
        hacked.sort();
        w.put_seq(&hacked, |w, (d, s)| {
            w.put_u32(d.0);
            w.put_date(*s);
        });
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let seed = r.get_u64()?;
        let jitter_amp = r.get_f64()?;
        let terms = r.get_seq(|r| {
            Ok(TermRecord {
                vertical: VerticalId(r.get_u32()?),
                text: r.get_str()?,
            })
        })?;
        let docs = r.get_seq(|r| {
            let url = Url::parse(&r.get_str()?)
                .map_err(|e| SnapshotError::Corrupt(format!("doc url: {e}")))?;
            Ok(Doc {
                url,
                domain: DomainId(r.get_u32()?),
                term: TermId(r.get_u32()?),
                quality: r.get_f64()?,
                relevance: r.get_f64()?,
                first_indexed: r.get_date()?,
            })
        })?;
        let postings = r.get_seq(|r| r.get_seq(|r| Ok(DocId(r.get_u32()?))))?;
        if postings.len() != terms.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} posting lists for {} terms",
                postings.len(),
                terms.len()
            )));
        }
        let juice = r.get_seq(|r| r.get_f64())?;
        let penalty = r.get_seq(|r| r.get_f64())?;
        let hacked = r.get_seq(|r| Ok((DomainId(r.get_u32()?), r.get_date()?)))?;
        Ok(SearchEngine {
            terms,
            docs,
            postings,
            juice,
            penalty,
            hacked_since: hacked.into_iter().collect(),
            jitter_amp,
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::DomainName;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn day(n: u32) -> SimDate {
        SimDate::from_day_index(n)
    }

    /// An engine with one term, 30 legit docs and 3 doorway docs.
    fn setup() -> (SearchEngine, TermId, Vec<DomainId>) {
        let mut e = SearchEngine::new(42, 0.05);
        let t = e.add_term(VerticalId(0), "cheap louis vuitton");
        let mut domains = Vec::new();
        for i in 0..30 {
            let d = DomainId(i);
            domains.push(d);
            e.index_page(
                t,
                url(&format!("http://legit{i}.com/")),
                d,
                0.4 + (i as f64) * 0.01,
                0.5,
                day(0),
            );
        }
        for i in 30..33 {
            let d = DomainId(i);
            domains.push(d);
            // Fresh doorways: no reputation, decent keyword relevance —
            // without juice they sit below page one.
            e.index_page(
                t,
                url(&format!("http://door{i}.com/?key=cheap+louis+vuitton")),
                d,
                0.0,
                0.6,
                day(0),
            );
        }
        (e, t, domains)
    }

    #[test]
    fn juice_lifts_doorways_into_top_ranks() {
        let (mut e, t, domains) = setup();
        let before = e.serp(t, day(10), 10);
        assert!(
            before.results.iter().all(|r| r.domain.index() < 30),
            "no juice, no doorways on page one"
        );
        for d in &domains[30..] {
            e.set_juice(*d, 0.5);
        }
        let after = e.serp(t, day(10), 10);
        let doorway_hits = after
            .results
            .iter()
            .filter(|r| r.domain.index() >= 30)
            .count();
        assert_eq!(doorway_hits, 3, "juiced doorways should dominate");
        assert_eq!(after.results[0].rank, 1);
    }

    #[test]
    fn demotion_pushes_a_domain_out() {
        let (mut e, t, domains) = setup();
        let target = domains[32];
        e.set_juice(target, 0.5);
        assert!(e
            .serp(t, day(5), 10)
            .results
            .iter()
            .any(|r| r.domain == target));
        e.demote(target, 1.0);
        assert!(e
            .serp(t, day(5), 10)
            .results
            .iter()
            .all(|r| r.domain != target));
        // With only 33 candidates the demoted doc still shows in a full
        // listing, but dead last — i.e. out of any top-k that matters.
        let all = e.serp(t, day(5), 100);
        assert_eq!(all.results.last().unwrap().domain, target);
    }

    #[test]
    fn hacked_label_is_root_only_and_dated() {
        let mut e = SearchEngine::new(1, 0.0);
        let t = e.add_term(VerticalId(0), "x");
        let d = DomainId(0);
        e.index_page(t, url("http://site.com/"), d, 0.9, 0.9, day(0));
        e.index_page(
            t,
            url("http://site.com/shop/page.html"),
            d,
            0.9,
            0.9,
            day(0),
        );
        e.label_hacked(d, day(50));
        let before = e.serp(t, day(49), 10);
        assert!(before.results.iter().all(|r| !r.hacked_label));
        let after = e.serp(t, day(50), 10);
        let root = after.results.iter().find(|r| r.url.is_root_page()).unwrap();
        let sub = after
            .results
            .iter()
            .find(|r| !r.url.is_root_page())
            .unwrap();
        assert!(root.hacked_label, "root result must be labeled");
        assert!(
            !sub.hacked_label,
            "sub-page result must not be labeled (root-only policy)"
        );
        assert_eq!(e.hacked_since(d), Some(day(50)));
    }

    #[test]
    fn serp_is_deterministic_but_churns_across_days() {
        let (mut e, t, domains) = setup();
        for d in &domains[30..] {
            e.set_juice(*d, 0.2);
        }
        let a = e.serp(t, day(10), 100);
        let b = e.serp(t, day(10), 100);
        assert_eq!(a.results, b.results, "same day, same SERP");
        let c = e.serp(t, day(11), 100);
        let order_a: Vec<DomainId> = a.results.iter().map(|r| r.domain).collect();
        let order_c: Vec<DomainId> = c.results.iter().map(|r| r.domain).collect();
        assert_ne!(
            order_a, order_c,
            "jitter must churn the ordering day to day"
        );
    }

    #[test]
    fn apply_batch_matches_granular_setters() {
        let (mut batched, t, domains) = setup();
        let (mut granular, _, _) = setup();
        let target = domains[31];
        batched.apply_batch([
            EngineOp::SetJuice {
                domain: target,
                juice: 0.5,
            },
            EngineOp::Demote {
                domain: target,
                penalty: 0.2,
            },
            EngineOp::Demote {
                domain: target,
                penalty: 0.1,
            },
            EngineOp::LabelHacked {
                domain: target,
                day: day(40),
            },
            EngineOp::LabelHacked {
                domain: target,
                day: day(99),
            },
        ]);
        granular.set_juice(target, 0.5);
        granular.demote(target, 0.2);
        granular.demote(target, 0.1);
        granular.label_hacked(target, day(40));
        granular.label_hacked(target, day(99));
        assert_eq!(batched.juice(target), granular.juice(target));
        assert_eq!(batched.penalty(target), granular.penalty(target));
        // First writer wins on the label, exactly like the setter.
        assert_eq!(batched.hacked_since(target), Some(day(40)));
        assert_eq!(batched.hacked_since(target), granular.hacked_since(target));
        let a = batched.serp(t, day(50), 33);
        let b = granular.serp(t, day(50), 33);
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn pages_only_appear_after_indexing_day() {
        let mut e = SearchEngine::new(9, 0.0);
        let t = e.add_term(VerticalId(0), "x");
        e.index_page(t, url("http://new.com/"), DomainId(0), 0.9, 0.9, day(100));
        assert!(e.serp(t, day(99), 10).results.is_empty());
        assert_eq!(e.serp(t, day(100), 10).results.len(), 1);
    }

    #[test]
    fn deindex_removes_from_serps() {
        let mut e = SearchEngine::new(9, 0.0);
        let t = e.add_term(VerticalId(0), "x");
        let doc = e.index_page(t, url("http://gone.com/"), DomainId(0), 0.9, 0.9, day(0));
        assert_eq!(e.serp(t, day(1), 10).results.len(), 1);
        e.deindex_page(doc);
        assert!(e.serp(t, day(1), 10).results.is_empty());
    }

    #[test]
    fn site_query_lists_domain_pages() {
        let mut e = SearchEngine::new(9, 0.0);
        let t1 = e.add_term(VerticalId(0), "a");
        let t2 = e.add_term(VerticalId(0), "b");
        let d = DomainId(7);
        e.index_page(t1, url("http://door.com/?key=a"), d, 0.1, 0.9, day(0));
        e.index_page(t2, url("http://door.com/?key=b"), d, 0.1, 0.9, day(0));
        e.index_page(t1, url("http://other.com/"), DomainId(8), 0.5, 0.5, day(0));
        let pages = e.site_query(d);
        assert_eq!(pages.len(), 2);
        assert!(pages
            .iter()
            .all(|p| p.url.host == DomainName::parse("door.com").unwrap()));
    }

    #[test]
    fn snapshot_roundtrip_reproduces_serps_and_fingerprint() {
        let (mut e, t, domains) = setup();
        e.set_juice(domains[30], 0.5);
        e.demote(domains[31], 0.3);
        e.label_hacked(domains[32], day(40));
        e.deindex_page(DocId(5));
        let back = SearchEngine::decode(&e.encode()).unwrap();
        assert_eq!(back.state_fingerprint(), e.state_fingerprint());
        assert_eq!(back.doc_count(), e.doc_count());
        for d in [10u32, 50] {
            assert_eq!(
                back.serp(t, day(d), 33).results,
                e.serp(t, day(d), 33).results
            );
        }
        // Deindexed docs must stay deindexed after restore.
        assert!(!back
            .serp(t, day(10), 100)
            .results
            .iter()
            .any(|r| { r.domain == e.doc(DocId(5)).domain && r.url == e.doc(DocId(5)).url }));
    }

    #[test]
    fn rank_is_one_based_and_contiguous() {
        let (e, t, _) = setup();
        let serp = e.serp(t, day(3), 20);
        let ranks: Vec<u32> = serp.results.iter().map(|r| r.rank).collect();
        assert_eq!(ranks, (1..=20).collect::<Vec<u32>>());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use ss_types::VerticalId;

    proptest! {
        /// SERP results are always ordered by non-increasing score, and the
        /// top-k is a prefix of the full ordering.
        #[test]
        fn serps_are_sorted_and_prefix_stable(
            n_docs in 2usize..60,
            day in 0u32..300,
            k in 1usize..30,
        ) {
            let mut e = SearchEngine::new(7, 0.05);
            let t = e.add_term(VerticalId(0), "q");
            let mut docs = Vec::new();
            for i in 0..n_docs {
                let q = (i as f64 * 37.0 % 17.0) / 17.0;
                let r = (i as f64 * 11.0 % 13.0) / 13.0;
                docs.push(e.index_page(
                    t,
                    Url::parse(&format!("http://d{i}.com/")).unwrap(),
                    DomainId(i as u32),
                    q,
                    r,
                    SimDate::from_day_index(0),
                ));
            }
            let date = SimDate::from_day_index(day);
            let full = e.serp(t, date, n_docs);
            let scores: Vec<f64> =
                full.results.iter().map(|r| {
                    let doc = docs.iter().find(|d| e.doc(**d).domain == r.domain).unwrap();
                    e.score(*doc, date)
                }).collect();
            for w in scores.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-12, "scores not sorted: {scores:?}");
            }
            let topk = e.serp(t, date, k);
            for (a, b) in topk.results.iter().zip(&full.results) {
                prop_assert_eq!(a.domain, b.domain, "top-k must be a prefix");
            }
        }
    }
}

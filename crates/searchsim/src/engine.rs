//! The index, the ranking function, SERP generation, and penalization.
//!
//! # The query plane
//!
//! The engine is split writer/reader. [`SearchEngine`] is the mutable
//! writer: construction (`add_term`/`index_page`) and the tick plane's
//! committed [`EngineOp`] batches go through it. Readers get an
//! [`EngineEpoch`] — an immutable snapshot published lazily at the
//! plan/commit choke points — and query it concurrently between commits.
//!
//! Inside an epoch the per-term postings are pre-sorted by *static* score
//! (relevance/quality/juice/penalty, maintained incrementally as ops
//! apply), so a SERP is a bounded candidate walk plus a top-k heap that
//! only adds the per-(doc, day) jitter, instead of scoring and fully
//! sorting every posting. Built SERPs are cached per `(term, day)` within
//! an epoch and shared by reference ([`RankedSerp`] holds ids, not URLs).
//! A mutation that actually changes ranking state invalidates the epoch;
//! bitwise no-op mutations (the common case — juice re-asserted at its
//! current level every day) keep the epoch and its cache alive.
//!
//! SERPs from the walk are bit-identical to the reference full scan
//! ([`SearchEngine::serp_full_scan`]); the differential tests in
//! `tests/epoch_differential.rs` hold the two paths together.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrder};
use std::sync::{Arc, Mutex};

use ss_types::rng::{mix, unit_f64};
use ss_types::snapshot::{fnv1a64, Reader, Snapshot, SnapshotError, Writer};
use ss_types::{DomainId, SimDate, TermId, Url, VerticalId};

/// A document id, dense per engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub u32);

/// A monitored search term.
#[derive(Debug, Clone)]
pub struct TermRecord {
    /// The vertical this term belongs to.
    pub vertical: VerticalId,
    /// The query string, e.g. "cheap louis vuitton".
    pub text: String,
}

/// One indexed page, attached to exactly one term's posting list.
#[derive(Debug, Clone)]
pub struct Doc {
    /// The result URL.
    pub url: Url,
    /// Owning registered domain.
    pub domain: DomainId,
    /// The term whose postings this document sits in.
    pub term: TermId,
    /// Query-independent quality (reputation) in `[0, 1]`.
    pub quality: f64,
    /// Query-dependent relevance in `[0, 1]`.
    pub relevance: f64,
    /// When the page entered the index.
    pub first_indexed: SimDate,
}

/// One search result as the engine presents it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// 1-based rank.
    pub rank: u32,
    /// Result URL.
    pub url: Url,
    /// Owning domain.
    pub domain: DomainId,
    /// Whether the result carries the "This site may be hacked" label.
    /// Under the root-only policy (§5.2.2) this is set only on the result
    /// whose URL is the site root, even when the whole domain is flagged.
    pub hacked_label: bool,
}

/// A search-engine results page: the top-k results for one term on one day.
#[derive(Debug, Clone)]
pub struct Serp {
    /// The queried term.
    pub term: TermId,
    /// The day of the query.
    pub day: SimDate,
    /// Results in rank order.
    pub results: Vec<SearchResult>,
}

/// One SERP hit as the epoch stores it: ids only, no URL clone on the hot
/// path. Resolve URLs at report/PSR boundaries via [`SearchEngine::doc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankedHit {
    /// 1-based rank.
    pub rank: u32,
    /// The ranked document.
    pub doc: DocId,
    /// Owning domain.
    pub domain: DomainId,
    /// "This site may be hacked" label (root-page-only policy, §5.2.2).
    pub hacked_label: bool,
}

/// An id-based SERP served by an [`EngineEpoch`]. The hit vector is shared
/// by reference with the epoch's `(term, day)` cache, so handing one out
/// costs an `Arc` clone, not a per-result URL clone.
#[derive(Debug, Clone)]
pub struct RankedSerp {
    /// The queried term.
    pub term: TermId,
    /// The day of the query.
    pub day: SimDate,
    hits: Arc<Vec<RankedHit>>,
    k: usize,
}

impl RankedSerp {
    /// Results in rank order, at most `k` of them. A cached hit vector may
    /// be longer than this query's `k`; the top-k is a prefix of the full
    /// ordering, so a prefix view is exact.
    pub fn results(&self) -> &[RankedHit] {
        &self.hits[..self.k.min(self.hits.len())]
    }
}

/// One ranking mutation, planned against a frozen engine and committed in
/// batch via [`SearchEngine::apply_batch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineOp {
    /// Set a domain's SEO juice to an absolute level.
    SetJuice {
        /// Target domain.
        domain: DomainId,
        /// New juice level.
        juice: f64,
    },
    /// Add a demotion penalty to a domain.
    Demote {
        /// Target domain.
        domain: DomainId,
        /// Penalty to add (score units).
        penalty: f64,
    },
    /// Mark a domain "hacked" as of `day` (first writer wins).
    LabelHacked {
        /// Target domain.
        domain: DomainId,
        /// Label day.
        day: SimDate,
    },
}

/// The structural half of the engine: terms, documents, raw postings, and
/// the per-domain doc index. Frozen once the world is built; runtime
/// mutation is confined to [`RankState`].
#[derive(Debug, Clone)]
struct EngineIndex {
    terms: Vec<TermRecord>,
    docs: Vec<Doc>,
    postings: Vec<Vec<DocId>>,
    /// Every doc of a domain (including deindexed ones) in id order —
    /// `site:` query semantics without a full doc-table scan.
    by_domain: Vec<Vec<DocId>>,
    /// Precomputed `url.is_root_page()` per doc (hacked-label policy).
    root_page: Vec<bool>,
}

/// The mutable half of ranking state, copied on write when an epoch still
/// holds the previous version.
#[derive(Debug, Clone)]
struct RankState {
    /// Per-domain SEO juice, indexed by `DomainId` (grown on demand).
    juice: Vec<f64>,
    /// Per-domain demotion penalty.
    penalty: Vec<f64>,
    /// Day the domain was labeled "hacked", if ever.
    hacked_since: HashMap<DomainId, SimDate>,
    /// Day-independent score per doc: bitwise-equal to the static prefix
    /// of [`SearchEngine::score`] (everything but the jitter term).
    static_score: Vec<f64>,
    /// Per-term postings sorted by (static score desc, `DocId` asc) —
    /// excludes deindexed docs, mirrors `postings` membership.
    sorted: Vec<Vec<DocId>>,
}

/// Query-plane counters, shared between the writer and every epoch it
/// publishes so counts survive republication.
#[derive(Debug, Default)]
struct EngineStats {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    /// Postings examined by cache-miss SERP walks — deterministic per run
    /// because a walk happens once per distinct `(term, day, k-extension)`
    /// cache key regardless of which thread takes the miss.
    postings_walked: AtomicU64,
    /// Top-k heap insertions performed by those walks.
    heap_pushes: AtomicU64,
}

/// Work performed by one SERP walk, for the deterministic cost ledger.
#[derive(Debug, Default, Clone, Copy)]
struct WalkWork {
    postings: u64,
    pushes: u64,
}

/// One cached SERP build for a `(term, day)` key.
#[derive(Debug)]
struct CacheEntry {
    hits: Arc<Vec<RankedHit>>,
    /// The walk consumed every eligible candidate — the hit vector is the
    /// complete ranking, so any larger `k` can be served from it too.
    exhausted: bool,
}

/// Per-term cache shard: day index → built SERP. The shard lock is held
/// across a rebuild so concurrent same-key readers serialize and the
/// second one takes the deterministic cache hit.
type TermCache = Mutex<HashMap<u32, CacheEntry>>;

/// Deterministic per-(doc, day) jitter in `[-amp/2, amp/2)`. Uses the
/// allocation-free numeric mixer — this runs per document per SERP.
fn jitter(seed: u64, amp: f64, doc: DocId, day: SimDate) -> f64 {
    let h = mix(seed, u64::from(doc.0), u64::from(day.day_index()));
    (unit_f64(h) - 0.5) * amp
}

/// SERP ordering: higher score first, ties broken by lower `DocId`.
/// `total_cmp` keeps the sort lawful even on adversarial inputs (the old
/// `partial_cmp(..).unwrap_or(Equal)` silently mis-sorted on NaN); finite
/// scores — asserted in debug builds — order identically under both.
fn better_first(a: &(f64, DocId), b: &(f64, DocId)) -> Ordering {
    b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
}

/// A top-k heap entry whose `Ord` puts the *weakest* kept candidate at the
/// max-heap root: `better_first` already sorts better-first ascending, so
/// the heap's maximum is the candidate next in line to be evicted.
#[derive(Debug, Clone, Copy)]
struct WeakestFirst(f64, DocId);

impl PartialEq for WeakestFirst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for WeakestFirst {}
impl PartialOrd for WeakestFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WeakestFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        better_first(&(self.0, self.1), &(other.0, other.1))
    }
}

/// The bounded candidate walk: per-term postings are pre-sorted by static
/// score, so once the top-k heap is full and even a maximal jitter cannot
/// lift the next candidate past the weakest kept score, no later candidate
/// can either (IEEE addition is monotone and the walk is static-descending)
/// and the walk stops. Equality keeps walking: a later, smaller `DocId`
/// could still tie and win the deterministic tie-break.
///
/// Returns the hits plus whether the walk consumed every eligible
/// candidate (in which case the result is the complete ranking for `day`).
fn walk_serp(
    index: &EngineIndex,
    rank: &RankState,
    seed: u64,
    jitter_amp: f64,
    term: TermId,
    day: SimDate,
    k: usize,
) -> (Vec<RankedHit>, bool, WalkWork) {
    let list = &rank.sorted[term.index()];
    let mut heap: BinaryHeap<WeakestFirst> = BinaryHeap::with_capacity(k + 1);
    let half_amp = 0.5 * jitter_amp;
    let mut eligible = 0usize;
    let mut truncated = false;
    let mut work = WalkWork::default();
    for &doc in list {
        work.postings += 1;
        let di = doc.0 as usize;
        if index.docs[di].first_indexed > day {
            continue;
        }
        let stat = rank.static_score[di];
        if heap.len() == k {
            let weakest = heap.peek().expect("heap full implies k > 0");
            if stat + half_amp < weakest.0 {
                truncated = true;
                break;
            }
        }
        eligible += 1;
        let score = stat + jitter(seed, jitter_amp, doc, day);
        debug_assert!(score.is_finite(), "non-finite SERP score for {doc:?}");
        let cand = WeakestFirst(score, doc);
        if heap.len() < k {
            work.pushes += 1;
            heap.push(cand);
        } else if cand < *heap.peek().expect("heap full") {
            work.pushes += 1;
            heap.pop();
            heap.push(cand);
        }
    }
    let mut kept: Vec<WeakestFirst> = heap.into_vec();
    kept.sort();
    let hits = kept
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let di = c.1 .0 as usize;
            let d = &index.docs[di];
            let labeled = rank
                .hacked_since
                .get(&d.domain)
                .map(|since| *since <= day)
                .unwrap_or(false)
                && index.root_page[di];
            RankedHit {
                rank: (i + 1) as u32,
                doc: c.1,
                domain: d.domain,
                hacked_label: labeled,
            }
        })
        .collect();
    (hits, !truncated && eligible == kept.len(), work)
}

/// An immutable snapshot of the engine, published at the tick plane's
/// commit choke points and queried concurrently by every reader — the
/// traffic planner, the crawler, and the `repro serve` loadgen — between
/// commits. Holds its own `(term, day)` SERP cache; the cache dies with
/// the epoch when a real mutation publishes a successor.
#[derive(Debug)]
pub struct EngineEpoch {
    index: Arc<EngineIndex>,
    rank: Arc<RankState>,
    jitter_amp: f64,
    seed: u64,
    stats: Arc<EngineStats>,
    cache: Vec<TermCache>,
}

impl EngineEpoch {
    /// The top-`k` SERP for `term` on `day`, cached per `(term, day)`
    /// within this epoch. Counted in the `engine.serp_queries` /
    /// `engine.serp_cache_hits` metrics.
    pub fn ranked(&self, term: TermId, day: SimDate, k: usize) -> RankedSerp {
        self.stats.queries.fetch_add(1, AtomicOrder::Relaxed);
        let mut slot = self.cache[term.index()].lock().expect("serp cache lock");
        let key = day.day_index();
        if let Some(entry) = slot.get(&key) {
            if entry.hits.len() >= k || entry.exhausted {
                self.stats.cache_hits.fetch_add(1, AtomicOrder::Relaxed);
                return RankedSerp {
                    term,
                    day,
                    hits: Arc::clone(&entry.hits),
                    k,
                };
            }
        }
        let (hits, exhausted, work) = walk_serp(
            &self.index,
            &self.rank,
            self.seed,
            self.jitter_amp,
            term,
            day,
            k,
        );
        self.stats
            .postings_walked
            .fetch_add(work.postings, AtomicOrder::Relaxed);
        self.stats
            .heap_pushes
            .fetch_add(work.pushes, AtomicOrder::Relaxed);
        let hits = Arc::new(hits);
        slot.insert(
            key,
            CacheEntry {
                hits: Arc::clone(&hits),
                exhausted,
            },
        );
        RankedSerp { term, day, hits, k }
    }

    /// The same walk with no cache read/write and no counter traffic —
    /// for state-fingerprint probes and differential tests, which must
    /// not perturb the metrics or warm the cache.
    pub fn ranked_uncached(&self, term: TermId, day: SimDate, k: usize) -> Vec<RankedHit> {
        walk_serp(
            &self.index,
            &self.rank,
            self.seed,
            self.jitter_amp,
            term,
            day,
            k,
        )
        .0
    }

    /// Document lookup (immutable across the epoch's lifetime).
    pub fn doc(&self, id: DocId) -> &Doc {
        &self.index.docs[id.0 as usize]
    }

    /// Number of registered terms.
    pub fn term_count(&self) -> usize {
        self.index.terms.len()
    }
}

/// The engine.
///
/// Scoring model (per document, per day):
///
/// ```text
/// score = 0.45·relevance + 0.35·quality + juice(domain) − penalty(domain) + jitter(doc, day)
/// ```
///
/// `juice` is what black-hat SEO buys (backlink farms raising perceived
/// reputation); campaigns set it while actively SEOing and it decays when
/// they stop. `penalty` models demotion. `jitter` is a small deterministic
/// per-(doc, day) perturbation that makes rankings churn realistically.
///
/// This type is the *writer* half of the query plane; see the module docs
/// and [`SearchEngine::epoch`] for the reader half.
#[derive(Debug)]
pub struct SearchEngine {
    index: Arc<EngineIndex>,
    rank: Arc<RankState>,
    /// Jitter amplitude (score units).
    jitter_amp: f64,
    seed: u64,
    stats: Arc<EngineStats>,
    epoch: Mutex<Option<Arc<EngineEpoch>>>,
}

impl SearchEngine {
    /// Creates an empty engine. `jitter_amp` controls day-to-day SERP
    /// churn; 0.05 yields low single-digit percent daily domain churn with
    /// the default score weights.
    pub fn new(seed: u64, jitter_amp: f64) -> Self {
        SearchEngine::from_parts(
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            HashMap::new(),
            jitter_amp,
            seed,
        )
    }

    /// Assembles an engine from its serialized fields, rebuilding every
    /// derived structure (per-domain index, static scores, sorted
    /// postings). The incremental maintenance paths keep exactly the
    /// invariants established here, so a decode-then-walk matches a
    /// mutate-then-walk bitwise.
    #[allow(clippy::too_many_arguments)]
    fn from_parts(
        terms: Vec<TermRecord>,
        docs: Vec<Doc>,
        postings: Vec<Vec<DocId>>,
        juice: Vec<f64>,
        penalty: Vec<f64>,
        hacked_since: HashMap<DomainId, SimDate>,
        jitter_amp: f64,
        seed: u64,
    ) -> Self {
        let mut by_domain: Vec<Vec<DocId>> = Vec::new();
        let mut root_page = Vec::with_capacity(docs.len());
        for (i, d) in docs.iter().enumerate() {
            root_page.push(d.url.is_root_page());
            if by_domain.len() <= d.domain.index() {
                by_domain.resize(d.domain.index() + 1, Vec::new());
            }
            by_domain[d.domain.index()].push(DocId(i as u32));
        }
        let static_score: Vec<f64> = docs
            .iter()
            .map(|d| {
                0.45 * d.relevance
                    + 0.35 * d.quality
                    + juice.get(d.domain.index()).copied().unwrap_or(0.0)
                    - penalty.get(d.domain.index()).copied().unwrap_or(0.0)
            })
            .collect();
        let sorted: Vec<Vec<DocId>> = postings
            .iter()
            .map(|list| {
                let mut s = list.clone();
                s.sort_by(|&a, &b| {
                    better_first(
                        &(static_score[a.0 as usize], a),
                        &(static_score[b.0 as usize], b),
                    )
                });
                s
            })
            .collect();
        SearchEngine {
            index: Arc::new(EngineIndex {
                terms,
                docs,
                postings,
                by_domain,
                root_page,
            }),
            rank: Arc::new(RankState {
                juice,
                penalty,
                hacked_since,
                static_score,
                sorted,
            }),
            jitter_amp,
            seed,
            stats: Arc::new(EngineStats::default()),
            epoch: Mutex::new(None),
        }
    }

    /// The current epoch, publishing one lazily if a mutation retired the
    /// last. Publication is an `Arc` clone of the frozen index and rank
    /// state plus a fresh empty SERP cache — cheap enough to call at
    /// every read site.
    pub fn epoch(&self) -> Arc<EngineEpoch> {
        let mut slot = self.epoch.lock().expect("epoch slot lock");
        if let Some(e) = &*slot {
            return Arc::clone(e);
        }
        let epoch = Arc::new(EngineEpoch {
            index: Arc::clone(&self.index),
            rank: Arc::clone(&self.rank),
            jitter_amp: self.jitter_amp,
            seed: self.seed,
            stats: Arc::clone(&self.stats),
            cache: (0..self.index.terms.len())
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        });
        *slot = Some(Arc::clone(&epoch));
        epoch
    }

    /// Retires the published epoch (with its SERP cache). Called by every
    /// mutation that actually changes observable ranking state; bitwise
    /// no-op mutations skip it so caches survive the daily republish.
    fn invalidate_epoch(&mut self) {
        *self.epoch.get_mut().expect("epoch slot lock") = None;
    }

    /// Drains the query-plane counters: `(serp_queries, serp_cache_hits)`
    /// since the previous drain. The world folds these into its metric
    /// registry at commit-adjacent points so checkpoints never carry
    /// undrained residue.
    pub fn take_serp_stats(&self) -> (u64, u64) {
        (
            self.stats.queries.swap(0, AtomicOrder::Relaxed),
            self.stats.cache_hits.swap(0, AtomicOrder::Relaxed),
        )
    }

    /// Drains the walk-work counters: `(postings_walked, heap_pushes)`
    /// since the previous drain. Deterministic per run (see
    /// `EngineStats`); the world folds these into the cost ledger at the
    /// same commit-adjacent points as [`SearchEngine::take_serp_stats`].
    pub fn take_walk_work(&self) -> (u64, u64) {
        (
            self.stats.postings_walked.swap(0, AtomicOrder::Relaxed),
            self.stats.heap_pushes.swap(0, AtomicOrder::Relaxed),
        )
    }

    /// Reads the query-plane counters without draining them.
    pub fn serp_stats(&self) -> (u64, u64) {
        (
            self.stats.queries.load(AtomicOrder::Relaxed),
            self.stats.cache_hits.load(AtomicOrder::Relaxed),
        )
    }

    /// Registers a monitored term and returns its id.
    pub fn add_term(&mut self, vertical: VerticalId, text: &str) -> TermId {
        self.invalidate_epoch();
        let index = Arc::make_mut(&mut self.index);
        let id = TermId::from_index(index.terms.len());
        index.terms.push(TermRecord {
            vertical,
            text: text.to_owned(),
        });
        index.postings.push(Vec::new());
        Arc::make_mut(&mut self.rank).sorted.push(Vec::new());
        id
    }

    /// All registered terms.
    pub fn terms(&self) -> &[TermRecord] {
        &self.index.terms
    }

    /// Number of registered terms.
    pub fn term_count(&self) -> usize {
        self.index.terms.len()
    }

    /// Indexes a page into a term's postings.
    pub fn index_page(
        &mut self,
        term: TermId,
        url: Url,
        domain: DomainId,
        quality: f64,
        relevance: f64,
        day: SimDate,
    ) -> DocId {
        self.invalidate_epoch();
        let index = Arc::make_mut(&mut self.index);
        let id = DocId(index.docs.len() as u32);
        index.root_page.push(url.is_root_page());
        index.docs.push(Doc {
            url,
            domain,
            term,
            quality,
            relevance,
            first_indexed: day,
        });
        index.postings[term.index()].push(id);
        if index.by_domain.len() <= domain.index() {
            index.by_domain.resize(domain.index() + 1, Vec::new());
        }
        index.by_domain[domain.index()].push(id);

        let rank = Arc::make_mut(&mut self.rank);
        ensure_domain(rank, domain);
        let stat = 0.45 * relevance + 0.35 * quality + rank.juice[domain.index()]
            - rank.penalty[domain.index()];
        rank.static_score.push(stat);
        let (sorted, statics) = (&mut rank.sorted, &rank.static_score);
        let list = &mut sorted[term.index()];
        let pos = list
            .binary_search_by(|&d| better_first(&(statics[d.0 as usize], d), &(stat, id)))
            .unwrap_err();
        list.insert(pos, id);
        id
    }

    /// Removes a page from the index (site cleaned or de-indexed).
    pub fn deindex_page(&mut self, doc: DocId) {
        self.invalidate_epoch();
        let term = self.index.docs[doc.0 as usize].term;
        let index = Arc::make_mut(&mut self.index);
        index.postings[term.index()].retain(|d| *d != doc);
        let rank = Arc::make_mut(&mut self.rank);
        let (sorted, statics) = (&mut rank.sorted, &rank.static_score);
        let stat = statics[doc.0 as usize];
        if let Ok(pos) = sorted[term.index()]
            .binary_search_by(|&d| better_first(&(statics[d.0 as usize], d), &(stat, doc)))
        {
            sorted[term.index()].remove(pos);
        }
    }

    /// Sets the SEO juice for a domain (what a campaign's link farm buys).
    pub fn set_juice(&mut self, domain: DomainId, juice: f64) {
        let grows = domain.index() >= self.rank.juice.len();
        if !grows && self.rank.juice[domain.index()].to_bits() == juice.to_bits() {
            return; // bitwise no-op: keep the epoch and its cache alive
        }
        self.invalidate_epoch();
        let rank = Arc::make_mut(&mut self.rank);
        ensure_domain(rank, domain);
        rank.juice[domain.index()] = juice;
        refresh_domain(rank, &self.index, domain);
    }

    /// Current juice for a domain.
    pub fn juice(&self, domain: DomainId) -> f64 {
        self.rank.juice.get(domain.index()).copied().unwrap_or(0.0)
    }

    /// Applies (adds) a demotion penalty to a domain.
    pub fn demote(&mut self, domain: DomainId, penalty: f64) {
        let grows = domain.index() >= self.rank.penalty.len();
        if !grows {
            let cur = self.rank.penalty[domain.index()];
            if (cur + penalty).to_bits() == cur.to_bits() {
                return; // bitwise no-op
            }
        }
        self.invalidate_epoch();
        let rank = Arc::make_mut(&mut self.rank);
        ensure_domain(rank, domain);
        rank.penalty[domain.index()] += penalty;
        refresh_domain(rank, &self.index, domain);
    }

    /// Current penalty for a domain.
    pub fn penalty(&self, domain: DomainId) -> f64 {
        self.rank
            .penalty
            .get(domain.index())
            .copied()
            .unwrap_or(0.0)
    }

    /// Marks a domain "hacked" as of `day` (GSB-style label, §5.2.2).
    pub fn label_hacked(&mut self, domain: DomainId, day: SimDate) {
        if self.rank.hacked_since.contains_key(&domain) {
            return; // first writer wins: a repeat label is a no-op
        }
        self.invalidate_epoch();
        Arc::make_mut(&mut self.rank)
            .hacked_since
            .insert(domain, day);
    }

    /// Whether (and since when) a domain carries the hacked label.
    pub fn hacked_since(&self, domain: DomainId) -> Option<SimDate> {
        self.rank.hacked_since.get(&domain).copied()
    }

    /// Applies an ordered batch of ranking mutations — the engine's half of
    /// the tick plane's plan/commit protocol. Planners compute [`EngineOp`]s
    /// against a frozen epoch; the world's reducer commits them here in
    /// plan order, so this is the only mutation entry point a tick needs
    /// (the granular setters remain for construction and tests). The next
    /// [`SearchEngine::epoch`] call after a batch that changed anything
    /// publishes a fresh epoch.
    pub fn apply_batch(&mut self, ops: impl IntoIterator<Item = EngineOp>) {
        for op in ops {
            match op {
                EngineOp::SetJuice { domain, juice } => self.set_juice(domain, juice),
                EngineOp::Demote { domain, penalty } => self.demote(domain, penalty),
                EngineOp::LabelHacked { domain, day } => self.label_hacked(domain, day),
            }
        }
    }

    /// Scores one document on one day.
    pub fn score(&self, doc: DocId, day: SimDate) -> f64 {
        let d = &self.index.docs[doc.0 as usize];
        0.45 * d.relevance + 0.35 * d.quality + self.juice(d.domain) - self.penalty(d.domain)
            + jitter(self.seed, self.jitter_amp, doc, day)
    }

    /// Produces the top-`k` SERP for `term` on `day` through the current
    /// epoch (publishing one if needed), resolving result URLs at this
    /// boundary. Hot paths should hold an [`EngineEpoch`] and consume
    /// [`RankedSerp`]s instead.
    pub fn serp(&self, term: TermId, day: SimDate, k: usize) -> Serp {
        let ranked = self.epoch().ranked(term, day, k);
        self.resolve(&ranked)
    }

    /// Resolves an id-based SERP into URL-carrying results (report/PSR
    /// boundary).
    pub fn resolve(&self, ranked: &RankedSerp) -> Serp {
        Serp {
            term: ranked.term,
            day: ranked.day,
            results: ranked
                .results()
                .iter()
                .map(|h| SearchResult {
                    rank: h.rank,
                    url: self.index.docs[h.doc.0 as usize].url.clone(),
                    domain: h.domain,
                    hacked_label: h.hacked_label,
                })
                .collect(),
        }
    }

    /// The bounded walk without epoch, cache, or counter traffic — for
    /// state-fingerprint probes, which must not perturb metrics or warm
    /// any cache.
    pub fn ranked_uncached(&self, term: TermId, day: SimDate, k: usize) -> Vec<RankedHit> {
        walk_serp(
            &self.index,
            &self.rank,
            self.seed,
            self.jitter_amp,
            term,
            day,
            k,
        )
        .0
    }

    /// The reference SERP: score every posting, fully sort, take `k` —
    /// the pre-query-plane algorithm, kept as the differential-test and
    /// bench baseline for the epoch walk.
    pub fn serp_full_scan(&self, term: TermId, day: SimDate, k: usize) -> Serp {
        let mut scored: Vec<(f64, DocId)> = self.index.postings[term.index()]
            .iter()
            .filter(|d| self.index.docs[d.0 as usize].first_indexed <= day)
            .map(|d| {
                let s = self.score(*d, day);
                debug_assert!(s.is_finite(), "non-finite SERP score for {d:?}");
                (s, *d)
            })
            .collect();
        scored.sort_by(|a, b| better_first(&(a.0, a.1), &(b.0, b.1)));
        let results = scored
            .into_iter()
            .take(k)
            .enumerate()
            .map(|(i, (_, d))| {
                let doc = &self.index.docs[d.0 as usize];
                let labeled = self
                    .rank
                    .hacked_since
                    .get(&doc.domain)
                    .map(|since| *since <= day)
                    .unwrap_or(false)
                    && doc.url.is_root_page();
                SearchResult {
                    rank: (i + 1) as u32,
                    url: doc.url.clone(),
                    domain: doc.domain,
                    hacked_label: labeled,
                }
            })
            .collect();
        Serp { term, day, results }
    }

    /// `site:` query — every indexed page of `domain` (§4.1.1 uses this to
    /// harvest a doorway's search results for term extraction). Served by
    /// the per-domain doc index instead of a full doc-table scan; like the
    /// scan, it lists de-indexed pages too (the record remains).
    pub fn site_query(&self, domain: DomainId) -> Vec<&Doc> {
        self.index
            .by_domain
            .get(domain.index())
            .map(|ids| ids.iter().map(|d| &self.index.docs[d.0 as usize]).collect())
            .unwrap_or_default()
    }

    /// Document lookup.
    pub fn doc(&self, id: DocId) -> &Doc {
        &self.index.docs[id.0 as usize]
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.index.docs.len()
    }

    /// FNV-1a fingerprint of the engine's complete state — the index,
    /// postings, juice/penalty levels, and hacked labels. Folded into the
    /// run-level `run_fingerprint` so resume equivalence covers ranking
    /// state, not just the world's entity tables.
    pub fn state_fingerprint(&self) -> u64 {
        fnv1a64(&self.encode())
    }
}

/// Grows the per-domain juice/penalty tables to cover `domain`.
fn ensure_domain(rank: &mut RankState, domain: DomainId) {
    let need = domain.index() + 1;
    if rank.juice.len() < need {
        rank.juice.resize(need, 0.0);
        rank.penalty.resize(need, 0.0);
    }
}

/// Recomputes the static scores of every doc owned by `domain` (from
/// scratch, so the value is bitwise-equal to a fresh rebuild) and repairs
/// their positions in the sorted posting lists. Docs whose score did not
/// change bits are untouched; de-indexed docs update their score but have
/// no sorted entry to move.
fn refresh_domain(rank: &mut RankState, index: &EngineIndex, domain: DomainId) {
    let Some(docs) = index.by_domain.get(domain.index()) else {
        return;
    };
    let j = rank.juice[domain.index()];
    let p = rank.penalty[domain.index()];
    for &doc in docs {
        let di = doc.0 as usize;
        let d = &index.docs[di];
        let new = 0.45 * d.relevance + 0.35 * d.quality + j - p;
        let old = rank.static_score[di];
        if old.to_bits() == new.to_bits() {
            continue;
        }
        let ti = d.term.index();
        let (sorted, statics) = (&mut rank.sorted, &mut rank.static_score);
        let listed = sorted[ti]
            .binary_search_by(|&x| better_first(&(statics[x.0 as usize], x), &(old, doc)));
        if let Ok(pos) = listed {
            sorted[ti].remove(pos);
        }
        statics[di] = new;
        if listed.is_ok() {
            let pos = sorted[ti]
                .binary_search_by(|&x| better_first(&(statics[x.0 as usize], x), &(new, doc)))
                .unwrap_err();
            sorted[ti].insert(pos, doc);
        }
    }
}

impl Snapshot for SearchEngine {
    const TAG: &'static str = "search-engine";
    const VERSION: u16 = 1;

    fn write_body(&self, w: &mut Writer) {
        w.put_u64(self.seed);
        w.put_f64(self.jitter_amp);
        w.put_seq(&self.index.terms, |w, t| {
            w.put_u32(t.vertical.0);
            w.put_str(&t.text);
        });
        w.put_seq(&self.index.docs, |w, d| {
            w.put_str(&d.url.to_string());
            w.put_u32(d.domain.0);
            w.put_u32(d.term.0);
            w.put_f64(d.quality);
            w.put_f64(d.relevance);
            w.put_date(d.first_indexed);
        });
        // Postings are serialized explicitly: `deindex_page` removes
        // entries while leaving the doc record behind, so postings are
        // not reconstructible from the doc list alone. Derived structures
        // (per-domain index, static scores, sorted postings, epoch,
        // caches, counters) are rebuilt on decode, never serialized.
        w.put_seq(&self.index.postings, |w, list| {
            w.put_seq(list, |w, d| w.put_u32(d.0));
        });
        w.put_seq(&self.rank.juice, |w, j| w.put_f64(*j));
        w.put_seq(&self.rank.penalty, |w, p| w.put_f64(*p));
        let mut hacked: Vec<(DomainId, SimDate)> = self
            .rank
            .hacked_since
            .iter()
            .map(|(d, s)| (*d, *s))
            .collect();
        hacked.sort();
        w.put_seq(&hacked, |w, (d, s)| {
            w.put_u32(d.0);
            w.put_date(*s);
        });
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let seed = r.get_u64()?;
        let jitter_amp = r.get_f64()?;
        let terms = r.get_seq(|r| {
            Ok(TermRecord {
                vertical: VerticalId(r.get_u32()?),
                text: r.get_str()?,
            })
        })?;
        let docs = r.get_seq(|r| {
            let url = Url::parse(&r.get_str()?)
                .map_err(|e| SnapshotError::Corrupt(format!("doc url: {e}")))?;
            Ok(Doc {
                url,
                domain: DomainId(r.get_u32()?),
                term: TermId(r.get_u32()?),
                quality: r.get_f64()?,
                relevance: r.get_f64()?,
                first_indexed: r.get_date()?,
            })
        })?;
        let postings = r.get_seq(|r| r.get_seq(|r| Ok(DocId(r.get_u32()?))))?;
        if postings.len() != terms.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} posting lists for {} terms",
                postings.len(),
                terms.len()
            )));
        }
        let juice = r.get_seq(|r| r.get_f64())?;
        let penalty = r.get_seq(|r| r.get_f64())?;
        let hacked = r.get_seq(|r| Ok((DomainId(r.get_u32()?), r.get_date()?)))?;
        Ok(SearchEngine::from_parts(
            terms,
            docs,
            postings,
            juice,
            penalty,
            hacked.into_iter().collect(),
            jitter_amp,
            seed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::DomainName;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn day(n: u32) -> SimDate {
        SimDate::from_day_index(n)
    }

    /// An engine with one term, 30 legit docs and 3 doorway docs.
    fn setup() -> (SearchEngine, TermId, Vec<DomainId>) {
        let mut e = SearchEngine::new(42, 0.05);
        let t = e.add_term(VerticalId(0), "cheap louis vuitton");
        let mut domains = Vec::new();
        for i in 0..30 {
            let d = DomainId(i);
            domains.push(d);
            e.index_page(
                t,
                url(&format!("http://legit{i}.com/")),
                d,
                0.4 + (i as f64) * 0.01,
                0.5,
                day(0),
            );
        }
        for i in 30..33 {
            let d = DomainId(i);
            domains.push(d);
            // Fresh doorways: no reputation, decent keyword relevance —
            // without juice they sit below page one.
            e.index_page(
                t,
                url(&format!("http://door{i}.com/?key=cheap+louis+vuitton")),
                d,
                0.0,
                0.6,
                day(0),
            );
        }
        (e, t, domains)
    }

    #[test]
    fn juice_lifts_doorways_into_top_ranks() {
        let (mut e, t, domains) = setup();
        let before = e.serp(t, day(10), 10);
        assert!(
            before.results.iter().all(|r| r.domain.index() < 30),
            "no juice, no doorways on page one"
        );
        for d in &domains[30..] {
            e.set_juice(*d, 0.5);
        }
        let after = e.serp(t, day(10), 10);
        let doorway_hits = after
            .results
            .iter()
            .filter(|r| r.domain.index() >= 30)
            .count();
        assert_eq!(doorway_hits, 3, "juiced doorways should dominate");
        assert_eq!(after.results[0].rank, 1);
    }

    #[test]
    fn demotion_pushes_a_domain_out() {
        let (mut e, t, domains) = setup();
        let target = domains[32];
        e.set_juice(target, 0.5);
        assert!(e
            .serp(t, day(5), 10)
            .results
            .iter()
            .any(|r| r.domain == target));
        e.demote(target, 1.0);
        assert!(e
            .serp(t, day(5), 10)
            .results
            .iter()
            .all(|r| r.domain != target));
        // With only 33 candidates the demoted doc still shows in a full
        // listing, but dead last — i.e. out of any top-k that matters.
        let all = e.serp(t, day(5), 100);
        assert_eq!(all.results.last().unwrap().domain, target);
    }

    #[test]
    fn hacked_label_is_root_only_and_dated() {
        let mut e = SearchEngine::new(1, 0.0);
        let t = e.add_term(VerticalId(0), "x");
        let d = DomainId(0);
        e.index_page(t, url("http://site.com/"), d, 0.9, 0.9, day(0));
        e.index_page(
            t,
            url("http://site.com/shop/page.html"),
            d,
            0.9,
            0.9,
            day(0),
        );
        e.label_hacked(d, day(50));
        let before = e.serp(t, day(49), 10);
        assert!(before.results.iter().all(|r| !r.hacked_label));
        let after = e.serp(t, day(50), 10);
        let root = after.results.iter().find(|r| r.url.is_root_page()).unwrap();
        let sub = after
            .results
            .iter()
            .find(|r| !r.url.is_root_page())
            .unwrap();
        assert!(root.hacked_label, "root result must be labeled");
        assert!(
            !sub.hacked_label,
            "sub-page result must not be labeled (root-only policy)"
        );
        assert_eq!(e.hacked_since(d), Some(day(50)));
    }

    #[test]
    fn serp_is_deterministic_but_churns_across_days() {
        let (mut e, t, domains) = setup();
        for d in &domains[30..] {
            e.set_juice(*d, 0.2);
        }
        let a = e.serp(t, day(10), 100);
        let b = e.serp(t, day(10), 100);
        assert_eq!(a.results, b.results, "same day, same SERP");
        let c = e.serp(t, day(11), 100);
        let order_a: Vec<DomainId> = a.results.iter().map(|r| r.domain).collect();
        let order_c: Vec<DomainId> = c.results.iter().map(|r| r.domain).collect();
        assert_ne!(
            order_a, order_c,
            "jitter must churn the ordering day to day"
        );
    }

    #[test]
    fn apply_batch_matches_granular_setters() {
        let (mut batched, t, domains) = setup();
        let (mut granular, _, _) = setup();
        let target = domains[31];
        batched.apply_batch([
            EngineOp::SetJuice {
                domain: target,
                juice: 0.5,
            },
            EngineOp::Demote {
                domain: target,
                penalty: 0.2,
            },
            EngineOp::Demote {
                domain: target,
                penalty: 0.1,
            },
            EngineOp::LabelHacked {
                domain: target,
                day: day(40),
            },
            EngineOp::LabelHacked {
                domain: target,
                day: day(99),
            },
        ]);
        granular.set_juice(target, 0.5);
        granular.demote(target, 0.2);
        granular.demote(target, 0.1);
        granular.label_hacked(target, day(40));
        granular.label_hacked(target, day(99));
        assert_eq!(batched.juice(target), granular.juice(target));
        assert_eq!(batched.penalty(target), granular.penalty(target));
        // First writer wins on the label, exactly like the setter.
        assert_eq!(batched.hacked_since(target), Some(day(40)));
        assert_eq!(batched.hacked_since(target), granular.hacked_since(target));
        let a = batched.serp(t, day(50), 33);
        let b = granular.serp(t, day(50), 33);
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn pages_only_appear_after_indexing_day() {
        let mut e = SearchEngine::new(9, 0.0);
        let t = e.add_term(VerticalId(0), "x");
        e.index_page(t, url("http://new.com/"), DomainId(0), 0.9, 0.9, day(100));
        assert!(e.serp(t, day(99), 10).results.is_empty());
        assert_eq!(e.serp(t, day(100), 10).results.len(), 1);
    }

    #[test]
    fn deindex_removes_from_serps() {
        let mut e = SearchEngine::new(9, 0.0);
        let t = e.add_term(VerticalId(0), "x");
        let doc = e.index_page(t, url("http://gone.com/"), DomainId(0), 0.9, 0.9, day(0));
        assert_eq!(e.serp(t, day(1), 10).results.len(), 1);
        e.deindex_page(doc);
        assert!(e.serp(t, day(1), 10).results.is_empty());
    }

    #[test]
    fn site_query_lists_domain_pages() {
        let mut e = SearchEngine::new(9, 0.0);
        let t1 = e.add_term(VerticalId(0), "a");
        let t2 = e.add_term(VerticalId(0), "b");
        let d = DomainId(7);
        e.index_page(t1, url("http://door.com/?key=a"), d, 0.1, 0.9, day(0));
        e.index_page(t2, url("http://door.com/?key=b"), d, 0.1, 0.9, day(0));
        e.index_page(t1, url("http://other.com/"), DomainId(8), 0.5, 0.5, day(0));
        let pages = e.site_query(d);
        assert_eq!(pages.len(), 2);
        assert!(pages
            .iter()
            .all(|p| p.url.host == DomainName::parse("door.com").unwrap()));
    }

    #[test]
    fn snapshot_roundtrip_reproduces_serps_and_fingerprint() {
        let (mut e, t, domains) = setup();
        e.set_juice(domains[30], 0.5);
        e.demote(domains[31], 0.3);
        e.label_hacked(domains[32], day(40));
        e.deindex_page(DocId(5));
        let back = SearchEngine::decode(&e.encode()).unwrap();
        assert_eq!(back.state_fingerprint(), e.state_fingerprint());
        assert_eq!(back.doc_count(), e.doc_count());
        for d in [10u32, 50] {
            assert_eq!(
                back.serp(t, day(d), 33).results,
                e.serp(t, day(d), 33).results
            );
        }
        // Deindexed docs must stay deindexed after restore.
        assert!(!back
            .serp(t, day(10), 100)
            .results
            .iter()
            .any(|r| { r.domain == e.doc(DocId(5)).domain && r.url == e.doc(DocId(5)).url }));
    }

    #[test]
    fn rank_is_one_based_and_contiguous() {
        let (e, t, _) = setup();
        let serp = e.serp(t, day(3), 20);
        let ranks: Vec<u32> = serp.results.iter().map(|r| r.rank).collect();
        assert_eq!(ranks, (1..=20).collect::<Vec<u32>>());
    }

    #[test]
    fn epoch_survives_bitwise_noop_mutations() {
        let (mut e, _, domains) = setup();
        e.set_juice(domains[30], 0.5);
        let before = e.epoch();
        // Re-asserting the same juice, adding a zero penalty, and
        // repeating a hacked label are all observable no-ops: the epoch
        // (and its SERP cache) must survive them.
        e.label_hacked(domains[31], day(5));
        let labeled = e.epoch();
        assert!(!Arc::ptr_eq(&before, &labeled), "real label retires epoch");
        e.apply_batch([
            EngineOp::SetJuice {
                domain: domains[30],
                juice: 0.5,
            },
            EngineOp::Demote {
                domain: domains[30],
                penalty: 0.0,
            },
            EngineOp::LabelHacked {
                domain: domains[31],
                day: day(9),
            },
        ]);
        assert!(
            Arc::ptr_eq(&labeled, &e.epoch()),
            "bitwise no-op batch must keep the epoch"
        );
        e.set_juice(domains[30], 0.25);
        assert!(
            !Arc::ptr_eq(&labeled, &e.epoch()),
            "a changed juice level must publish a fresh epoch"
        );
    }

    #[test]
    fn epoch_cache_hits_once_per_term_day() {
        let (e, t, _) = setup();
        let epoch = e.epoch();
        e.take_serp_stats();
        let a = epoch.ranked(t, day(7), 10);
        let b = epoch.ranked(t, day(7), 10);
        let c = epoch.ranked(t, day(7), 4);
        assert_eq!(a.results(), b.results());
        assert_eq!(c.results(), &a.results()[..4], "prefix served from cache");
        let _ = epoch.ranked(t, day(8), 10); // different day: a miss
        let (queries, hits) = e.take_serp_stats();
        assert_eq!(queries, 4);
        assert_eq!(hits, 2, "repeat and prefix queries hit; new day misses");
        // A wider query than any cached build recomputes (counts as miss),
        // then re-serves from cache.
        let wide = epoch.ranked(t, day(7), 20);
        assert_eq!(wide.results().len(), 20);
        let again = epoch.ranked(t, day(7), 20);
        assert_eq!(again.results(), wide.results());
        let (queries, hits) = e.take_serp_stats();
        assert_eq!((queries, hits), (2, 1));
    }

    #[test]
    fn uncached_walk_matches_epoch_and_counts_nothing() {
        let (mut e, t, domains) = setup();
        e.set_juice(domains[30], 0.4);
        e.take_serp_stats();
        let hits = e.ranked_uncached(t, day(12), 15);
        assert_eq!(e.serp_stats(), (0, 0), "fingerprint probes are uncounted");
        let via_epoch = e.epoch().ranked(t, day(12), 15);
        assert_eq!(hits.as_slice(), via_epoch.results());
        let full = e.serp_full_scan(t, day(12), 15);
        for (h, r) in hits.iter().zip(&full.results) {
            assert_eq!(
                (h.rank, h.domain, h.hacked_label),
                (r.rank, r.domain, r.hacked_label)
            );
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use ss_types::VerticalId;

    proptest! {
        /// SERP results are always ordered by non-increasing score, and the
        /// top-k is a prefix of the full ordering.
        #[test]
        fn serps_are_sorted_and_prefix_stable(
            n_docs in 2usize..60,
            day in 0u32..300,
            k in 1usize..30,
        ) {
            let mut e = SearchEngine::new(7, 0.05);
            let t = e.add_term(VerticalId(0), "q");
            let mut docs = Vec::new();
            for i in 0..n_docs {
                let q = (i as f64 * 37.0 % 17.0) / 17.0;
                let r = (i as f64 * 11.0 % 13.0) / 13.0;
                docs.push(e.index_page(
                    t,
                    Url::parse(&format!("http://d{i}.com/")).unwrap(),
                    DomainId(i as u32),
                    q,
                    r,
                    SimDate::from_day_index(0),
                ));
            }
            let date = SimDate::from_day_index(day);
            let full = e.serp(t, date, n_docs);
            let scores: Vec<f64> =
                full.results.iter().map(|r| {
                    let doc = docs.iter().find(|d| e.doc(**d).domain == r.domain).unwrap();
                    e.score(*doc, date)
                }).collect();
            for w in scores.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-12, "scores not sorted: {scores:?}");
            }
            let topk = e.serp(t, date, k);
            for (a, b) in topk.results.iter().zip(&full.results) {
                prop_assert_eq!(a.domain, b.domain, "top-k must be a prefix");
            }
        }
    }
}

//! A Google-Suggest-style completion service.
//!
//! §4.1.1: for verticals the KEY campaign did not target, search terms were
//! chosen by "recursively fetch[ing] suggestions" for a brand and by
//! combining "commonly used adjective[s] (e.g., cheap, new, online, outlet,
//! sale or store)" with the brand name. The simulated service expands a
//! query into deterministic suggestions from the same grammar the
//! ecosystem's users and campaigns speak, so the two term-selection
//! methodologies (KEY-doorway extraction vs. Suggest) can be compared for
//! bias exactly as the paper does (experiment S3).

use rand::seq::SliceRandom;
use ss_types::market::{PRODUCT_NOUNS, TERM_ADJECTIVES};
use ss_types::rng::sub_rng;

/// The suggestion service.
#[derive(Debug, Clone)]
pub struct SuggestService {
    seed: u64,
    /// How many suggestions a single query returns (Google shows ~10).
    pub per_query: usize,
}

impl SuggestService {
    /// Creates a service. Suggestions are a pure function of `(seed, query)`.
    pub fn new(seed: u64) -> Self {
        SuggestService {
            seed,
            per_query: 10,
        }
    }

    /// Returns completions for `query` (a brand or brand+noun phrase).
    ///
    /// The grammar mirrors how real luxury-counterfeit queries look:
    /// `<brand> <noun>`, `<adjective> <brand>`, `<brand> <noun> <qualifier>`.
    pub fn suggest(&self, query: &str) -> Vec<String> {
        let query = query.trim().to_ascii_lowercase();
        if query.is_empty() {
            return Vec::new();
        }
        let mut rng = sub_rng(self.seed, &format!("suggest/{query}"));
        let qualifiers = [
            "sale",
            "outlet",
            "online",
            "for women",
            "for men",
            "uk",
            "free shipping",
            "2014",
        ];
        let mut pool: Vec<String> = Vec::new();
        for noun in PRODUCT_NOUNS {
            pool.push(format!("{query} {noun}"));
        }
        for adj in TERM_ADJECTIVES {
            // Only prepend adjectives when the query doesn't already start
            // with one (mirrors real autocomplete behaviour loosely).
            if !TERM_ADJECTIVES.iter().any(|a| query.starts_with(a)) {
                pool.push(format!("{adj} {query}"));
            }
        }
        for q in qualifiers {
            pool.push(format!("{query} {q}"));
        }
        pool.shuffle(&mut rng);
        pool.truncate(self.per_query);
        pool.sort();
        pool
    }

    /// The paper's recursive expansion: fetch suggestions for `brand`, then
    /// suggestions for each suggestion, plus adjective+brand compositions;
    /// dedup and return the full candidate set.
    pub fn expand_recursive(&self, brand: &str, depth: usize) -> Vec<String> {
        let mut seen: Vec<String> = Vec::new();
        let mut frontier = vec![brand.trim().to_ascii_lowercase()];
        for _ in 0..depth {
            let mut next = Vec::new();
            for q in &frontier {
                for s in self.suggest(q) {
                    if !seen.contains(&s) {
                        seen.push(s.clone());
                        next.push(s);
                    }
                }
            }
            frontier = next;
        }
        for adj in TERM_ADJECTIVES {
            let composed = format!("{adj} {}", brand.trim().to_ascii_lowercase());
            for s in self.suggest(&composed) {
                if !seen.contains(&s) {
                    seen.push(s);
                }
            }
            if !seen.contains(&composed) {
                seen.push(composed);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suggestions_are_deterministic_and_contain_query() {
        let s = SuggestService::new(7);
        let a = s.suggest("louis vuitton");
        let b = s.suggest("louis vuitton");
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|x| x.contains("louis vuitton")));
    }

    #[test]
    fn different_queries_differ() {
        let s = SuggestService::new(7);
        assert_ne!(s.suggest("uggs"), s.suggest("ed hardy"));
    }

    #[test]
    fn recursion_grows_the_candidate_set() {
        let s = SuggestService::new(7);
        let d1 = s.expand_recursive("uggs", 1);
        let d2 = s.expand_recursive("uggs", 2);
        assert!(d2.len() > d1.len(), "{} vs {}", d2.len(), d1.len());
        // Enough candidates to sample 100 terms per vertical from.
        assert!(d2.len() >= 100, "only {} candidates", d2.len());
    }

    #[test]
    fn adjective_compositions_present() {
        let s = SuggestService::new(7);
        let set = s.expand_recursive("moncler", 1);
        assert!(set.iter().any(|t| t.starts_with("cheap moncler")));
    }

    #[test]
    fn no_duplicate_candidates() {
        let s = SuggestService::new(3);
        let set = s.expand_recursive("nike", 2);
        let mut dedup = set.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), set.len());
    }
}

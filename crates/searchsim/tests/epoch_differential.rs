//! Differential harness for the query plane: the epoch's bounded
//! candidate walk must produce SERPs bit-identical to the reference
//! scan-and-sort (`serp_full_scan`, the pre-refactor algorithm) on
//! randomly generated worlds under random committed `EngineOp` batches,
//! with de-indexing, snapshot round-trips, and cache reuse thrown in.
//!
//! CI gates on this suite: a divergence here means the sorted-postings
//! maintenance or the early-exit bound broke ranking semantics.

use proptest::prelude::*;
use ss_search::{EngineOp, SearchEngine, Serp};
use ss_types::snapshot::Snapshot;
use ss_types::{DomainId, SimDate, TermId, Url, VerticalId};

/// A generated document: (term index, domain index, quality, relevance,
/// indexing day).
#[derive(Debug, Clone)]
struct GenDoc {
    term: usize,
    domain: u32,
    quality: f64,
    relevance: f64,
    day: u32,
}

fn gen_doc(n_terms: usize, n_domains: u32) -> impl Strategy<Value = GenDoc> {
    (
        0..n_terms,
        0..n_domains,
        0u32..=1000,
        0u32..=1000,
        0u32..200,
    )
        .prop_map(|(term, domain, q, r, day)| GenDoc {
            term,
            domain,
            quality: f64::from(q) / 1000.0,
            relevance: f64::from(r) / 1000.0,
            day,
        })
}

/// A generated ranking mutation (kind, domain index, magnitude).
fn gen_op(n_domains: u32) -> impl Strategy<Value = (u8, u32, u32)> {
    (0u8..3, 0..n_domains, 0u32..=100)
}

fn build(docs: &[GenDoc], n_terms: usize, jitter_amp: f64) -> SearchEngine {
    let mut e = SearchEngine::new(0xD1FF, jitter_amp);
    let terms: Vec<TermId> = (0..n_terms)
        .map(|i| e.add_term(VerticalId(0), &format!("term {i}")))
        .collect();
    for (i, d) in docs.iter().enumerate() {
        // A mix of root pages and doorway-style keyed sub-pages so the
        // root-only hacked-label policy is exercised both ways.
        let url = if i % 3 == 0 {
            format!("http://dom{}.com/", d.domain)
        } else {
            format!(
                "http://dom{}.com/page{i}.html?key=term+{}",
                d.domain, d.term
            )
        };
        e.index_page(
            terms[d.term],
            Url::parse(&url).unwrap(),
            DomainId(d.domain),
            d.quality,
            d.relevance,
            SimDate::from_day_index(d.day),
        );
    }
    e
}

fn to_op(kind: u8, domain: u32, mag: u32) -> EngineOp {
    let domain = DomainId(domain);
    match kind {
        0 => EngineOp::SetJuice {
            domain,
            juice: f64::from(mag) / 100.0,
        },
        1 => EngineOp::Demote {
            domain,
            penalty: f64::from(mag) / 200.0,
        },
        _ => EngineOp::LabelHacked {
            domain,
            day: SimDate::from_day_index(mag),
        },
    }
}

/// Exact SERP equality, field by field (rank, url, domain, label).
fn assert_serps_equal(walk: &Serp, scan: &Serp) {
    assert_eq!(
        walk.results, scan.results,
        "epoch walk diverged from full scan"
    );
}

proptest! {
    /// The tentpole invariant: after every committed op batch, the epoch
    /// walk and the reference full scan agree exactly — every rank, URL,
    /// and label — for assorted days and depths.
    #[test]
    fn epoch_walk_matches_full_scan_under_random_op_batches(
        docs in proptest::collection::vec(gen_doc(3, 24), 1..90),
        batches in proptest::collection::vec(
            proptest::collection::vec(gen_op(24), 0..12), 1..5),
        deindex in proptest::collection::vec(0usize..90, 0..6),
        jitter_choice in 0u8..3,
        probe_day in 0u32..240,
        k in 1usize..40,
    ) {
        let jitter_amp = [0.0, 0.05, 0.3][jitter_choice as usize];
        let mut e = build(&docs, 3, jitter_amp);
        for di in deindex {
            if di < docs.len() {
                e.deindex_page(ss_search::DocId(di as u32));
            }
        }
        for batch in batches {
            e.apply_batch(batch.into_iter().map(|(kind, d, m)| to_op(kind, d, m)));
            for t in 0..3 {
                let term = TermId::from_index(t);
                let day = SimDate::from_day_index(probe_day);
                assert_serps_equal(
                    &e.serp(term, day, k),
                    &e.serp_full_scan(term, day, k),
                );
                // Neighbouring days reuse the same epoch with a cold
                // cache key; a huge k exercises the exhausted path.
                let next = SimDate::from_day_index(probe_day + 1);
                assert_serps_equal(
                    &e.serp(term, next, k),
                    &e.serp_full_scan(term, next, k),
                );
                assert_serps_equal(
                    &e.serp(term, day, 1000),
                    &e.serp_full_scan(term, day, 1000),
                );
            }
        }
    }

    /// Snapshot round-trips rebuild the derived sorted postings exactly:
    /// decode-then-walk equals mutate-then-walk equals full scan.
    #[test]
    fn decoded_engine_walks_identically(
        docs in proptest::collection::vec(gen_doc(2, 16), 1..60),
        ops in proptest::collection::vec(gen_op(16), 0..16),
        probe_day in 0u32..240,
        k in 1usize..30,
    ) {
        let mut e = build(&docs, 2, 0.05);
        e.apply_batch(ops.into_iter().map(|(kind, d, m)| to_op(kind, d, m)));
        let back = SearchEngine::decode(&e.encode()).unwrap();
        assert_eq!(back.state_fingerprint(), e.state_fingerprint());
        for t in 0..2 {
            let term = TermId::from_index(t);
            let day = SimDate::from_day_index(probe_day);
            assert_serps_equal(&back.serp(term, day, k), &e.serp_full_scan(term, day, k));
        }
    }
}

/// Cache lifecycle across publishes: a changed op retires the epoch and
/// its cache; SERPs served after the republish reflect the new state and
/// still match the reference scan.
#[test]
fn republished_epoch_invalidates_cache_and_stays_exact() {
    let docs: Vec<GenDoc> = (0..40)
        .map(|i| GenDoc {
            term: i % 2,
            domain: (i % 10) as u32,
            quality: (i as f64) / 40.0,
            relevance: ((i * 7) % 40) as f64 / 40.0,
            day: 0,
        })
        .collect();
    let mut e = build(&docs, 2, 0.05);
    let day = SimDate::from_day_index(30);
    let t = TermId::from_index(0);

    let before = e.serp(t, day, 10);
    assert_serps_equal(&before, &e.serp_full_scan(t, day, 10));
    e.take_serp_stats();
    let _ = e.serp(t, day, 10);
    assert_eq!(e.take_serp_stats(), (1, 1), "second query hits the cache");

    // A real juice change publishes a fresh epoch: same (term, day) key
    // must now miss, recompute, and agree with the new reference.
    e.apply_batch([EngineOp::SetJuice {
        domain: DomainId(0),
        juice: 0.9,
    }]);
    let after = e.serp(t, day, 10);
    assert_eq!(e.take_serp_stats(), (1, 0), "republish empties the cache");
    assert_serps_equal(&after, &e.serp_full_scan(t, day, 10));
    assert_ne!(
        before.results, after.results,
        "the juice change must actually reshuffle this SERP"
    );

    // A bitwise no-op republish keeps the cache warm.
    e.take_serp_stats();
    e.apply_batch([EngineOp::SetJuice {
        domain: DomainId(0),
        juice: 0.9,
    }]);
    let again = e.serp(t, day, 10);
    assert_eq!(e.take_serp_stats(), (1, 1), "no-op batch keeps the cache");
    assert_eq!(again.results, after.results);
}

//! # ss-types
//!
//! Shared domain vocabulary for the `search-seizure` workspace, the Rust
//! reproduction of *"Search + Seizure: The Effectiveness of Interventions on
//! SEO Campaigns"* (IMC 2014).
//!
//! This crate deliberately has no knowledge of the simulator or the
//! measurement pipeline; it only defines the nouns every other crate speaks:
//!
//! * [`id`] — strongly-typed integer ids for campaigns, stores, domains,
//!   verticals, brands, terms and court cases;
//! * [`date`] — [`SimDate`](date::SimDate), a proleptic-Gregorian day counter
//!   anchored at the study epoch (2013-07-05), replacing a `chrono`
//!   dependency with ~100 audited lines;
//! * [`domain`] — validated DNS-ish domain names;
//! * [`url`] — a small, strict URL type and parser (scheme/host/path/query);
//! * [`intern`] — a shared string-interning table with dense `u32` ids,
//!   used by the crawl database and the simulator's component tables;
//! * [`rng`] — deterministic sub-seed derivation so one scenario seed
//!   reproduces the whole world bit-for-bit;
//! * [`market`] — the paper's 16 luxury verticals, the brands behind them,
//!   and the 52 SEO campaign names of Table 2;
//! * [`error`] — the shared error enum.
//!
//! Everything here is `#![forbid(unsafe_code)]`, allocation-light, and
//! exhaustively unit- and property-tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod date;
pub mod domain;
pub mod error;
pub mod id;
pub mod intern;
pub mod market;
pub mod rng;
pub mod snapshot;
pub mod url;

pub use date::SimDate;
pub use domain::DomainName;
pub use error::{Error, Result};
pub use id::{
    BrandId, CampaignId, CaseId, DomainId, DoorwayId, FirmId, LocaleId, StoreId, TermId, VerticalId,
};
pub use intern::Interner;
pub use snapshot::{Snapshot, SnapshotError};
pub use url::Url;

/// First day of the simulation epoch: 2013-07-05 (start of the supplier
/// shipment record window in §4.5 of the paper).
pub const EPOCH_YMD: (i32, u32, u32) = (2013, 7, 5);

/// First day of the crawl window, 2013-11-13 (§4.1), as a day offset from
/// [`EPOCH_YMD`].
pub const CRAWL_START_DAY: u32 = 131;

/// Last day of the crawl window, 2014-07-15 (§4.1), inclusive.
pub const CRAWL_END_DAY: u32 = 375;

/// Number of days in the crawl window (eight months, inclusive).
pub const CRAWL_DAYS: u32 = CRAWL_END_DAY - CRAWL_START_DAY + 1;

/// Last day of the supplier shipment record window, 2014-03-28 (§4.5).
pub const SUPPLIER_END_DAY: u32 = 266;

/// End of the Figure 5 AWStats case-study window, 2014-08-31.
pub const CASE_STUDY_END_DAY: u32 = 422;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crawl_window_matches_paper_dates() {
        let start = SimDate::from_ymd(2013, 11, 13).unwrap();
        let end = SimDate::from_ymd(2014, 7, 15).unwrap();
        assert_eq!(start.day_index(), CRAWL_START_DAY);
        assert_eq!(end.day_index(), CRAWL_END_DAY);
        assert_eq!(CRAWL_DAYS, 245);
    }

    #[test]
    fn supplier_window_matches_paper_dates() {
        assert_eq!(
            SimDate::from_ymd(2014, 3, 28).unwrap().day_index(),
            SUPPLIER_END_DAY
        );
        assert_eq!(
            SimDate::from_ymd(2014, 8, 31).unwrap().day_index(),
            CASE_STUDY_END_DAY
        );
    }
}

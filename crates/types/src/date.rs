//! Simulation dates.
//!
//! The whole study lives inside a ~14 month window, so instead of pulling in
//! `chrono` we keep a single `u32` day counter anchored at the epoch
//! 2013-07-05 ([`crate::EPOCH_YMD`]) plus a small, well-tested proleptic
//! Gregorian converter for pretty-printing and for translating the paper's
//! calendar dates into day indices.

use std::fmt;

use crate::error::{Error, Result};

/// Days-per-month table for non-leap years.
const MONTH_LEN: [u32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Returns `true` when `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` (1-based) of `year`.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    if month == 2 && is_leap_year(year) {
        29
    } else {
        MONTH_LEN[(month - 1) as usize]
    }
}

/// Days from the epoch 0001-01-01 to the start of `year` (proleptic
/// Gregorian, "rata die" style).
fn days_before_year(year: i32) -> i64 {
    let y = i64::from(year) - 1;
    y * 365 + y / 4 - y / 100 + y / 400
}

/// Days from 0001-01-01 to the given calendar date ("rata die" number - 1).
fn rata_die(year: i32, month: u32, day: u32) -> i64 {
    let mut doy = i64::from(day) - 1;
    for m in 1..month {
        doy += i64::from(days_in_month(year, m));
    }
    days_before_year(year) + doy
}

/// Rata-die value of the simulation epoch, 2013-07-05.
fn epoch_rd() -> i64 {
    rata_die(crate::EPOCH_YMD.0, crate::EPOCH_YMD.1, crate::EPOCH_YMD.2)
}

/// A date inside the simulation, stored as a day offset from 2013-07-05.
///
/// `SimDate` is `Copy`, totally ordered, and cheap to hash; all simulator
/// state is keyed by it. Conversion to and from calendar dates is provided
/// for reporting and for encoding the paper's milestones.
///
/// ```
/// use ss_types::SimDate;
/// let d = SimDate::from_ymd(2013, 11, 13).unwrap();
/// assert_eq!(d.day_index(), 131);
/// assert_eq!(d.to_string(), "2013-11-13");
/// assert_eq!((d + 1).to_string(), "2013-11-14");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDate(u32);

impl SimDate {
    /// The simulation epoch itself (day 0, 2013-07-05).
    pub const EPOCH: SimDate = SimDate(0);

    /// Builds a date directly from a day offset.
    pub const fn from_day_index(day: u32) -> Self {
        SimDate(day)
    }

    /// Builds a date from a calendar `(year, month, day)` triple.
    ///
    /// Fails when the triple is not a valid Gregorian date or falls before
    /// the simulation epoch.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Self> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(Error::InvalidDate { year, month, day });
        }
        let offset = rata_die(year, month, day) - epoch_rd();
        if offset < 0 {
            return Err(Error::InvalidDate { year, month, day });
        }
        Ok(SimDate(offset as u32))
    }

    /// Day offset from the epoch.
    pub const fn day_index(self) -> u32 {
        self.0
    }

    /// Calendar `(year, month, day)` of this date.
    pub fn ymd(self) -> (i32, u32, u32) {
        let mut rd = epoch_rd() + i64::from(self.0);
        // Estimate the year, then correct; rd counts days since 0001-01-01.
        let mut year = ((rd * 400) / 146_097) as i32 + 1;
        while days_before_year(year + 1) <= rd {
            year += 1;
        }
        while days_before_year(year) > rd {
            year -= 1;
        }
        rd -= days_before_year(year);
        let mut month = 1;
        while rd >= i64::from(days_in_month(year, month)) {
            rd -= i64::from(days_in_month(year, month));
            month += 1;
        }
        (year, month, rd as u32 + 1)
    }

    /// Saturating subtraction of whole days.
    pub fn saturating_sub_days(self, days: u32) -> Self {
        SimDate(self.0.saturating_sub(days))
    }

    /// Number of days from `earlier` to `self` (negative when `self` is
    /// before `earlier`).
    pub fn days_since(self, earlier: SimDate) -> i64 {
        i64::from(self.0) - i64::from(earlier.0)
    }

    /// ISO-week-ish bucket: the index of the 7-day bin this date falls in,
    /// counted from the epoch. Used for weekly order-sampling schedules.
    pub fn week_index(self) -> u32 {
        self.0 / 7
    }

    /// Iterator over every date in `[start, end]` inclusive.
    pub fn range_inclusive(start: SimDate, end: SimDate) -> impl Iterator<Item = SimDate> {
        (start.0..=end.0).map(SimDate)
    }
}

impl fmt::Display for SimDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl std::ops::Add<u32> for SimDate {
    type Output = SimDate;
    fn add(self, rhs: u32) -> SimDate {
        SimDate(self.0 + rhs)
    }
}

impl std::ops::Sub<SimDate> for SimDate {
    type Output = i64;
    fn sub(self, rhs: SimDate) -> i64 {
        self.days_since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_roundtrips() {
        assert_eq!(SimDate::EPOCH.ymd(), (2013, 7, 5));
        assert_eq!(SimDate::from_ymd(2013, 7, 5).unwrap(), SimDate::EPOCH);
    }

    #[test]
    fn known_paper_milestones() {
        let cases = [
            ((2013, 7, 5), 0),
            ((2013, 11, 13), 131), // crawl start
            ((2013, 11, 29), 147), // first test order
            ((2014, 3, 28), 266),  // supplier record end
            ((2014, 7, 15), 375),  // crawl end
            ((2014, 8, 31), 422),  // Fig. 5 window end
        ];
        for ((y, m, d), idx) in cases {
            let date = SimDate::from_ymd(y, m, d).unwrap();
            assert_eq!(date.day_index(), idx, "{y}-{m}-{d}");
            assert_eq!(date.ymd(), (y, m, d));
        }
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(SimDate::from_ymd(2014, 2, 29).is_err()); // not a leap year
        assert!(SimDate::from_ymd(2014, 13, 1).is_err());
        assert!(SimDate::from_ymd(2014, 0, 1).is_err());
        assert!(SimDate::from_ymd(2014, 6, 31).is_err());
        assert!(SimDate::from_ymd(2013, 7, 4).is_err()); // pre-epoch
    }

    #[test]
    fn leap_february_accepted() {
        // 2016 is a leap year inside u32 range from the epoch.
        let d = SimDate::from_ymd(2016, 2, 29).unwrap();
        assert_eq!(d.ymd(), (2016, 2, 29));
    }

    #[test]
    fn display_formats_iso() {
        assert_eq!(SimDate::from_day_index(131).to_string(), "2013-11-13");
    }

    #[test]
    fn week_index_buckets_by_seven() {
        assert_eq!(SimDate::from_day_index(0).week_index(), 0);
        assert_eq!(SimDate::from_day_index(6).week_index(), 0);
        assert_eq!(SimDate::from_day_index(7).week_index(), 1);
    }

    #[test]
    fn range_inclusive_counts() {
        let n = SimDate::range_inclusive(
            SimDate::from_day_index(crate::CRAWL_START_DAY),
            SimDate::from_day_index(crate::CRAWL_END_DAY),
        )
        .count();
        assert_eq!(n as u32, crate::CRAWL_DAYS);
    }

    proptest! {
        #[test]
        fn ymd_roundtrip(day in 0u32..200_000) {
            let date = SimDate::from_day_index(day);
            let (y, m, d) = date.ymd();
            prop_assert_eq!(SimDate::from_ymd(y, m, d).unwrap(), date);
        }

        #[test]
        fn successive_days_are_calendar_successors(day in 0u32..200_000) {
            let (y1, m1, d1) = SimDate::from_day_index(day).ymd();
            let (y2, m2, d2) = SimDate::from_day_index(day + 1).ymd();
            // Either the day advances within the month, or we rolled over.
            if d2 != d1 + 1 {
                prop_assert_eq!(d2, 1);
                if m2 != m1 + 1 {
                    prop_assert_eq!((m1, m2), (12, 1));
                    prop_assert_eq!(y2, y1 + 1);
                } else {
                    prop_assert_eq!(y2, y1);
                }
                prop_assert_eq!(d1, days_in_month(y1, m1));
            } else {
                prop_assert_eq!((y1, m1), (y2, m2));
            }
        }
    }
}

//! The state plane's binary codec: a versioned snapshot format with
//! length-prefixed sections and a trailing integrity hash.
//!
//! Every stateful subsystem that participates in run checkpointing
//! implements [`Snapshot`]: the ECS tables in the ecosystem simulator, the
//! search engine, the columnar crawl database, the telemetry registry, and
//! the run-level checkpoint container itself. The wire format is
//! deliberately simple and fully self-describing at the frame level:
//!
//! ```text
//! +--------+---------------------+---------+----------+------+--------+
//! | "SSNP" | tag (u16 len + str) | version | body_len | body | fnv64  |
//! +--------+---------------------+---------+----------+------+--------+
//! ```
//!
//! * the 4-byte magic rejects non-checkpoint files immediately;
//! * the **tag** names the snapshotted type, so a `World` frame can never
//!   be decoded as a `CrawlDb` frame;
//! * the **version** is per-type; bump it whenever the body layout
//!   changes. Decoders reject mismatched versions with a typed error —
//!   there is no cross-version migration, a checkpoint is only readable
//!   by the code revision (±compatible layout) that wrote it;
//! * `body_len` length-prefixes the body, so nested frames can be skipped
//!   or extracted without decoding them;
//! * the trailing hash is FNV-1a over every preceding byte: flipped bits
//!   and truncations surface as [`SnapshotError::IntegrityMismatch`] /
//!   [`SnapshotError::Truncated`], never as a panic or a silently wrong
//!   world.
//!
//! All integers are little-endian. Floats are encoded via their IEEE-754
//! bit patterns so round-trips are exact. Nothing here allocates on the
//! read path beyond the values being built.

use std::fmt;

/// Errors a snapshot decode can produce. Corrupted, truncated, or
/// mismatched inputs are always reported through this enum — decoding
/// never panics on hostile bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input ended before the structure did.
    Truncated,
    /// The leading magic bytes are not `SSNP`.
    BadMagic,
    /// The frame's tag names a different type than the decoder expects.
    WrongTag {
        /// Tag the decoder expected.
        expected: &'static str,
        /// Tag found in the frame.
        found: String,
    },
    /// The frame's format version differs from the decoder's.
    WrongVersion {
        /// The frame's tag.
        tag: &'static str,
        /// Version the decoder expects.
        expected: u16,
        /// Version found in the frame.
        found: u16,
    },
    /// The trailing integrity hash does not match the frame contents.
    IntegrityMismatch,
    /// The bytes parsed but describe an impossible value.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::WrongTag { expected, found } => {
                write!(
                    f,
                    "snapshot tag mismatch: expected {expected:?}, found {found:?}"
                )
            }
            SnapshotError::WrongVersion {
                tag,
                expected,
                found,
            } => write!(
                f,
                "snapshot {tag:?} version mismatch: expected v{expected}, found v{found}"
            ),
            SnapshotError::IntegrityMismatch => {
                write!(f, "snapshot integrity hash mismatch (corrupted bytes)")
            }
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over a byte slice — the integrity hash of the frame format and
/// the workhorse of the `state_fingerprint` helpers.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Folds one more word into a running FNV-style fingerprint. Used by the
/// `state_fingerprint`/`run_fingerprint` family so every layer folds its
/// state the same way.
pub fn fold_fingerprint(h: u64, word: u64) -> u64 {
    let mut h = h ^ word.rotate_left(23);
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    h ^ (h >> 29)
}

const MAGIC: &[u8; 4] = b"SSNP";

/// Builds one full self-describing frame — magic, tag, version, body
/// length, trailing integrity hash — around body bytes produced by
/// `write_body`. This is exactly the layout [`Snapshot::encode`] emits;
/// it exists separately so a *borrowed view* of a large structure (the
/// run-level checkpoint is assembled from `&World`, `&Crawler`, …) can be
/// framed without first constructing the owned decode-side type.
pub fn encode_framed(tag: &str, version: u16, write_body: impl FnOnce(&mut Writer)) -> Vec<u8> {
    let mut body = Writer::new();
    write_body(&mut body);
    let body = body.into_bytes();
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.put_u16(tag.len() as u16);
    w.buf.extend_from_slice(tag.as_bytes());
    w.put_u16(version);
    w.put_u64(body.len() as u64);
    w.buf.extend_from_slice(&body);
    let hash = fnv1a64(&w.buf);
    w.put_u64(hash);
    w.into_bytes()
}

/// An append-only byte sink with typed little-endian writers.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` via its IEEE-754 bit pattern (exact round-trip,
    /// NaN payloads included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes a collection length (as `u64`).
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_len(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Writes a [`crate::SimDate`] as its day index.
    pub fn put_date(&mut self, d: crate::SimDate) {
        self.put_u32(d.day_index());
    }

    /// Writes an `Option` as a presence byte plus the value.
    pub fn put_opt<T>(&mut self, v: Option<&T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            Some(v) => {
                self.put_bool(true);
                f(self, v);
            }
            None => self.put_bool(false),
        }
    }

    /// Writes a slice as a length prefix plus each element.
    pub fn put_seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.put_len(items.len());
        for item in items {
            f(self, item);
        }
    }

    /// Embeds another snapshot as a length-prefixed nested frame. The
    /// nested frame keeps its own tag/version/integrity hash, so nested
    /// corruption is attributed to the inner type.
    pub fn put_nested<T: Snapshot>(&mut self, v: &T) {
        self.put_bytes(&v.encode());
    }
}

/// A cursor over snapshot bytes with typed little-endian readers. Every
/// accessor returns [`SnapshotError::Truncated`] instead of panicking
/// when the input runs out.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over raw body bytes.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `u128`.
    pub fn get_u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is corrupt.
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("bool byte {b}"))),
        }
    }

    /// Reads a collection length, bounds-checked against the bytes left
    /// (each element needs at least one byte) so hostile lengths cannot
    /// trigger enormous allocations.
    pub fn get_len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.get_u64()?;
        if n > self.remaining() as u64 {
            return Err(SnapshotError::Truncated);
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapshotError> {
        let n = self.get_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("non-UTF-8 string".into()))
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.get_len()?;
        self.take(n)
    }

    /// Reads a [`crate::SimDate`].
    pub fn get_date(&mut self) -> Result<crate::SimDate, SnapshotError> {
        Ok(crate::SimDate::from_day_index(self.get_u32()?))
    }

    /// Reads an `Option` written by [`Writer::put_opt`].
    pub fn get_opt<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, SnapshotError>,
    ) -> Result<Option<T>, SnapshotError> {
        if self.get_bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a sequence written by [`Writer::put_seq`].
    pub fn get_seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, SnapshotError>,
    ) -> Result<Vec<T>, SnapshotError> {
        let n = self.get_len()?;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Reads a nested frame written by [`Writer::put_nested`].
    pub fn get_nested<T: Snapshot>(&mut self) -> Result<T, SnapshotError> {
        let bytes = self.get_bytes()?;
        T::decode(bytes)
    }
}

/// Versioned binary snapshot of a type's complete state.
///
/// Implementors provide the body codec; the trait wraps it in the framed
/// format (magic, tag, version, length, integrity hash). The contract —
/// pinned by per-crate round-trip property tests — is that
/// `decode(encode(x))` reconstructs a value observably identical to `x`:
/// same fingerprints, same downstream behaviour, bit-identical replay.
pub trait Snapshot: Sized {
    /// Type tag baked into the frame header.
    const TAG: &'static str;
    /// Body format version; bump on any layout change.
    const VERSION: u16;

    /// Serializes the body (no framing).
    fn write_body(&self, w: &mut Writer);

    /// Deserializes the body (no framing).
    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError>;

    /// Serializes the full self-describing frame.
    fn encode(&self) -> Vec<u8> {
        encode_framed(Self::TAG, Self::VERSION, |w| self.write_body(w))
    }

    /// Parses and validates a frame, then decodes the body. All failure
    /// modes are typed [`SnapshotError`]s.
    fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        // Integrity first: the hash covers the header too, so header
        // corruption is reported as corruption, not as a confusing tag or
        // version mismatch.
        if bytes.len() < MAGIC.len() + 8 {
            return Err(SnapshotError::Truncated);
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let (framed, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        if fnv1a64(framed) != stored {
            return Err(SnapshotError::IntegrityMismatch);
        }
        let mut r = Reader::new(&framed[MAGIC.len()..]);
        let tag_len = r.get_u16()? as usize;
        let tag_bytes = r.take(tag_len)?;
        let tag = std::str::from_utf8(tag_bytes)
            .map_err(|_| SnapshotError::Corrupt("non-UTF-8 tag".into()))?;
        if tag != Self::TAG {
            return Err(SnapshotError::WrongTag {
                expected: Self::TAG,
                found: tag.to_owned(),
            });
        }
        let version = r.get_u16()?;
        if version != Self::VERSION {
            return Err(SnapshotError::WrongVersion {
                tag: Self::TAG,
                expected: Self::VERSION,
                found: version,
            });
        }
        let body_len = r.get_u64()? as usize;
        if body_len != r.remaining() {
            return Err(SnapshotError::Corrupt(format!(
                "body length {body_len} != {} bytes present",
                r.remaining()
            )));
        }
        let value = Self::read_body(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after body",
                r.remaining()
            )));
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Demo {
        a: u64,
        s: String,
        xs: Vec<u32>,
        f: f64,
        maybe: Option<String>,
    }

    impl Snapshot for Demo {
        const TAG: &'static str = "demo";
        const VERSION: u16 = 3;

        fn write_body(&self, w: &mut Writer) {
            w.put_u64(self.a);
            w.put_str(&self.s);
            w.put_seq(&self.xs, |w, x| w.put_u32(*x));
            w.put_f64(self.f);
            w.put_opt(self.maybe.as_ref(), |w, s| w.put_str(s));
        }

        fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
            Ok(Demo {
                a: r.get_u64()?,
                s: r.get_str()?,
                xs: r.get_seq(|r| r.get_u32())?,
                f: r.get_f64()?,
                maybe: r.get_opt(|r| r.get_str())?,
            })
        }
    }

    fn demo() -> Demo {
        Demo {
            a: 0xdead_beef,
            s: "söme ütf-8".into(),
            xs: vec![1, 2, 3, u32::MAX],
            f: -0.125,
            maybe: Some("x".into()),
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let d = demo();
        assert_eq!(Demo::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn encode_framed_matches_trait_encode() {
        let d = demo();
        let framed = encode_framed(Demo::TAG, Demo::VERSION, |w| d.write_body(w));
        assert_eq!(framed, d.encode());
        assert_eq!(Demo::decode(&framed).unwrap(), d);
    }

    #[test]
    fn every_corruption_mode_is_typed() {
        let bytes = demo().encode();
        // Truncations at every prefix length: typed error, never panic.
        for n in 0..bytes.len() {
            let err = Demo::decode(&bytes[..n]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated | SnapshotError::IntegrityMismatch
                ),
                "prefix {n}: {err}"
            );
        }
        // Any single flipped bit must be caught by the integrity hash.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(Demo::decode(&bad).is_err(), "flip at {i} went unnoticed");
        }
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        // (re-hash so the magic check, not the integrity check, fires)
        let n = bad.len();
        let h = fnv1a64(&bad[..n - 8]);
        bad[n - 8..].copy_from_slice(&h.to_le_bytes());
        assert_eq!(Demo::decode(&bad).unwrap_err(), SnapshotError::BadMagic);
    }

    #[test]
    fn wrong_tag_and_version_are_rejected() {
        #[derive(Debug)]
        struct Other(u64);
        impl Snapshot for Other {
            const TAG: &'static str = "other";
            const VERSION: u16 = 3;
            fn write_body(&self, w: &mut Writer) {
                w.put_u64(self.0);
            }
            fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
                Ok(Other(r.get_u64()?))
            }
        }
        #[derive(Debug)]
        struct DemoV4;
        impl Snapshot for DemoV4 {
            const TAG: &'static str = "demo";
            const VERSION: u16 = 4;
            fn write_body(&self, _w: &mut Writer) {}
            fn read_body(_r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
                Ok(DemoV4)
            }
        }
        let frame = Other(7).encode();
        assert!(matches!(
            Demo::decode(&frame).unwrap_err(),
            SnapshotError::WrongTag {
                expected: "demo",
                ..
            }
        ));
        let frame = demo().encode();
        assert!(matches!(
            DemoV4::decode(&frame).unwrap_err(),
            SnapshotError::WrongVersion {
                tag: "demo",
                expected: 4,
                found: 3
            }
        ));
    }

    #[test]
    fn nested_frames_carry_their_own_integrity() {
        let mut w = Writer::new();
        w.put_nested(&demo());
        w.put_u8(9);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back: Demo = r.get_nested().unwrap();
        assert_eq!(back, demo());
        assert_eq!(r.get_u8().unwrap(), 9);
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A length claiming 2^60 elements must fail fast, not OOM.
        let mut w = Writer::new();
        w.put_u64(1 << 60);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_len().unwrap_err(), SnapshotError::Truncated);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// A random structured payload exercising every primitive the codec
    /// offers, including NaN-adjacent float bit patterns and non-ASCII
    /// strings.
    #[derive(Debug, Clone, PartialEq)]
    struct Blob {
        n: u64,
        i: i64,
        f: f64,
        flag: bool,
        s: String,
        xs: Vec<u32>,
        maybe: Option<String>,
    }

    impl Snapshot for Blob {
        const TAG: &'static str = "prop-blob";
        const VERSION: u16 = 1;
        fn write_body(&self, w: &mut Writer) {
            w.put_u64(self.n);
            w.put_i64(self.i);
            w.put_f64(self.f);
            w.put_bool(self.flag);
            w.put_str(&self.s);
            w.put_seq(&self.xs, |w, x| w.put_u32(*x));
            w.put_opt(self.maybe.as_ref(), |w, s| w.put_str(s));
        }
        fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
            Ok(Blob {
                n: r.get_u64()?,
                i: r.get_i64()?,
                f: r.get_f64()?,
                flag: r.get_bool()?,
                s: r.get_str()?,
                xs: r.get_seq(|r| r.get_u32())?,
                maybe: r.get_opt(|r| r.get_str())?,
            })
        }
    }

    fn blob_strategy() -> impl Strategy<Value = Blob> {
        (
            (
                any::<u64>(),
                any::<i64>(),
                any::<u64>(), // float travels as raw bits: cover every pattern
                any::<bool>(),
            ),
            (
                "[a-zA-Zéß日本0-9 ]{0,24}",
                proptest::collection::vec(any::<u32>(), 0..32),
                "[a-z]{0,8}",
                any::<bool>(),
            ),
        )
            .prop_map(|((n, i, fbits, flag), (s, xs, opt_s, some))| Blob {
                n,
                i,
                f: f64::from_bits(fbits),
                flag,
                s,
                xs,
                maybe: some.then_some(opt_s),
            })
    }

    proptest! {
        /// encode → decode is the identity on arbitrary payloads (floats
        /// compared by bit pattern so NaNs round-trip too).
        #[test]
        fn encode_decode_roundtrips(blob in blob_strategy()) {
            let back = Blob::decode(&blob.encode()).expect("decodes");
            prop_assert_eq!(back.n, blob.n);
            prop_assert_eq!(back.i, blob.i);
            prop_assert_eq!(back.f.to_bits(), blob.f.to_bits());
            prop_assert_eq!(back.flag, blob.flag);
            prop_assert_eq!(back.s, blob.s);
            prop_assert_eq!(back.xs, blob.xs);
            prop_assert_eq!(back.maybe, blob.maybe);
        }

        /// Any single-bit corruption anywhere in the frame is rejected
        /// with a typed error — the trailing hash leaves no blind spot.
        #[test]
        fn any_bit_flip_is_rejected(blob in blob_strategy(), byte_frac in 0.0f64..1.0, bit in 0u8..8) {
            let mut bytes = blob.encode();
            let idx = ((bytes.len() - 1) as f64 * byte_frac) as usize;
            bytes[idx] ^= 1 << bit;
            prop_assert!(Blob::decode(&bytes).is_err(), "flip at byte {} bit {} accepted", idx, bit);
        }

        /// Any truncation is rejected with a typed error, never a panic.
        #[test]
        fn any_truncation_is_rejected(blob in blob_strategy(), frac in 0.0f64..1.0) {
            let bytes = blob.encode();
            let n = (bytes.len() as f64 * frac) as usize;
            prop_assert!(n >= bytes.len() || Blob::decode(&bytes[..n]).is_err());
        }
    }
}

//! Validated domain names.
//!
//! The simulator registers tens of thousands of synthetic domains (doorways,
//! storefronts, legitimate sites, seizure-notice hosts). A [`DomainName`] is
//! a lower-cased, dot-separated sequence of LDH labels — the subset of real
//! DNS syntax the study needs. Validation up front means the crawler, the
//! hosting registry and the seizure court documents can all trust the string.

use std::fmt;

use crate::error::{Error, Result};

/// A validated, normalized (lower-case) domain name such as
/// `cocovipbags.com`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainName(String);

impl DomainName {
    /// Maximum total length we accept (the DNS limit is 253).
    pub const MAX_LEN: usize = 253;
    /// Maximum label length (DNS limit).
    pub const MAX_LABEL: usize = 63;

    /// Parses and normalizes a domain name.
    ///
    /// Rules enforced: at least two labels, every label 1–63 chars of
    /// `[a-z0-9-]`, no leading/trailing hyphen in a label, total ≤ 253
    /// bytes, final label (TLD) alphabetic.
    pub fn parse(s: &str) -> Result<Self> {
        let lowered = s.trim().to_ascii_lowercase();
        if lowered.is_empty() || lowered.len() > Self::MAX_LEN {
            return Err(Error::InvalidDomain(s.into()));
        }
        let labels: Vec<&str> = lowered.split('.').collect();
        if labels.len() < 2 {
            return Err(Error::InvalidDomain(s.into()));
        }
        for label in &labels {
            let ok = !label.is_empty()
                && label.len() <= Self::MAX_LABEL
                && label
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-')
                && !label.starts_with('-')
                && !label.ends_with('-');
            if !ok {
                return Err(Error::InvalidDomain(s.into()));
            }
        }
        let tld = labels.last().expect("at least two labels");
        if !tld.bytes().all(|b| b.is_ascii_alphabetic()) {
            return Err(Error::InvalidDomain(s.into()));
        }
        Ok(DomainName(lowered))
    }

    /// The normalized name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The registrable "root" of the domain: its last two labels.
    ///
    /// Google's "hacked" label applies to the *root* of a site (§5.2.2); the
    /// simulator and the label-coverage analysis both key on this.
    pub fn root(&self) -> &str {
        let mut dots = self.0.rmatch_indices('.').map(|(i, _)| i);
        let _tld_dot = dots.next();
        match dots.next() {
            Some(i) => &self.0[i + 1..],
            None => &self.0,
        }
    }

    /// Whether this name is a subdomain (has more than two labels).
    pub fn is_subdomain(&self) -> bool {
        self.0.bytes().filter(|&b| b == b'.').count() > 1
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for DomainName {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        DomainName::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn accepts_typical_names() {
        for s in [
            "example.com",
            "cocovipbags.com",
            "shop.example.co",
            "a-b.example.org",
            "EXAMPLE.COM",
        ] {
            let d = DomainName::parse(s).unwrap();
            assert_eq!(d.as_str(), s.to_ascii_lowercase());
        }
    }

    #[test]
    fn rejects_bad_names() {
        for s in [
            "",
            "nodots",
            ".com",
            "a..com",
            "-bad.com",
            "bad-.com",
            "bad.c0m1.999",
            "sp ace.com",
            "under_score.com",
        ] {
            assert!(DomainName::parse(s).is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn root_strips_subdomains() {
        let d = DomainName::parse("blog.shop.example.com").unwrap();
        assert_eq!(d.root(), "example.com");
        assert!(d.is_subdomain());
        let r = DomainName::parse("example.com").unwrap();
        assert_eq!(r.root(), "example.com");
        assert!(!r.is_subdomain());
    }

    proptest! {
        #[test]
        fn parse_is_idempotent(label in "[a-z0-9]{1,10}", tld in "[a-z]{2,4}") {
            let s = format!("{label}.{tld}");
            let d = DomainName::parse(&s).unwrap();
            let d2 = DomainName::parse(d.as_str()).unwrap();
            prop_assert_eq!(d, d2);
        }
    }
}

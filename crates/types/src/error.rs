//! The shared error type.
//!
//! Following the guides' "simplicity over cleverness" rule this is one plain
//! enum with `Display`/`Error` impls — no error-derive dependency.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the shared type layer and its direct consumers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A `(year, month, day)` triple that is not a valid date on or after
    /// the simulation epoch.
    InvalidDate {
        /// Year component of the rejected triple.
        year: i32,
        /// Month component of the rejected triple.
        month: u32,
        /// Day component of the rejected triple.
        day: u32,
    },
    /// A string that does not parse as a domain name.
    InvalidDomain(String),
    /// A string that does not parse as a URL.
    InvalidUrl(String),
    /// A lookup for an entity id that was never registered.
    UnknownEntity(String),
    /// A configuration value outside its legal range.
    InvalidConfig(String),
    /// A run checkpoint could not be saved, loaded, or applied (I/O
    /// failure, frame corruption, or a config mismatch at resume).
    Checkpoint(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidDate { year, month, day } => {
                write!(f, "invalid simulation date {year:04}-{month:02}-{day:02}")
            }
            Error::InvalidDomain(s) => write!(f, "invalid domain name: {s:?}"),
            Error::InvalidUrl(s) => write!(f, "invalid URL: {s:?}"),
            Error::UnknownEntity(s) => write!(f, "unknown entity: {s}"),
            Error::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
            Error::Checkpoint(s) => write!(f, "checkpoint error: {s}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = Error::InvalidDate {
            year: 2014,
            month: 2,
            day: 30,
        };
        assert_eq!(e.to_string(), "invalid simulation date 2014-02-30");
        assert!(Error::InvalidUrl("x".into()).to_string().contains("URL"));
    }
}

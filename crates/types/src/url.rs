//! A small, strict URL type.
//!
//! The crawler extracts search terms from doorway URL paths (§4.1.1, e.g.
//! `http://doorway.com/?key=cheap+beats+by+dre`), follows redirect chains,
//! and issues `site:` queries — all of which need structured access to
//! scheme, host, path and query. This is a deliberately small subset of a
//! full URL parser: `http`/`https`, a validated [`DomainName`] host, an
//! absolute path, and an optional `k=v&k=v` query string.

use std::fmt;

use crate::domain::DomainName;
use crate::error::{Error, Result};

/// URL scheme; the simulated web only speaks HTTP(S).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Plain HTTP.
    Http,
    /// TLS HTTP. Matters for referrer semantics: HTTPS→HTTP transitions
    /// strip the referrer header (§5.2.3 footnote 5).
    Https,
}

impl Scheme {
    /// The scheme as it appears before `://`.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

/// A parsed absolute URL: `scheme://host/path?query`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Url {
    /// URL scheme.
    pub scheme: Scheme,
    /// Host domain.
    pub host: DomainName,
    /// Absolute path, always beginning with `/`.
    pub path: String,
    /// Raw query string without the leading `?`, empty when absent.
    pub query: String,
}

impl Url {
    /// Builds a URL for the root page of `host`.
    pub fn root(host: DomainName) -> Self {
        Url {
            scheme: Scheme::Http,
            host,
            path: "/".into(),
            query: String::new(),
        }
    }

    /// Builds an HTTP URL from parts, normalizing the path.
    pub fn new(host: DomainName, path: &str, query: &str) -> Self {
        let path = if path.starts_with('/') {
            path.to_owned()
        } else {
            format!("/{path}")
        };
        Url {
            scheme: Scheme::Http,
            host,
            path,
            query: query.to_owned(),
        }
    }

    /// Parses an absolute URL string.
    pub fn parse(s: &str) -> Result<Self> {
        let s = s.trim();
        let (scheme, rest) = if let Some(r) = s.strip_prefix("https://") {
            (Scheme::Https, r)
        } else if let Some(r) = s.strip_prefix("http://") {
            (Scheme::Http, r)
        } else {
            return Err(Error::InvalidUrl(s.into()));
        };
        if rest.is_empty() {
            return Err(Error::InvalidUrl(s.into()));
        }
        let (host_str, path_query) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        let host = DomainName::parse(host_str).map_err(|_| Error::InvalidUrl(s.into()))?;
        let (path, query) = match path_query.find('?') {
            Some(i) => (path_query[..i].to_owned(), path_query[i + 1..].to_owned()),
            None => (path_query.to_owned(), String::new()),
        };
        if path.contains(char::is_whitespace) || query.contains(char::is_whitespace) {
            return Err(Error::InvalidUrl(s.into()));
        }
        Ok(Url {
            scheme,
            host,
            path,
            query,
        })
    }

    /// Whether this URL points at the *root page* of its host. Only root
    /// results receive Google's "hacked" label under the policy the paper
    /// documents in §5.2.2.
    pub fn is_root_page(&self) -> bool {
        self.path == "/" && self.query.is_empty()
    }

    /// Looks up a query parameter value (first match), percent/plus-decoded.
    pub fn query_param(&self, key: &str) -> Option<String> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then(|| decode_component(v))
        })
    }

    /// A stable `(host, path, query)` key identifying the page irrespective
    /// of scheme — what the crawler dedups on.
    pub fn page_key(&self) -> String {
        format!(
            "{}{}{}{}",
            self.host,
            self.path,
            if self.query.is_empty() { "" } else { "?" },
            self.query
        )
    }
}

/// Decodes `+` as space and `%XX` escapes; invalid escapes pass through.
pub fn decode_component(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Encodes a component: space → `+`, non-unreserved bytes → `%XX`.
pub fn encode_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' => out.push(b as char),
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme.as_str(), self.host, self.path)?;
        if !self.query.is_empty() {
            write!(f, "?{}", self.query)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_typical_urls() {
        let u = Url::parse("http://doorway.com/?key=cheap+beats+by+dre").unwrap();
        assert_eq!(u.scheme, Scheme::Http);
        assert_eq!(u.host.as_str(), "doorway.com");
        assert_eq!(u.path, "/");
        assert_eq!(u.query_param("key").as_deref(), Some("cheap beats by dre"));
        assert!(!u.is_root_page()); // query present

        let r = Url::parse("https://example.com").unwrap();
        assert_eq!(r.path, "/");
        assert!(r.is_root_page());
    }

    #[test]
    fn rejects_bad_urls() {
        for s in [
            "ftp://x.com/",
            "example.com/a",
            "http://",
            "http://bad host.com/",
        ] {
            assert!(Url::parse(s).is_err(), "{s:?}");
        }
    }

    #[test]
    fn display_roundtrips() {
        for s in [
            "http://a.com/",
            "https://shop.b.org/checkout?item=3&qty=2",
            "http://c.net/deep/path.html",
        ] {
            assert_eq!(Url::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn component_codec() {
        assert_eq!(
            encode_component("cheap louis vuitton"),
            "cheap+louis+vuitton"
        );
        assert_eq!(
            decode_component("cheap+louis+vuitton"),
            "cheap louis vuitton"
        );
        assert_eq!(decode_component("a%2Fb"), "a/b");
        assert_eq!(decode_component("bad%zz"), "bad%zz");
    }

    #[test]
    fn page_key_ignores_scheme() {
        let a = Url::parse("http://x.com/p?q=1").unwrap();
        let b = Url::parse("https://x.com/p?q=1").unwrap();
        assert_eq!(a.page_key(), b.page_key());
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(s in "[ -~]{0,40}") {
            prop_assert_eq!(decode_component(&encode_component(&s)), s);
        }

        #[test]
        fn parse_display_roundtrip(host in "[a-z]{1,8}", tld in "[a-z]{2,3}",
                                   path in "(/[a-z0-9]{1,6}){0,3}") {
            let s = format!("http://{host}.{tld}{}", if path.is_empty() { "/".to_owned() } else { path });
            let u = Url::parse(&s).unwrap();
            prop_assert_eq!(u.to_string(), s);
        }
    }
}

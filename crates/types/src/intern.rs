//! Interned string table with dense `u32` ids.
//!
//! Used wherever many entities share a small vocabulary of strings — store
//! locales in the simulator's component tables, domain and term names in
//! the crawl database. Dense ids make the interned value a plain column
//! entry; the string itself is resolved only at report boundaries.

use crate::snapshot::{Reader, Snapshot, SnapshotError, Writer};
use std::collections::HashMap;
use std::sync::Arc;

/// Interned string table with dense `u32` ids.
///
/// The lookup map and the id table share one `Arc<str>` per distinct
/// string, so interning a new string costs exactly one allocation (plus a
/// refcount bump) and a repeat sighting costs one hash lookup and none.
#[derive(Debug, Default)]
pub struct Interner {
    by_str: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

impl Interner {
    /// Interns a string, returning its id.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.by_str.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        let shared: Arc<str> = Arc::from(s);
        self.strings.push(Arc::clone(&shared));
        self.by_str.insert(shared, id);
        id
    }

    /// Looks up an id without interning.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.by_str.get(s).copied()
    }

    /// Resolves an id back to its string.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

impl Snapshot for Interner {
    const TAG: &'static str = "interner";
    const VERSION: u16 = 1;

    fn write_body(&self, w: &mut Writer) {
        // Ids are dense and assigned in insertion order, so serializing
        // the strings in id order and re-interning on decode rebuilds an
        // identical table — same ids, same lookup map.
        w.put_len(self.strings.len());
        for s in &self.strings {
            w.put_str(s);
        }
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let n = r.get_len()?;
        let mut table = Interner::default();
        for i in 0..n {
            let s = r.get_str()?;
            if table.intern(&s) != i as u32 {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate interned string {s:?}"
                )));
            }
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip_preserves_ids() {
        let mut i = Interner::default();
        for s in ["uk", "de", "fr", "uk", "it"] {
            i.intern(s);
        }
        let back = Interner::decode(&i.encode()).unwrap();
        assert_eq!(back.len(), i.len());
        for id in 0..i.len() as u32 {
            assert_eq!(back.resolve(id), i.resolve(id));
            assert_eq!(back.get(i.resolve(id)), Some(id));
        }
    }

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = Interner::default();
        let a = i.intern("uk");
        let b = i.intern("de");
        assert_eq!(i.intern("uk"), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(i.resolve(b), "de");
        assert_eq!(i.get("fr"), None);
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
    }
}

//! The counterfeit-luxury market universe, transcribed from the paper.
//!
//! This module is pure data: the 16 monitored verticals with their Table 1
//! row and Figure 3 poisoning envelope, the brand universe behind them, the
//! 38 named SEO campaigns of Table 2 plus the 14 below-cutoff campaigns that
//! round out the 52, and small shared vocabularies (adjectives used to build
//! search terms, destination countries for shipments).
//!
//! These numbers serve two distinct purposes downstream, and the distinction
//! matters for honesty in EXPERIMENTS.md:
//!
//! * as **calibration targets** for the world generator (`ss-eco`), which
//!   sizes campaigns and traffic so the simulated ecosystem resembles 2013's;
//! * as **paper-reported values** that the analysis layer compares its own
//!   *measured* outputs against.

/// One row of Table 1 (quantities observed by the paper's crawler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Poisoned search results observed over the eight-month crawl.
    pub psrs: u32,
    /// Unique doorway domains.
    pub doorways: u32,
    /// Unique storefronts reached.
    pub stores: u32,
    /// Distinct campaigns observed in the vertical.
    pub campaigns: u32,
}

/// Figure 3 poisoning envelope for one vertical: min/max of the daily
/// percentage of poisoned results among the top-10 and top-100.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Row {
    /// Minimum % of top-10 results poisoned on any day.
    pub top10_min: f64,
    /// Maximum % of top-10 results poisoned on any day.
    pub top10_max: f64,
    /// Minimum % of top-100 results poisoned on any day.
    pub top100_min: f64,
    /// Maximum % of top-100 results poisoned on any day.
    pub top100_max: f64,
}

/// A monitored luxury vertical (§4.1.1): a brand or a composite category,
/// monitored through 100 search terms.
#[derive(Debug, Clone, Copy)]
pub struct VerticalSpec {
    /// Display name as used in Table 1.
    pub name: &'static str,
    /// Brands whose trademarks this vertical covers (singleton for brand
    /// verticals, several for composites like Sunglasses).
    pub brands: &'static [&'static str],
    /// Whether the KEY campaign targets this vertical (all but the three
    /// starred rows of Table 1: Ed Hardy, Louis Vuitton, Uggs).
    pub key_targeted: bool,
    /// Table 1 row for calibration/comparison.
    pub table1: Table1Row,
    /// Figure 3 envelope for calibration/comparison.
    pub fig3: Fig3Row,
}

/// The 16 verticals of Table 1, in table order.
pub const VERTICALS: &[VerticalSpec] = &[
    VerticalSpec {
        name: "Abercrombie",
        brands: &["Abercrombie"],
        key_targeted: true,
        table1: Table1Row {
            psrs: 117_319,
            doorways: 2_059,
            stores: 786,
            campaigns: 35,
        },
        fig3: Fig3Row {
            top10_min: 1.76,
            top10_max: 13.03,
            top100_min: 1.96,
            top100_max: 11.14,
        },
    },
    VerticalSpec {
        name: "Adidas",
        brands: &["Adidas"],
        key_targeted: true,
        table1: Table1Row {
            psrs: 102_694,
            doorways: 1_275,
            stores: 462,
            campaigns: 22,
        },
        fig3: Fig3Row {
            top10_min: 0.12,
            top10_max: 7.80,
            top100_min: 2.25,
            top100_max: 8.07,
        },
    },
    VerticalSpec {
        name: "Beats By Dre",
        brands: &["Beats By Dre"],
        key_targeted: true,
        table1: Table1Row {
            psrs: 342_674,
            doorways: 2_425,
            stores: 506,
            campaigns: 16,
        },
        fig3: Fig3Row {
            top10_min: 2.24,
            top10_max: 23.39,
            top100_min: 6.81,
            top100_max: 36.50,
        },
    },
    VerticalSpec {
        name: "Clarisonic",
        brands: &["Clarisonic"],
        key_targeted: true,
        table1: Table1Row {
            psrs: 10_726,
            doorways: 243,
            stores: 148,
            campaigns: 6,
        },
        fig3: Fig3Row {
            top10_min: 0.00,
            top10_max: 0.25,
            top100_min: 0.11,
            top100_max: 1.32,
        },
    },
    VerticalSpec {
        name: "Ed Hardy",
        brands: &["Ed Hardy"],
        key_targeted: false,
        table1: Table1Row {
            psrs: 99_167,
            doorways: 1_828,
            stores: 648,
            campaigns: 31,
        },
        fig3: Fig3Row {
            top10_min: 0.00,
            top10_max: 11.15,
            top100_min: 0.48,
            top100_max: 31.20,
        },
    },
    VerticalSpec {
        name: "Golf",
        brands: &["Titleist", "Callaway", "TaylorMade"],
        key_targeted: true,
        table1: Table1Row {
            psrs: 11_257,
            doorways: 679,
            stores: 318,
            campaigns: 20,
        },
        fig3: Fig3Row {
            top10_min: 0.00,
            top10_max: 0.35,
            top100_min: 0.26,
            top100_max: 1.28,
        },
    },
    VerticalSpec {
        name: "Isabel Marant",
        brands: &["Isabel Marant"],
        key_targeted: true,
        table1: Table1Row {
            psrs: 153_927,
            doorways: 2_356,
            stores: 1_150,
            campaigns: 35,
        },
        fig3: Fig3Row {
            top10_min: 0.12,
            top10_max: 3.63,
            top100_min: 1.19,
            top100_max: 11.02,
        },
    },
    VerticalSpec {
        name: "Louis Vuitton",
        brands: &["Louis Vuitton"],
        key_targeted: false,
        table1: Table1Row {
            psrs: 523_368,
            doorways: 5_462,
            stores: 1_246,
            campaigns: 34,
        },
        fig3: Fig3Row {
            top10_min: 5.88,
            top10_max: 20.55,
            top100_min: 12.26,
            top100_max: 37.30,
        },
    },
    VerticalSpec {
        name: "Moncler",
        brands: &["Moncler"],
        key_targeted: true,
        table1: Table1Row {
            psrs: 454_671,
            doorways: 3_566,
            stores: 912,
            campaigns: 38,
        },
        fig3: Fig3Row {
            top10_min: 6.89,
            top10_max: 39.58,
            top100_min: 8.79,
            top100_max: 42.45,
        },
    },
    VerticalSpec {
        name: "Nike",
        brands: &["Nike"],
        key_targeted: true,
        table1: Table1Row {
            psrs: 180_953,
            doorways: 3_521,
            stores: 1_141,
            campaigns: 32,
        },
        fig3: Fig3Row {
            top10_min: 0.71,
            top10_max: 8.23,
            top100_min: 5.02,
            top100_max: 11.51,
        },
    },
    VerticalSpec {
        name: "Ralph Lauren",
        brands: &["Ralph Lauren"],
        key_targeted: true,
        table1: Table1Row {
            psrs: 74_893,
            doorways: 1_276,
            stores: 648,
            campaigns: 27,
        },
        fig3: Fig3Row {
            top10_min: 0.23,
            top10_max: 3.74,
            top100_min: 1.73,
            top100_max: 5.00,
        },
    },
    VerticalSpec {
        name: "Sunglasses",
        brands: &["Oakley", "Ray-Ban", "Christian Dior"],
        key_targeted: true,
        table1: Table1Row {
            psrs: 93_928,
            doorways: 3_585,
            stores: 1_269,
            campaigns: 34,
        },
        fig3: Fig3Row {
            top10_min: 0.24,
            top10_max: 5.51,
            top100_min: 1.95,
            top100_max: 11.48,
        },
    },
    VerticalSpec {
        name: "Tiffany",
        brands: &["Tiffany"],
        key_targeted: true,
        table1: Table1Row {
            psrs: 37_054,
            doorways: 1_015,
            stores: 432,
            campaigns: 22,
        },
        fig3: Fig3Row {
            top10_min: 0.00,
            top10_max: 10.22,
            top100_min: 0.23,
            top100_max: 17.10,
        },
    },
    VerticalSpec {
        name: "Uggs",
        brands: &["Uggs"],
        key_targeted: false,
        table1: Table1Row {
            psrs: 405_518,
            doorways: 4_966,
            stores: 1_015,
            campaigns: 39,
        },
        fig3: Fig3Row {
            top10_min: 1.70,
            top10_max: 17.99,
            top100_min: 6.90,
            top100_max: 37.96,
        },
    },
    VerticalSpec {
        name: "Watches",
        brands: &["Rolex", "Omega", "Breitling"],
        key_targeted: true,
        table1: Table1Row {
            psrs: 109_016,
            doorways: 3_615,
            stores: 1_470,
            campaigns: 35,
        },
        fig3: Fig3Row {
            top10_min: 0.71,
            top10_max: 1.87,
            top100_min: 3.89,
            top100_max: 7.04,
        },
    },
    VerticalSpec {
        name: "Woolrich",
        brands: &["Woolrich"],
        key_targeted: true,
        table1: Table1Row {
            psrs: 55_879,
            doorways: 1_924,
            stores: 888,
            campaigns: 38,
        },
        fig3: Fig3Row {
            top10_min: 0.23,
            top10_max: 2.42,
            top100_min: 1.39,
            top100_max: 4.97,
        },
    },
];

/// Paper-reported Table 1 totals (bottom row).
pub const TABLE1_TOTAL: Table1Row = Table1Row {
    psrs: 2_773_044,
    doorways: 27_008,
    stores: 7_484,
    campaigns: 52,
};

/// Brands that appear in the study beyond the vertical anchors (targeted by
/// campaigns, seized by firms, or sold alongside: §3.1.2 mentions campaigns
/// shilling for thirty distinct brands).
pub const EXTRA_BRANDS: &[&str] = &[
    "Chanel",
    "Christian Louboutin",
    "Hollister",
    "North Face",
    "Gucci",
    "Prada",
    "Burberry",
    "Michael Kors",
];

/// The full brand universe: vertical anchors plus [`EXTRA_BRANDS`],
/// deduplicated, in deterministic order.
pub fn all_brands() -> Vec<&'static str> {
    let mut out: Vec<&'static str> = Vec::new();
    for v in VERTICALS {
        for b in v.brands {
            if !out.contains(b) {
                out.push(b);
            }
        }
    }
    for b in EXTRA_BRANDS {
        if !out.contains(b) {
            out.push(b);
        }
    }
    out
}

/// One row of Table 2: a named, classified SEO campaign.
#[derive(Debug, Clone, Copy)]
pub struct CampaignSpec {
    /// Campaign name derived from a URL pattern, C&C domain, or telltale
    /// operational quirk (Table 2 caption).
    pub name: &'static str,
    /// Doorway domains seen redirecting for the campaign.
    pub doorways: u32,
    /// Storefronts monetizing its traffic.
    pub stores: u32,
    /// Brands whose trademarks it abuses.
    pub brands: u32,
    /// Peak poisoning duration in days (shortest span holding ≥60% of the
    /// campaign's PSRs, §5.1.2).
    pub peak_days: u32,
}

/// The 38 campaigns with 25+ doorways, exactly as printed in Table 2.
pub const NAMED_CAMPAIGNS: &[CampaignSpec] = &[
    CampaignSpec {
        name: "171760",
        doorways: 30,
        stores: 14,
        brands: 7,
        peak_days: 44,
    },
    CampaignSpec {
        name: "ADFLYID",
        doorways: 100,
        stores: 18,
        brands: 4,
        peak_days: 66,
    },
    CampaignSpec {
        name: "BIGLOVE",
        doorways: 767,
        stores: 92,
        brands: 30,
        peak_days: 92,
    },
    CampaignSpec {
        name: "BITLY",
        doorways: 190,
        stores: 40,
        brands: 15,
        peak_days: 89,
    },
    CampaignSpec {
        name: "CAMPAIGN.02",
        doorways: 26,
        stores: 4,
        brands: 3,
        peak_days: 61,
    },
    CampaignSpec {
        name: "CAMPAIGN.10",
        doorways: 94,
        stores: 18,
        brands: 5,
        peak_days: 99,
    },
    CampaignSpec {
        name: "CAMPAIGN.12",
        doorways: 118,
        stores: 5,
        brands: 1,
        peak_days: 59,
    },
    CampaignSpec {
        name: "CAMPAIGN.14",
        doorways: 39,
        stores: 8,
        brands: 2,
        peak_days: 67,
    },
    CampaignSpec {
        name: "CAMPAIGN.15",
        doorways: 364,
        stores: 10,
        brands: 10,
        peak_days: 8,
    },
    CampaignSpec {
        name: "CAMPAIGN.17",
        doorways: 61,
        stores: 8,
        brands: 3,
        peak_days: 44,
    },
    CampaignSpec {
        name: "CHANEL.1",
        doorways: 50,
        stores: 10,
        brands: 4,
        peak_days: 24,
    },
    CampaignSpec {
        name: "G2GMART",
        doorways: 916,
        stores: 28,
        brands: 3,
        peak_days: 53,
    },
    CampaignSpec {
        name: "HACKEDLIVEZILLA",
        doorways: 43,
        stores: 49,
        brands: 9,
        peak_days: 56,
    },
    CampaignSpec {
        name: "IFRAMEINJS",
        doorways: 200,
        stores: 2,
        brands: 1,
        peak_days: 39,
    },
    CampaignSpec {
        name: "JAROKRAFKA",
        doorways: 266,
        stores: 55,
        brands: 3,
        peak_days: 87,
    },
    CampaignSpec {
        name: "JSUS",
        doorways: 439,
        stores: 59,
        brands: 27,
        peak_days: 68,
    },
    CampaignSpec {
        name: "KEY",
        doorways: 1_980,
        stores: 97,
        brands: 28,
        peak_days: 65,
    },
    CampaignSpec {
        name: "LIVEZILLA",
        doorways: 420,
        stores: 33,
        brands: 16,
        peak_days: 70,
    },
    CampaignSpec {
        name: "LV.0",
        doorways: 42,
        stores: 3,
        brands: 1,
        peak_days: 62,
    },
    CampaignSpec {
        name: "LV.1",
        doorways: 270,
        stores: 12,
        brands: 9,
        peak_days: 90,
    },
    CampaignSpec {
        name: "M10",
        doorways: 581,
        stores: 35,
        brands: 8,
        peak_days: 30,
    },
    CampaignSpec {
        name: "MOKLELE",
        doorways: 982,
        stores: 15,
        brands: 4,
        peak_days: 36,
    },
    CampaignSpec {
        name: "MOONKIS",
        doorways: 95,
        stores: 7,
        brands: 4,
        peak_days: 99,
    },
    CampaignSpec {
        name: "MSVALIDATE",
        doorways: 530,
        stores: 98,
        brands: 6,
        peak_days: 52,
    },
    CampaignSpec {
        name: "NEWSORG",
        doorways: 926,
        stores: 7,
        brands: 5,
        peak_days: 24,
    },
    CampaignSpec {
        name: "NORTHFACEC",
        doorways: 432,
        stores: 2,
        brands: 1,
        peak_days: 60,
    },
    CampaignSpec {
        name: "NYY",
        doorways: 29,
        stores: 14,
        brands: 5,
        peak_days: 40,
    },
    CampaignSpec {
        name: "PAGERAND",
        doorways: 122,
        stores: 7,
        brands: 4,
        peak_days: 43,
    },
    CampaignSpec {
        name: "PARTNER",
        doorways: 62,
        stores: 9,
        brands: 5,
        peak_days: 33,
    },
    CampaignSpec {
        name: "PAULSIMON",
        doorways: 328,
        stores: 33,
        brands: 12,
        peak_days: 128,
    },
    CampaignSpec {
        name: "PHP?P=",
        doorways: 255,
        stores: 55,
        brands: 24,
        peak_days: 96,
    },
    CampaignSpec {
        name: "ROBERTPENNER",
        doorways: 56,
        stores: 7,
        brands: 12,
        peak_days: 50,
    },
    CampaignSpec {
        name: "SCHEMA.ORG",
        doorways: 46,
        stores: 17,
        brands: 7,
        peak_days: 54,
    },
    CampaignSpec {
        name: "SNOWFLASH",
        doorways: 271,
        stores: 14,
        brands: 1,
        peak_days: 48,
    },
    CampaignSpec {
        name: "STYLESHEET",
        doorways: 222,
        stores: 9,
        brands: 6,
        peak_days: 63,
    },
    CampaignSpec {
        name: "TIFFANY.0",
        doorways: 26,
        stores: 1,
        brands: 1,
        peak_days: 4,
    },
    CampaignSpec {
        name: "UGGS.0",
        doorways: 428,
        stores: 6,
        brands: 5,
        peak_days: 30,
    },
    CampaignSpec {
        name: "VERA",
        doorways: 155,
        stores: 38,
        brands: 12,
        peak_days: 156,
    },
];

/// The 14 classified campaigns below Table 2's 25-doorway display cutoff
/// (the paper identifies 52 campaigns total but prints only 38). Sizes are
/// our synthesis: under 25 doorways each, small store counts, consistent
/// with the table caption.
pub const SMALL_CAMPAIGNS: &[CampaignSpec] = &[
    CampaignSpec {
        name: "SMALL.01",
        doorways: 24,
        stores: 6,
        brands: 3,
        peak_days: 35,
    },
    CampaignSpec {
        name: "SMALL.02",
        doorways: 22,
        stores: 4,
        brands: 2,
        peak_days: 52,
    },
    CampaignSpec {
        name: "SMALL.03",
        doorways: 21,
        stores: 7,
        brands: 4,
        peak_days: 28,
    },
    CampaignSpec {
        name: "SMALL.04",
        doorways: 19,
        stores: 3,
        brands: 2,
        peak_days: 61,
    },
    CampaignSpec {
        name: "SMALL.05",
        doorways: 18,
        stores: 5,
        brands: 3,
        peak_days: 44,
    },
    CampaignSpec {
        name: "SMALL.06",
        doorways: 16,
        stores: 2,
        brands: 1,
        peak_days: 19,
    },
    CampaignSpec {
        name: "SMALL.07",
        doorways: 15,
        stores: 4,
        brands: 2,
        peak_days: 73,
    },
    CampaignSpec {
        name: "SMALL.08",
        doorways: 14,
        stores: 3,
        brands: 2,
        peak_days: 31,
    },
    CampaignSpec {
        name: "SMALL.09",
        doorways: 12,
        stores: 2,
        brands: 1,
        peak_days: 26,
    },
    CampaignSpec {
        name: "SMALL.10",
        doorways: 11,
        stores: 3,
        brands: 2,
        peak_days: 48,
    },
    CampaignSpec {
        name: "SMALL.11",
        doorways: 9,
        stores: 2,
        brands: 1,
        peak_days: 22,
    },
    CampaignSpec {
        name: "SMALL.12",
        doorways: 8,
        stores: 2,
        brands: 1,
        peak_days: 37,
    },
    CampaignSpec {
        name: "SMALL.13",
        doorways: 7,
        stores: 1,
        brands: 1,
        peak_days: 15,
    },
    CampaignSpec {
        name: "SMALL.14",
        doorways: 6,
        stores: 1,
        brands: 1,
        peak_days: 12,
    },
];

/// All 52 classified campaigns, named first, in deterministic order.
pub fn all_campaigns() -> Vec<CampaignSpec> {
    NAMED_CAMPAIGNS
        .iter()
        .chain(SMALL_CAMPAIGNS)
        .copied()
        .collect()
}

/// Adjectives composed with brand names to form search strings (§4.1.1).
pub const TERM_ADJECTIVES: &[&str] = &["cheap", "new", "online", "outlet", "sale", "store"];

/// Product nouns used in suggest expansions and doorway keyword paths.
pub const PRODUCT_NOUNS: &[&str] = &[
    "bags",
    "handbags",
    "wallet",
    "shoes",
    "boots",
    "jacket",
    "coat",
    "headphones",
    "watch",
    "sunglasses",
    "polo",
    "hoodie",
    "scarf",
    "belt",
    "purse",
    "sneakers",
    "outlet",
    "official",
];

/// Destination countries for supplier shipments (§4.5), with the paper's
/// reported order counts where given. "Western Europe" is decomposed into
/// its four largest markets.
pub const SHIP_COUNTRIES: &[(&str, u32)] = &[
    ("United States", 90_000),
    ("Japan", 57_000),
    ("Australia", 39_000),
    ("United Kingdom", 15_000),
    ("Germany", 12_000),
    ("France", 8_000),
    ("Italy", 6_000),
    ("Canada", 14_000),
    ("Other", 38_000),
];

/// Localized storefront markets (§3.1.2: "localized sites catering to
/// international markets").
pub const STORE_LOCALES: &[&str] = &["us", "uk", "de", "jp", "fr", "it", "au"];

/// The two brand-protection firms of Table 3.
#[derive(Debug, Clone, Copy)]
pub struct FirmSpec {
    /// Firm name.
    pub name: &'static str,
    /// Court cases observed (Feb 2012 – Jul 2014).
    pub cases: u32,
    /// Brands represented.
    pub brands: u32,
    /// Total domains seized across all cases.
    pub seized_domains: u32,
    /// Seized store domains directly observed in crawled PSRs.
    pub observed_stores: u32,
    /// Of those, stores classified into campaigns.
    pub classified_stores: u32,
    /// Campaigns affected.
    pub campaigns: u32,
    /// Mean days between a store first appearing in PSRs and its seizure
    /// (lower bound of the paper's two-number estimate, §5.3.2).
    pub store_lifetime_lo: u32,
    /// Upper bound of the lifetime estimate.
    pub store_lifetime_hi: u32,
    /// Mean days for campaigns to re-point doorways after a seizure.
    pub reaction_days: u32,
}

/// Table 3 rows: Greer, Burns & Crain and SMGPA.
pub const FIRMS: &[FirmSpec] = &[
    FirmSpec {
        name: "Greer, Burns & Crain",
        cases: 69,
        brands: 17,
        seized_domains: 31_819,
        observed_stores: 214,
        classified_stores: 40,
        campaigns: 17,
        store_lifetime_lo: 58,
        store_lifetime_hi: 68,
        reaction_days: 7,
    },
    FirmSpec {
        name: "SMGPA",
        cases: 47,
        brands: 11,
        seized_domains: 8_056,
        observed_stores: 76,
        classified_stores: 20,
        campaigns: 12,
        store_lifetime_lo: 48,
        store_lifetime_hi: 56,
        reaction_days: 15,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_verticals_and_52_campaigns() {
        assert_eq!(VERTICALS.len(), 16);
        assert_eq!(all_campaigns().len(), 52);
        assert_eq!(NAMED_CAMPAIGNS.len(), 38);
    }

    #[test]
    fn table1_psr_total_matches() {
        let sum: u32 = VERTICALS.iter().map(|v| v.table1.psrs).sum();
        assert_eq!(sum, TABLE1_TOTAL.psrs);
        // Doorways/stores overlap across verticals, so the per-vertical sums
        // exceed the unique totals in the bottom row of Table 1.
        let doorways: u32 = VERTICALS.iter().map(|v| v.table1.doorways).sum();
        assert!(doorways >= TABLE1_TOTAL.doorways);
        let stores: u32 = VERTICALS.iter().map(|v| v.table1.stores).sum();
        assert!(stores >= TABLE1_TOTAL.stores);
    }

    #[test]
    fn key_skips_exactly_the_starred_verticals() {
        let skipped: Vec<&str> = VERTICALS
            .iter()
            .filter(|v| !v.key_targeted)
            .map(|v| v.name)
            .collect();
        assert_eq!(skipped, ["Ed Hardy", "Louis Vuitton", "Uggs"]);
    }

    #[test]
    fn small_campaigns_sit_below_cutoff() {
        assert!(SMALL_CAMPAIGNS.iter().all(|c| c.doorways < 25));
        assert!(NAMED_CAMPAIGNS.iter().all(|c| c.doorways >= 25));
    }

    #[test]
    fn brand_universe_covers_thirty() {
        let brands = all_brands();
        assert!(brands.len() >= 30, "only {} brands", brands.len());
        // No duplicates.
        let mut dedup = brands.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), brands.len());
    }

    #[test]
    fn fig3_envelopes_are_ordered() {
        for v in VERTICALS {
            assert!(v.fig3.top10_min <= v.fig3.top10_max, "{}", v.name);
            assert!(v.fig3.top100_min <= v.fig3.top100_max, "{}", v.name);
        }
    }

    #[test]
    fn campaign_names_unique() {
        let mut names: Vec<&str> = all_campaigns().iter().map(|c| c.name).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn firm_specs_match_table3() {
        assert_eq!(FIRMS[0].seized_domains + FIRMS[1].seized_domains, 39_875);
        assert_eq!(FIRMS[0].observed_stores + FIRMS[1].observed_stores, 290);
    }
}

//! Strongly-typed integer identifiers.
//!
//! Every entity class in the simulated ecosystem gets its own id newtype so
//! a `StoreId` can never be confused with a `DomainId` at a call site. Ids
//! are dense (assigned 0..n by their registries) which lets downstream code
//! index `Vec`s with them instead of hashing.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw dense index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index.
            pub const fn from_index(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// One of the 52 SEO campaigns (Table 2 of the paper).
    CampaignId,
    "campaign#"
);
define_id!(
    /// A counterfeit storefront (a logical store, which may rotate across
    /// several domain names over its lifetime).
    StoreId,
    "store#"
);
define_id!(
    /// A registered domain name in the simulated DNS.
    DomainId,
    "domain#"
);
define_id!(
    /// One of the 16 luxury verticals of Table 1 (brand or composite).
    VerticalId,
    "vertical#"
);
define_id!(
    /// A trademarked brand (a vertical may composite several brands).
    BrandId,
    "brand#"
);
define_id!(
    /// A search term monitored within a vertical (100 per vertical).
    TermId,
    "term#"
);
define_id!(
    /// A doorway page poisoning search results for one campaign. Doorways
    /// live in one global component table, contiguous per campaign, so the
    /// id doubles as the row index of that table.
    DoorwayId,
    "doorway#"
);
define_id!(
    /// An interned store locale (e.g. "uk", "de") — an index into the
    /// store table's shared [`crate::intern::Interner`].
    LocaleId,
    "locale#"
);
define_id!(
    /// A brand-protection firm (GBC, SMGPA) executing domain seizures.
    FirmId,
    "firm#"
);
define_id!(
    /// A court case bundling a bulk domain seizure action.
    CaseId,
    "case#"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_roundtrip() {
        let c = CampaignId::from_index(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c.to_string(), "campaign#7");
        assert_eq!(StoreId(3).to_string(), "store#3");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(DomainId(1) < DomainId(2));
        assert_eq!(TermId(5), TermId::from_index(5));
    }
}

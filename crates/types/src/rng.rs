//! Deterministic randomness plumbing.
//!
//! One scenario seed must reproduce the entire world: page bytes, SERP
//! ordering, order arrivals, seizure schedules, crawler sampling. Passing a
//! single RNG around would make every subsystem's stream depend on call
//! order, so instead each subsystem derives an *independent* stream from the
//! scenario seed plus a structured label via [`derive_seed`] — the same
//! pattern as keyed sub-stream derivation in simulation frameworks.

use crate::snapshot::{Reader, Snapshot, SnapshotError, Writer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The deterministic RNG used across the workspace.
///
/// ChaCha8 is seedable from a `u64`, platform-independent, and fast; unlike
/// `StdRng` its stream is stable across `rand` versions, which keeps our
/// recorded experiment outputs reproducible.
pub type SimRng = ChaCha8Rng;

/// Derives a stable 64-bit sub-seed from a parent seed and a label.
///
/// Implementation is FNV-1a over the label bytes folded into the parent via
/// SplitMix64 finalization — not cryptographic, just well-mixed and stable.
///
/// ```
/// use ss_types::rng::derive_seed;
/// let a = derive_seed(42, "campaigns/7/orders");
/// let b = derive_seed(42, "campaigns/7/orders");
/// let c = derive_seed(42, "campaigns/8/orders");
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ parent.rotate_left(17);
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h ^ parent)
}

/// Builds a [`SimRng`] for a labeled sub-stream.
pub fn sub_rng(parent: u64, label: &str) -> SimRng {
    SimRng::seed_from_u64(derive_seed(parent, label))
}

impl Snapshot for SimRng {
    const TAG: &'static str = "sim-rng";
    const VERSION: u16 = 1;

    fn write_body(&self, w: &mut Writer) {
        let (key, stream, counter, index) = self.dump_state();
        for k in key {
            w.put_u32(k);
        }
        w.put_u32(stream[0]);
        w.put_u32(stream[1]);
        w.put_u64(counter);
        w.put_u8(index);
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let mut key = [0u32; 8];
        for k in &mut key {
            *k = r.get_u32()?;
        }
        let stream = [r.get_u32()?, r.get_u32()?];
        let counter = r.get_u64()?;
        let index = r.get_u8()?;
        SimRng::from_state(key, stream, counter, index)
            .ok_or_else(|| SnapshotError::Corrupt(format!("rng buffer index {index} > 16")))
    }
}

/// SplitMix64 finalizer: a cheap bijective mixer with good avalanche.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic hash of a string to `u64` (FNV-1a). Used where a stable
/// key → stream mapping is needed without a parent seed.
pub fn hash_str(s: &str) -> u64 {
    derive_seed(0, s)
}

/// Mixes a seed with up to two numeric keys into a well-distributed `u64`.
///
/// This is the allocation-free fast path for hot loops (per-document,
/// per-day SERP jitter runs hundreds of millions of times at paper scale);
/// semantically it plays the same role as [`derive_seed`] with a structured
/// label.
pub fn mix(seed: u64, a: u64, b: u64) -> u64 {
    splitmix64(seed ^ splitmix64(a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.rotate_left(32)))
}

/// Maps a mixed hash to a uniform float in `[0, 1)`.
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Seed of the keyed per-entity sub-stream `(seed, day, stage, entity)`.
///
/// This is the tick plane's RNG keying scheme: every stochastic decision a
/// tick-stage planner makes draws from a stream addressed by *what* is being
/// decided — the simulated day, the stage name, and the entity (term, store,
/// firm, …) the decision concerns — never from a shared sequential stream.
/// A planner's draws are therefore a pure function of the key, independent
/// of evaluation order, of sibling entities, and of how work is scheduled
/// across threads. Hoist [`derive_seed`]`(seed, stage)` out of hot loops and
/// pass it as `stage_seed` — the per-entity step is then allocation-free.
pub fn stream_seed(stage_seed: u64, day: u32, entity: u64) -> u64 {
    mix(stage_seed, u64::from(day), entity)
}

/// Builds the [`SimRng`] for a keyed sub-stream; see [`stream_seed`].
pub fn stream_rng(stage_seed: u64, day: u32, entity: u64) -> SimRng {
    SimRng::seed_from_u64(stream_seed(stage_seed, day, entity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn derivation_is_stable_and_label_sensitive() {
        assert_eq!(derive_seed(1, "a"), derive_seed(1, "a"));
        assert_ne!(derive_seed(1, "a"), derive_seed(1, "b"));
        assert_ne!(derive_seed(1, "a"), derive_seed(2, "a"));
    }

    #[test]
    fn streams_are_independent_of_sibling_consumption() {
        let mut r1 = sub_rng(9, "x");
        let first: u64 = r1.gen();
        // Consuming from a sibling stream must not perturb "x".
        let mut r2 = sub_rng(9, "y");
        let _: [u64; 8] = r2.gen();
        let mut r1b = sub_rng(9, "x");
        assert_eq!(first, r1b.gen::<u64>());
    }

    #[test]
    fn no_collisions_over_structured_labels() {
        let mut seen = HashSet::new();
        for i in 0..500 {
            for part in ["orders", "pages", "serp"] {
                assert!(seen.insert(derive_seed(42, &format!("campaign/{i}/{part}"))));
            }
        }
    }

    #[test]
    fn mix_is_stable_and_key_sensitive() {
        assert_eq!(mix(1, 2, 3), mix(1, 2, 3));
        assert_ne!(mix(1, 2, 3), mix(1, 3, 2));
        assert_ne!(mix(1, 2, 3), mix(2, 2, 3));
        let u = unit_f64(mix(7, 8, 9));
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn unit_f64_covers_range() {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..10_000u64 {
            let u = unit_f64(mix(42, i, 0));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "lo={lo} hi={hi}");
    }

    #[test]
    fn stream_rng_is_keyed_not_sequential() {
        let stage = derive_seed(7, "traffic");
        let a: u64 = stream_rng(stage, 140, 3).gen();
        // Draining other entities' streams never perturbs entity 3.
        for e in 0..50 {
            let _: [u64; 4] = stream_rng(stage, 140, e).gen();
        }
        assert_eq!(a, stream_rng(stage, 140, 3).gen::<u64>());
        assert_ne!(a, stream_rng(stage, 141, 3).gen::<u64>());
        assert_ne!(
            a,
            stream_rng(derive_seed(7, "seizure"), 140, 3).gen::<u64>()
        );
    }

    #[test]
    fn rng_snapshot_resumes_stream() {
        for drawn in [0usize, 1, 7, 16, 33] {
            let mut a = sub_rng(5, "supplier");
            for _ in 0..drawn {
                let _: u64 = a.gen();
            }
            let mut b = SimRng::decode(&a.encode()).unwrap();
            for _ in 0..64 {
                assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "drawn={drawn}");
            }
        }
    }

    #[test]
    fn known_value_pin() {
        // Pins the derivation so accidental algorithm changes fail loudly:
        // recorded outputs in EXPERIMENTS.md depend on this mapping.
        assert_eq!(
            derive_seed(42, "campaigns/7/orders"),
            derive_seed(42, "campaigns/7/orders")
        );
        let v = derive_seed(0, "");
        assert_eq!(v, splitmix64(0xcbf2_9ce4_8422_2325));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;
    use std::collections::HashSet;

    const STAGES: [&str; 5] = ["juice", "policy", "seizures", "rotations", "traffic"];

    proptest! {
        /// A keyed stream's draws are a pure function of `(seed, day, stage,
        /// entity)`: drawing the keys in any interleaving, with arbitrary
        /// amounts consumed from other streams in between, reproduces exactly
        /// what each stream yields when drawn fresh and alone.
        #[test]
        fn streams_are_independent_of_draw_order(
            seed in 0u64..1_000_000,
            keys in proptest::collection::vec((0u32..4000, 0usize..5, 0u64..5000), 2usize..24),
            extra_draws in proptest::collection::vec(0usize..17, 2usize..24),
        ) {
            // Reference: each key drawn fresh, nothing else consumed.
            let reference: Vec<u64> = keys
                .iter()
                .map(|&(day, stage, entity)| {
                    stream_rng(derive_seed(seed, STAGES[stage]), day, entity).gen()
                })
                .collect();
            // Interleaved: walk the keys in reverse, draining a key-dependent
            // amount of unrelated streams before each draw.
            let interleaved: Vec<u64> = keys
                .iter()
                .enumerate()
                .rev()
                .map(|(i, &(day, stage, entity))| {
                    let noise = extra_draws[i % extra_draws.len()];
                    for n in 0..noise {
                        let sibling = derive_seed(seed, STAGES[(stage + 1) % STAGES.len()]);
                        let _: u64 = stream_rng(sibling, day, entity ^ n as u64).gen();
                    }
                    stream_rng(derive_seed(seed, STAGES[stage]), day, entity).gen()
                })
                .collect();
            for (i, (a, b)) in reference.iter().zip(interleaved.iter().rev()).enumerate() {
                prop_assert_eq!(a, b, "stream {} diverged under interleaving", i);
            }
        }

        /// Distinct `(day, stage, entity)` keys address distinct streams: no
        /// seed collisions over a structured key grid.
        #[test]
        fn distinct_keys_yield_distinct_streams(seed in 0u64..1_000_000) {
            let mut seen = HashSet::new();
            for day in 0..12u32 {
                for stage in STAGES {
                    let stage_seed = derive_seed(seed, stage);
                    for entity in 0..12u64 {
                        prop_assert!(
                            seen.insert(stream_seed(stage_seed, day, entity)),
                            "collision at ({}, {}, {})", day, stage, entity
                        );
                    }
                }
            }
        }
    }
}

//! Daily time series.

use ss_types::SimDate;

/// A dense daily series anchored at a start day. Missing observations are
/// explicit (`None`) so interpolation is a deliberate act, exactly as the
/// paper interpolates order-number samples "in regions where we lack
/// samples" (Figure 4 caption).
#[derive(Debug, Clone, PartialEq)]
pub struct DailySeries {
    /// Day of index 0.
    pub start: SimDate,
    values: Vec<Option<f64>>,
}

impl DailySeries {
    /// Creates an empty series covering `[start, end]`.
    pub fn new(start: SimDate, end: SimDate) -> Self {
        let len = (end.days_since(start).max(0) as usize) + 1;
        DailySeries {
            start,
            values: vec![None; len],
        }
    }

    /// Number of days covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series covers no days.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Last day covered.
    pub fn end(&self) -> SimDate {
        self.start + (self.values.len().saturating_sub(1)) as u32
    }

    fn idx(&self, day: SimDate) -> Option<usize> {
        let off = day.days_since(self.start);
        if off < 0 || off as usize >= self.values.len() {
            None
        } else {
            Some(off as usize)
        }
    }

    /// Sets the value for a day (out-of-range days are ignored).
    pub fn set(&mut self, day: SimDate, v: f64) {
        if let Some(i) = self.idx(day) {
            self.values[i] = Some(v);
        }
    }

    /// Adds to the value for a day, treating missing as 0.
    pub fn add(&mut self, day: SimDate, v: f64) {
        if let Some(i) = self.idx(day) {
            self.values[i] = Some(self.values[i].unwrap_or(0.0) + v);
        }
    }

    /// Value for a day, if observed.
    pub fn get(&self, day: SimDate) -> Option<f64> {
        self.idx(day).and_then(|i| self.values[i])
    }

    /// Iterates `(day, value)` over observed days.
    pub fn observed(&self) -> impl Iterator<Item = (SimDate, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(move |(i, v)| v.map(|v| (self.start + i as u32, v)))
    }

    /// All values with missing treated as 0 (for count-type series).
    pub fn dense_or_zero(&self) -> Vec<f64> {
        self.values.iter().map(|v| v.unwrap_or(0.0)).collect()
    }

    /// Minimum and maximum over observed values.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        let mut it = self.values.iter().flatten();
        let first = *it.next()?;
        let mut lo = first;
        let mut hi = first;
        for &v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Sum over observed values.
    pub fn sum(&self) -> f64 {
        self.values.iter().flatten().sum()
    }

    /// Linearly interpolates gaps *between* observed samples (leading and
    /// trailing gaps stay missing), returning a new series.
    pub fn interpolated(&self) -> DailySeries {
        let mut out = self.clone();
        let obs: Vec<(usize, f64)> = self
            .values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (i, v)))
            .collect();
        for pair in obs.windows(2) {
            let (i0, v0) = pair[0];
            let (i1, v1) = pair[1];
            if i1 - i0 > 1 {
                for i in i0 + 1..i1 {
                    let t = (i - i0) as f64 / (i1 - i0) as f64;
                    out.values[i] = Some(v0 + (v1 - v0) * t);
                }
            }
        }
        out
    }

    /// Differences between consecutive observed samples, as
    /// `(from, to, delta)` — the raw material of purchase-pair estimation.
    pub fn sample_deltas(&self) -> Vec<(SimDate, SimDate, f64)> {
        let obs: Vec<(SimDate, f64)> = self.observed().collect();
        obs.windows(2)
            .map(|p| (p[0].0, p[1].0, p[1].1 - p[0].1))
            .collect()
    }

    /// Aggregates observed days into `bin_days`-sized bins by sum,
    /// returning `(bin_start, sum)` for non-empty bins.
    pub fn binned_sum(&self, bin_days: u32) -> Vec<(SimDate, f64)> {
        assert!(bin_days > 0, "bin width must be positive");
        let mut out: Vec<(SimDate, f64)> = Vec::new();
        for (day, v) in self.observed() {
            let bin = (day.days_since(self.start) as u32) / bin_days;
            let bin_start = self.start + bin * bin_days;
            match out.last_mut() {
                Some((b, acc)) if *b == bin_start => *acc += v,
                _ => out.push((bin_start, v)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn day(n: u32) -> SimDate {
        SimDate::from_day_index(n)
    }

    fn series() -> DailySeries {
        let mut s = DailySeries::new(day(10), day(20));
        s.set(day(10), 1.0);
        s.set(day(14), 9.0);
        s.set(day(20), 3.0);
        s
    }

    #[test]
    fn basic_accessors() {
        let s = series();
        assert_eq!(s.len(), 11);
        assert_eq!(s.end(), day(20));
        assert_eq!(s.get(day(14)), Some(9.0));
        assert_eq!(s.get(day(11)), None);
        assert_eq!(s.get(day(9)), None);
        assert_eq!(s.min_max(), Some((1.0, 9.0)));
        assert_eq!(s.sum(), 13.0);
    }

    #[test]
    fn add_accumulates_and_ignores_out_of_range() {
        let mut s = DailySeries::new(day(0), day(2));
        s.add(day(1), 2.0);
        s.add(day(1), 3.0);
        s.add(day(99), 7.0);
        assert_eq!(s.get(day(1)), Some(5.0));
        assert_eq!(s.sum(), 5.0);
    }

    #[test]
    fn interpolation_fills_interior_gaps_only() {
        let s = series().interpolated();
        assert_eq!(s.get(day(12)), Some(5.0)); // halfway 1→9
        assert_eq!(s.get(day(17)), Some(6.0)); // halfway 9→3
                                               // No extrapolation outside the observed span.
        let mut t = DailySeries::new(day(0), day(10));
        t.set(day(5), 4.0);
        t.set(day(7), 8.0);
        let t = t.interpolated();
        assert_eq!(t.get(day(3)), None);
        assert_eq!(t.get(day(9)), None);
        assert_eq!(t.get(day(6)), Some(6.0));
    }

    #[test]
    fn sample_deltas_pair_consecutive_observations() {
        let d = series().sample_deltas();
        assert_eq!(d, vec![(day(10), day(14), 8.0), (day(14), day(20), -6.0)]);
    }

    #[test]
    fn binned_sum_groups_by_width() {
        let mut s = DailySeries::new(day(0), day(13));
        for i in 0..14 {
            s.set(day(i), 1.0);
        }
        let bins = s.binned_sum(7);
        assert_eq!(bins, vec![(day(0), 7.0), (day(7), 7.0)]);
    }

    proptest! {
        #[test]
        fn interpolation_preserves_observations(vals in proptest::collection::vec(0.0f64..100.0, 2..8)) {
            let mut s = DailySeries::new(day(0), day(40));
            for (i, v) in vals.iter().enumerate() {
                s.set(day((i * 5) as u32), *v);
            }
            let interp = s.interpolated();
            for (d, v) in s.observed() {
                prop_assert_eq!(interp.get(d), Some(v));
            }
        }

        #[test]
        fn interpolated_values_bounded_by_neighbours(a in 0.0f64..50.0, b in 0.0f64..50.0) {
            let mut s = DailySeries::new(day(0), day(10));
            s.set(day(0), a);
            s.set(day(10), b);
            let interp = s.interpolated();
            let (lo, hi) = (a.min(b), a.max(b));
            for i in 0..=10u32 {
                let v = interp.get(day(i)).unwrap();
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
        }
    }
}

//! Correlation and simple summary statistics.

/// Pearson correlation between two equal-length slices. Returns `None` for
/// mismatched lengths, fewer than two points, or zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Mean of a slice (`None` when empty).
pub fn mean(x: &[f64]) -> Option<f64> {
    if x.is_empty() {
        None
    } else {
        Some(x.iter().sum::<f64>() / x.len() as f64)
    }
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> Option<f64> {
    let m = mean(x)?;
    Some((x.iter().map(|v| (v - m).powi(2)).sum::<f64>() / x.len() as f64).sqrt())
}

/// Lagged Pearson correlation: correlates `x[t]` with `y[t + lag]`
/// (positive lag means y trails x). Useful for "order volume follows PSR
/// visibility" checks (Figure 4).
pub fn lagged_pearson(x: &[f64], y: &[f64], lag: i64) -> Option<f64> {
    let n = x.len().min(y.len());
    if n == 0 {
        return None;
    }
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for t in 0..n as i64 {
        let u = t + lag;
        if u >= 0 && (u as usize) < n {
            xs.push(x[t as usize]);
            ys.push(y[u as usize]);
        }
    }
    pearson(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[3.0]), None);
        assert_eq!(pearson(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn lag_recovers_shifted_signal() {
        let x: Vec<f64> = (0..50).map(|i| ((i as f64) * 0.7).sin()).collect();
        let mut y = vec![0.0; 50];
        y[5..50].copy_from_slice(&x[..45]);
        let at_lag = lagged_pearson(&x, &y, 5).unwrap();
        let at_zero = lagged_pearson(&x, &y, 0).unwrap();
        assert!(at_lag > 0.99, "{at_lag}");
        assert!(at_lag > at_zero);
    }

    #[test]
    fn summary_stats() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert!((std_dev(&[2.0, 4.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn pearson_is_bounded(xy in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 3..40)) {
            let x: Vec<f64> = xy.iter().map(|p| p.0).collect();
            let y: Vec<f64> = xy.iter().map(|p| p.1).collect();
            if let Some(r) = pearson(&x, &y) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
        }

        #[test]
        fn pearson_is_symmetric(xy in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 3..40)) {
            let x: Vec<f64> = xy.iter().map(|p| p.0).collect();
            let y: Vec<f64> = xy.iter().map(|p| p.1).collect();
            match (pearson(&x, &y), pearson(&y, &x)) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }
}

//! Plain-text renderers: CSV, markdown tables, sparklines.
//!
//! Every figure in the paper is regenerated as *data* (CSV series) plus a
//! terminal-friendly view (sparkline / table), so `repro figN` output can
//! be diffed, plotted, or pasted into EXPERIMENTS.md.

use crate::series::DailySeries;

/// Renders named daily series as a CSV with a `day` column. Missing values
/// render empty. All series must share a start day (asserted).
pub fn series_csv(columns: &[(&str, &DailySeries)]) -> String {
    let mut out = String::from("day");
    for (name, _) in columns {
        out.push(',');
        out.push_str(&csv_escape(name));
    }
    out.push('\n');
    if columns.is_empty() {
        return out;
    }
    let start = columns[0].1.start;
    let len = columns.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for (_, s) in columns {
        assert_eq!(s.start, start, "series must share a start day");
    }
    for i in 0..len {
        let day = start + i as u32;
        out.push_str(&day.to_string());
        for (_, s) in columns {
            out.push(',');
            if let Some(v) = s.get(day) {
                out.push_str(&trim_float(v));
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(headers.len())));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Unicode block characters for sparklines, lowest to highest.
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders values as a sparkline, scaling to the series' own min/max
/// (missing values render as spaces). Mirrors Figure 3's presentation.
pub fn sparkline(series: &DailySeries) -> String {
    let Some((lo, hi)) = series.min_max() else {
        return String::new();
    };
    let span = (hi - lo).max(f64::EPSILON);
    (0..series.len())
        .map(|i| match series.get(series.start + i as u32) {
            None => ' ',
            Some(v) => {
                let t = ((v - lo) / span * 7.0).round() as usize;
                BLOCKS[t.min(7)]
            }
        })
        .collect()
}

/// Compacts a sparkline to at most `width` characters by averaging buckets.
pub fn sparkline_compact(series: &DailySeries, width: usize) -> String {
    if series.len() <= width || width == 0 {
        return sparkline(series);
    }
    let dense = series.dense_or_zero();
    let chunk = dense.len().div_ceil(width);
    let mut squeezed = DailySeries::new(series.start, series.start + (width as u32 - 1));
    for (i, vals) in dense.chunks(chunk).enumerate() {
        let avg = vals.iter().sum::<f64>() / vals.len() as f64;
        squeezed.set(series.start + i as u32, avg);
    }
    sparkline(&squeezed)
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Formats a float without trailing zero noise.
pub fn trim_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::SimDate;

    fn day(n: u32) -> SimDate {
        SimDate::from_day_index(n)
    }

    #[test]
    fn csv_includes_days_and_gaps() {
        let mut a = DailySeries::new(day(5), day(7));
        a.set(day(5), 1.0);
        a.set(day(7), 2.5);
        let mut b = DailySeries::new(day(5), day(7));
        b.set(day(6), 4.0);
        let csv = series_csv(&[("psrs", &a), ("orders,weekly", &b)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "day,psrs,\"orders,weekly\"");
        assert_eq!(lines[1], "2013-07-10,1,");
        assert_eq!(lines[2], "2013-07-11,,4");
        assert_eq!(lines[3], "2013-07-12,2.5,");
    }

    #[test]
    fn sparkline_scales_and_marks_gaps() {
        let mut s = DailySeries::new(day(0), day(4));
        s.set(day(0), 0.0);
        s.set(day(2), 5.0);
        s.set(day(4), 10.0);
        let line = sparkline(&s);
        let chars: Vec<char> = line.chars().collect();
        assert_eq!(chars.len(), 5);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[1], ' ');
        assert_eq!(chars[4], '█');
    }

    #[test]
    fn compact_sparkline_respects_width() {
        let mut s = DailySeries::new(day(0), day(99));
        for i in 0..100u32 {
            s.set(day(i), f64::from(i));
        }
        let line = sparkline_compact(&s, 20);
        assert_eq!(line.chars().count(), 20);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
    }

    #[test]
    fn markdown_table_shapes() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t, "| a | b |\n|---|---|\n| 1 | 2 |\n");
    }

    #[test]
    fn trim_float_formats() {
        assert_eq!(trim_float(3.0), "3");
        assert_eq!(trim_float(3.25), "3.25");
        assert_eq!(trim_float(0.12345), "0.1235");
    }
}

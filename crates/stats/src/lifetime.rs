//! Censored lifetime bounds.
//!
//! The paper repeatedly hits the same inference problem: an event (a label
//! appearing, a domain being seized) is only observed through daily crawl
//! snapshots, so its true time is bracketed between "last seen without" and
//! "first seen with". Both §5.2.2 (label delays of 13–32 days) and §5.3.2
//! (store lifetimes of 58–68 / 48–56 days) therefore report *two-number
//! estimates* — a lower and an upper bound on the mean. This module is that
//! estimator.

/// One censored observation: the event happened somewhere in
/// `[lo_days, hi_days]` after the subject's birth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CensoredLifetime {
    /// Lower bound (last snapshot before the event).
    pub lo_days: f64,
    /// Upper bound (first snapshot showing the event).
    pub hi_days: f64,
}

impl CensoredLifetime {
    /// Creates an observation; bounds are swapped if inverted.
    pub fn new(lo_days: f64, hi_days: f64) -> Self {
        if lo_days <= hi_days {
            CensoredLifetime { lo_days, hi_days }
        } else {
            CensoredLifetime {
                lo_days: hi_days,
                hi_days: lo_days,
            }
        }
    }
}

/// The two-number mean estimate over a population of censored lifetimes.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct LifetimeBound {
    /// Mean of lower bounds.
    pub mean_lo: f64,
    /// Mean of upper bounds.
    pub mean_hi: f64,
    /// Number of observations.
    pub n: usize,
}

impl LifetimeBound {
    /// Estimates the bound pair from observations; `None` when empty.
    pub fn estimate(obs: &[CensoredLifetime]) -> Option<Self> {
        if obs.is_empty() {
            return None;
        }
        let n = obs.len() as f64;
        Some(LifetimeBound {
            mean_lo: obs.iter().map(|o| o.lo_days).sum::<f64>() / n,
            mean_hi: obs.iter().map(|o| o.hi_days).sum::<f64>() / n,
            n: obs.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn estimates_both_means() {
        let obs = vec![
            CensoredLifetime::new(10.0, 20.0),
            CensoredLifetime::new(30.0, 40.0),
        ];
        let b = LifetimeBound::estimate(&obs).unwrap();
        assert_eq!(b.mean_lo, 20.0);
        assert_eq!(b.mean_hi, 30.0);
        assert_eq!(b.n, 2);
    }

    #[test]
    fn empty_population_yields_none() {
        assert_eq!(LifetimeBound::estimate(&[]), None);
    }

    #[test]
    fn inverted_bounds_are_normalized() {
        let o = CensoredLifetime::new(9.0, 3.0);
        assert_eq!((o.lo_days, o.hi_days), (3.0, 9.0));
    }

    proptest! {
        #[test]
        fn lo_never_exceeds_hi(pairs in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..20)) {
            let obs: Vec<CensoredLifetime> =
                pairs.iter().map(|(a, b)| CensoredLifetime::new(*a, *b)).collect();
            let est = LifetimeBound::estimate(&obs).unwrap();
            prop_assert!(est.mean_lo <= est.mean_hi + 1e-9);
        }
    }
}

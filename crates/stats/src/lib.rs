//! # ss-stats
//!
//! Time-series and estimation utilities shared by the measurement pipeline
//! and the analysis layer: daily series, the paper's "peak range" burstiness
//! measure (§5.1.2), censored lifetime bounds (§5.2.2/§5.3.2's two-number
//! estimates), correlation, histogram binning, and plain-text renderers
//! (CSV, markdown, sparklines) used to regenerate every figure as data.
//!
//! Terminology: throughout this workspace, "metric" means an `ss-obs`
//! telemetry counter or histogram; the statistical quantities here are
//! called *measures* or *estimates* to keep the two vocabularies apart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corr;
pub mod lifetime;
pub mod peak;
pub mod render;
pub mod series;

pub use lifetime::LifetimeBound;
pub use peak::peak_range;
pub use series::DailySeries;

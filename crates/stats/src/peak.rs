//! The paper's burstiness measure (§5.1.2): the **peak range** of a
//! campaign is "the shortest contiguous time span that includes 60% or
//! more of all PSRs from the campaign".

use ss_types::SimDate;

use crate::series::DailySeries;

/// A computed peak range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakRange {
    /// First day of the span.
    pub from: SimDate,
    /// Last day of the span (inclusive).
    pub to: SimDate,
    /// Span length in days.
    pub days: u32,
    /// Fraction of total mass inside the span (≥ the requested quantile).
    pub mass: f64,
}

/// Computes the shortest contiguous window of `series` containing at least
/// `quantile` (e.g. 0.6) of its total mass. Returns `None` when the series
/// has no positive mass. Two-pointer sweep, O(n).
pub fn peak_range(series: &DailySeries, quantile: f64) -> Option<PeakRange> {
    let dense = series.dense_or_zero();
    let total: f64 = dense.iter().sum();
    if total <= 0.0 || !(0.0..=1.0).contains(&quantile) {
        return None;
    }
    let need = total * quantile;
    let mut best: Option<(usize, usize, f64)> = None;
    let mut lo = 0usize;
    let mut acc = 0.0;
    for hi in 0..dense.len() {
        acc += dense[hi];
        while acc - dense[lo] >= need && lo < hi {
            acc -= dense[lo];
            lo += 1;
        }
        if acc >= need {
            let len = hi - lo;
            match best {
                Some((blo, bhi, _)) if bhi - blo <= len => {}
                _ => best = Some((lo, hi, acc)),
            }
        }
    }
    best.map(|(lo, hi, mass)| PeakRange {
        from: series.start + lo as u32,
        to: series.start + hi as u32,
        days: (hi - lo) as u32 + 1,
        mass: mass / total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn day(n: u32) -> SimDate {
        SimDate::from_day_index(n)
    }

    #[test]
    fn concentrated_burst_has_short_peak() {
        let mut s = DailySeries::new(day(0), day(99));
        for i in 0..100u32 {
            s.set(day(i), 1.0);
        }
        // A 10-day burst carrying most of the mass.
        for i in 40..50u32 {
            s.set(day(i), 50.0);
        }
        let p = peak_range(&s, 0.6).unwrap();
        assert!(p.days <= 12, "peak {} days", p.days);
        assert!(p.from >= day(39) && p.to <= day(51));
        assert!(p.mass >= 0.6);
    }

    #[test]
    fn uniform_series_needs_a_proportional_span() {
        let mut s = DailySeries::new(day(0), day(99));
        for i in 0..100u32 {
            s.set(day(i), 2.0);
        }
        let p = peak_range(&s, 0.6).unwrap();
        assert_eq!(p.days, 60);
    }

    #[test]
    fn empty_or_zero_series_has_no_peak() {
        let s = DailySeries::new(day(0), day(10));
        assert_eq!(peak_range(&s, 0.6), None);
        let mut z = DailySeries::new(day(0), day(10));
        z.set(day(3), 0.0);
        assert_eq!(peak_range(&z, 0.6), None);
    }

    #[test]
    fn single_spike_is_a_one_day_peak() {
        let mut s = DailySeries::new(day(0), day(30));
        s.set(day(17), 100.0);
        let p = peak_range(&s, 0.6).unwrap();
        assert_eq!((p.from, p.to, p.days), (day(17), day(17), 1));
        assert_eq!(p.mass, 1.0);
    }

    proptest! {
        #[test]
        fn peak_always_carries_requested_mass(
            vals in proptest::collection::vec(0.0f64..10.0, 10..60),
            q in 0.1f64..0.95,
        ) {
            let mut s = DailySeries::new(day(0), day(vals.len() as u32 - 1));
            for (i, v) in vals.iter().enumerate() {
                s.set(day(i as u32), *v);
            }
            if let Some(p) = peak_range(&s, q) {
                prop_assert!(p.mass >= q - 1e-9);
                prop_assert!(p.days as usize <= vals.len());
                prop_assert!(p.from <= p.to);
            } else {
                prop_assert!(vals.iter().sum::<f64>() == 0.0);
            }
        }
    }
}

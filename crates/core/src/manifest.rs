//! The run manifest: a machine-readable record of what a study run did.
//!
//! [`RunManifest`] captures the provenance (config hash, seed, window),
//! the per-stage wall-clock timings, the headline observables (PSRs,
//! seizure notices, estimated orders per campaign), and a per-day
//! progress trace. [`RunManifest::write`] renders it, together with the
//! full metric registry, to `reports/run_manifest.json`; CI uploads that
//! file as the run's artifact, and the golden test pins the deterministic
//! half (see `tests/golden_manifest.rs`).
//!
//! Determinism: everything in the manifest except the `spans` section and
//! the timing fields is a pure function of the configuration — two runs
//! with the same config produce identical headline and metric sections at
//! any crawl thread count (the crawl merges per-worker registries in
//! vertical order; see the `ss-obs` crate docs).

use std::collections::HashMap;

use serde::{Serialize as _, Value};
use ss_obs::Registry;
use ss_orders::purchasepair::OrderSampler;
use ss_orders::transactions::Transaction;

use crate::attribution::Attribution;
use crate::pipeline::StudyConfig;
use ss_crawl::db::CrawlDb;

/// Wall-clock timing of one pipeline stage, aggregated across all days.
#[derive(Debug, Clone, serde::Serialize)]
pub struct StageTiming {
    /// Stage name, as registered in the schedule.
    pub stage: String,
    /// Number of days the stage ran.
    pub days: u64,
    /// Total wall-clock milliseconds across the run.
    pub total_ms: f64,
    /// Exclusive milliseconds (children's spans carved out).
    pub self_ms: f64,
    /// Slowest single day, milliseconds.
    pub max_ms: f64,
}

/// Cumulative progress at the end of one study day.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DayRecord {
    /// Day index.
    pub day: u32,
    /// PSR observations so far.
    pub psrs: u64,
    /// Purchase-pair test orders created so far.
    pub test_orders: u64,
    /// Real purchases completed so far.
    pub purchases: u64,
    /// Wall-clock milliseconds this day took.
    pub elapsed_ms: f64,
}

/// Purchase-pair order estimate for one attributed campaign.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CampaignOrders {
    /// Classifier campaign name, or `"unattributed"`.
    pub campaign: String,
    /// Monitored stores attributed to the campaign with ≥ 2 samples.
    pub stores_sampled: u64,
    /// Sum over those stores of (last − first) order numbers: an upper
    /// bound on orders placed during monitoring (§4.3.1).
    pub estimated_orders: u64,
}

/// A declared target band for one calibration observable: the run is
/// `ok` inside `[ok_lo, ok_hi]`, `fail` outside `[fail_lo, fail_hi]`,
/// and `warn` in between. Declared per preset in the study config and
/// evaluated into the manifest's `calibration` section, so CI catches
/// silent drift instead of humans eyeballing EXPERIMENTS.md.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CalibrationTarget {
    /// Observable name (`total_psrs`, `top5_campaign_share`,
    /// `mean_peak_days`).
    pub observable: String,
    /// The paper's reported value, for reference.
    pub paper: f64,
    /// Lower edge of the `ok` band (inclusive).
    pub ok_lo: f64,
    /// Upper edge of the `ok` band (inclusive).
    pub ok_hi: f64,
    /// Lower edge of the tolerated band; below this the entry fails.
    pub fail_lo: f64,
    /// Upper edge of the tolerated band; above this the entry fails.
    pub fail_hi: f64,
}

impl CalibrationTarget {
    /// Convenience constructor.
    pub fn new(
        observable: &str,
        paper: f64,
        ok: (f64, f64),
        fail: (f64, f64),
    ) -> CalibrationTarget {
        CalibrationTarget {
            observable: observable.to_owned(),
            paper,
            ok_lo: ok.0,
            ok_hi: ok.1,
            fail_lo: fail.0,
            fail_hi: fail.1,
        }
    }
}

/// One evaluated calibration row.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CalibrationEntry {
    /// Observable name.
    pub observable: String,
    /// The paper's reported value.
    pub paper: f64,
    /// What this run measured (`None` when the observable is unknown).
    pub measured: Option<f64>,
    /// `ok`, `warn`, or `fail`.
    pub status: String,
}

/// Evaluates declared targets against measured observables. An unknown
/// observable name evaluates to `warn` (a band referencing nothing is a
/// config bug worth surfacing, not a drift failure).
pub fn evaluate_calibration(
    targets: &[CalibrationTarget],
    measured: &[(&'static str, f64)],
) -> Vec<CalibrationEntry> {
    targets
        .iter()
        .map(|t| {
            let value = measured
                .iter()
                .find(|(name, _)| *name == t.observable)
                .map(|(_, v)| *v);
            let status = match value {
                None => "warn",
                Some(v) if v >= t.ok_lo && v <= t.ok_hi => "ok",
                Some(v) if v >= t.fail_lo && v <= t.fail_hi => "warn",
                Some(_) => "fail",
            };
            CalibrationEntry {
                observable: t.observable.clone(),
                paper: t.paper,
                measured: value,
                status: status.to_owned(),
            }
        })
        .collect()
}

/// One wall-clock timeline slice of the daily loop: a stage (or the
/// world tick) on one day, positioned relative to the run start. Feeds
/// the Chrome trace export; never compared across runs.
#[derive(Debug, Clone)]
pub struct StageSlice {
    /// Day index the slice belongs to.
    pub day: u32,
    /// Stage name (or `world-tick`).
    pub stage: &'static str,
    /// Microseconds since the daily loop started.
    pub ts_us: u64,
    /// Slice duration in microseconds.
    pub dur_us: u64,
}

/// Assembles the Chrome trace-event document: the per-day stage timeline
/// on one lane, aggregate span totals on another, and a cumulative PSR
/// counter track. Load the written file at `ui.perfetto.dev`.
pub fn chrome_trace(
    obs: &Registry,
    slices: &[StageSlice],
    days: &[DayRecord],
) -> ss_obs::ChromeTrace {
    let mut trace = ss_obs::ChromeTrace::new();
    trace.name_process(1, "study");
    trace.name_thread(1, 1, "daily loop");
    trace.name_thread(1, 2, "span totals (aggregate)");
    for s in slices {
        trace.complete(
            s.stage,
            "stage",
            1,
            1,
            s.ts_us,
            s.dur_us,
            vec![("day".into(), Value::UInt(u64::from(s.day)))],
        );
    }
    // Aggregate span totals laid end-to-end: not a timeline, but it puts
    // every span's total/self/max on one readable lane.
    let mut cursor = 0u64;
    for (name, s) in obs.spans() {
        let dur = s.total_ns / 1_000;
        trace.complete(
            &name,
            "span-total",
            1,
            2,
            cursor,
            dur,
            vec![
                ("count".into(), Value::UInt(s.count)),
                ("self_ms".into(), Value::Float(s.self_ns as f64 / 1e6)),
                ("max_ms".into(), Value::Float(s.max_ns as f64 / 1e6)),
            ],
        );
        cursor += dur.max(1);
    }
    // Cumulative PSRs per day, on the day's wall-clock end position.
    let mut end_us = 0u64;
    for d in days {
        end_us += (d.elapsed_ms * 1_000.0) as u64;
        trace.counter("psrs", 1, end_us, vec![("total".into(), d.psrs as f64)]);
    }
    trace
}

/// One event kind's slice of the committed event trail: total count plus
/// per-day rows with an order-sensitive content hash. Deterministic — the
/// trail is produced on the sequential commit path — so `repro diff` can
/// pinpoint the first divergent day per kind between two runs.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TrailKindSummary {
    /// Stable event-kind tag (`WorldEvent::kind`).
    pub kind: String,
    /// Events of this kind across the run.
    pub count: u64,
    /// Per-day rows, in day order.
    pub days: Vec<TrailDayRow>,
}

/// One day's row in a [`TrailKindSummary`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct TrailDayRow {
    /// Day index.
    pub day: u32,
    /// Events of the kind committed that day.
    pub count: u64,
    /// FNV-1a over the day's event debug renderings, in commit order
    /// (hex) — equal hashes mean identical event payloads.
    pub hash: String,
}

/// Buckets the world's committed event trail by kind and day. The hash
/// folds each event's `Debug` rendering in commit order, so two runs
/// agree on a row iff they committed the same events in the same order.
pub fn trail_summary(trail: &[ss_eco::TrailEvent]) -> Vec<TrailKindSummary> {
    use std::collections::BTreeMap;
    // Per-kind accumulator: total count plus per-day (count, FNV state).
    type KindAcc = (u64, BTreeMap<u32, (u64, u64)>);
    let mut kinds: BTreeMap<&'static str, KindAcc> = BTreeMap::new();
    for ev in trail {
        let (count, days) = kinds.entry(ev.event.kind()).or_default();
        *count += 1;
        let row = days
            .entry(ev.day.day_index())
            .or_insert((0, 0xcbf2_9ce4_8422_2325));
        row.0 += 1;
        for b in format!("{:?}", ev.event).bytes() {
            row.1 ^= u64::from(b);
            row.1 = row.1.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    kinds
        .into_iter()
        .map(|(kind, (count, days))| TrailKindSummary {
            kind: kind.to_owned(),
            count,
            days: days
                .into_iter()
                .map(|(day, (count, hash))| TrailDayRow {
                    day,
                    count,
                    hash: format!("{hash:016x}"),
                })
                .collect(),
        })
        .collect()
}

/// The run's headline observables — the numbers the paper leads with.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Headline {
    /// Total PSR observations.
    pub psrs: u64,
    /// Unique doorway domains confirmed cloaked.
    pub cloaked_doorways: u64,
    /// Unique detected store domains.
    pub detected_stores: u64,
    /// Store domains where a seizure notice was observed.
    pub seizure_notices: u64,
    /// Purchase-pair test orders created.
    pub test_orders: u64,
    /// Real purchases completed.
    pub purchases: u64,
    /// Per-campaign order estimates, sorted by campaign name.
    pub campaign_orders: Vec<CampaignOrders>,
}

/// The full manifest of one study run.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// FNV-1a hash of the study configuration's debug rendering.
    pub config_hash: u64,
    /// Scenario seed.
    pub seed: u64,
    /// Crawl window `(first, last)` day indices, inclusive.
    pub window: (u32, u32),
    /// Per-stage wall-clock timings (from the `stage.*` spans).
    pub stage_timings: Vec<StageTiming>,
    /// Headline observables.
    pub headline: Headline,
    /// Calibration drift gate: declared target bands evaluated against
    /// this run's headline observables.
    pub calibration: Vec<CalibrationEntry>,
    /// Per-day progress trace.
    pub days: Vec<DayRecord>,
    /// Committed event trail bucketed by kind and day (empty when the
    /// trace plane was off). Deterministic; `repro diff` compares it.
    pub event_trail: Vec<TrailKindSummary>,
}

/// FNV-1a over the configuration's `Debug` rendering: cheap, stable
/// within a build, and sensitive to every knob.
pub fn config_hash(cfg: &StudyConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{cfg:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Sums each monitored store's purchase-pair span (last − first order
/// number) into its attributed campaign, `"unattributed"` when the
/// classifier abstained or never saw the domain. Sorted by campaign name.
pub fn campaign_orders(
    sampler: &OrderSampler,
    db: &CrawlDb,
    attribution: &Attribution,
) -> Vec<CampaignOrders> {
    let mut by_campaign: HashMap<String, (u64, u64)> = HashMap::new();
    let mut domains: Vec<&String> = sampler.stores.keys().collect();
    domains.sort();
    for domain in domains {
        let store = &sampler.stores[domain];
        let (Some(first), Some(last)) = (store.samples.first(), store.samples.last()) else {
            continue;
        };
        if store.samples.len() < 2 {
            continue;
        }
        let campaign = db
            .domains
            .get(domain)
            .and_then(|id| attribution.store_class.get(&id).copied().flatten())
            .and_then(|ci| attribution.class_names.get(ci).cloned())
            .unwrap_or_else(|| "unattributed".to_owned());
        let entry = by_campaign.entry(campaign).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += last.order_number.saturating_sub(first.order_number);
    }
    let mut rows: Vec<CampaignOrders> = by_campaign
        .into_iter()
        .map(
            |(campaign, (stores_sampled, estimated_orders))| CampaignOrders {
                campaign,
                stores_sampled,
                estimated_orders,
            },
        )
        .collect();
    rows.sort_by(|a, b| a.campaign.cmp(&b.campaign));
    rows
}

/// Assembles the headline section from the run's datasets.
pub fn headline(
    db: &CrawlDb,
    sampler: &OrderSampler,
    transactions: &[Transaction],
    attribution: &Attribution,
) -> Headline {
    Headline {
        psrs: db.psrs.len() as u64,
        cloaked_doorways: db.poisoned_domains().count() as u64,
        detected_stores: db.detected_stores().count() as u64,
        seizure_notices: db
            .store_info
            .values()
            .filter(|s| s.seizure.is_some())
            .count() as u64,
        test_orders: sampler.orders_created as u64,
        purchases: transactions.len() as u64,
        campaign_orders: campaign_orders(sampler, db, attribution),
    }
}

/// Extracts `stage.*` span aggregates from the registry, in the
/// schedule's execution order.
pub fn stage_timings(obs: &Registry, stage_names: &[&'static str]) -> Vec<StageTiming> {
    let ns_ms = |ns: u64| ns as f64 / 1_000_000.0;
    stage_names
        .iter()
        .filter_map(|name| {
            let s = obs.span_stats(&format!("stage.{name}"))?;
            Some(StageTiming {
                stage: (*name).to_owned(),
                days: s.count,
                total_ms: ns_ms(s.total_ns),
                self_ms: ns_ms(s.self_ns),
                max_ms: ns_ms(s.max_ns),
            })
        })
        .collect()
}

impl RunManifest {
    /// Renders the manifest plus the registry's metric and span sections
    /// as one JSON document.
    pub fn to_value(&self, obs: &Registry) -> Value {
        Value::Map(vec![
            (
                "config_hash".into(),
                Value::Str(format!("{:016x}", self.config_hash)),
            ),
            ("seed".into(), Value::UInt(self.seed)),
            (
                "window".into(),
                Value::Seq(vec![
                    Value::UInt(u64::from(self.window.0)),
                    Value::UInt(u64::from(self.window.1)),
                ]),
            ),
            ("stage_timings".into(), self.stage_timings.serialize()),
            ("headline".into(), self.headline.serialize()),
            ("calibration".into(), self.calibration.serialize()),
            ("days".into(), self.days.serialize()),
            ("event_trail".into(), self.event_trail.serialize()),
            ("metrics".into(), obs.metrics_value()),
            ("spans".into(), obs.spans_value()),
            // Deterministic phase costs and their wall-clock companion —
            // kept as separate sections so goldens and `repro diff` can
            // pin the former and ignore the latter.
            ("cost_profile".into(), obs.costs_value()),
            ("cost_timings".into(), obs.cost_timings_value()),
        ])
    }

    /// Writes the manifest (with metrics) to `path`, creating parent
    /// directories. Errors are reported, not fatal: telemetry must never
    /// kill a finished run.
    pub fn write(&self, obs: &Registry, path: &str) {
        let rendered = match serde_json::to_string_pretty(&self.to_value(obs)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("run manifest: render failed: {e:?}");
                return;
            }
        };
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        if let Err(e) = std::fs::write(path, rendered + "\n") {
            eprintln!("run manifest: write to {path} failed: {e}");
        }
    }

    /// A human-readable summary table for terminal output.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run manifest  seed={}  config={:016x}  days {}..={}\n",
            self.seed, self.config_hash, self.window.0, self.window.1
        ));
        out.push_str(&format!(
            "  {:<16} {:>6} {:>12} {:>12} {:>10}\n",
            "stage", "days", "total_ms", "self_ms", "max_ms"
        ));
        for t in &self.stage_timings {
            out.push_str(&format!(
                "  {:<16} {:>6} {:>12.1} {:>12.1} {:>10.2}\n",
                t.stage, t.days, t.total_ms, t.self_ms, t.max_ms
            ));
        }
        let h = &self.headline;
        out.push_str(&format!(
            "  psrs={}  cloaked_doorways={}  stores={}  seizure_notices={}  test_orders={}  purchases={}\n",
            h.psrs, h.cloaked_doorways, h.detected_stores, h.seizure_notices, h.test_orders, h.purchases
        ));
        for c in &h.campaign_orders {
            out.push_str(&format!(
                "    {:<24} stores={:<4} est_orders={}\n",
                c.campaign, c.stores_sampled, c.estimated_orders
            ));
        }
        for c in &self.calibration {
            out.push_str(&format!(
                "  calibration {:<24} {:>6}  measured={}  paper={}\n",
                c.observable,
                c.status,
                c.measured
                    .map(|v| format!("{v:.3}"))
                    .unwrap_or_else(|| "—".into()),
                c.paper
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StudyConfig;

    #[test]
    fn config_hash_is_stable_and_knob_sensitive() {
        let a = StudyConfig::fast_test(7);
        let b = StudyConfig::fast_test(7);
        assert_eq!(config_hash(&a), config_hash(&b));
        let mut c = StudyConfig::fast_test(7);
        c.monitor_store_cap += 1;
        assert_ne!(config_hash(&a), config_hash(&c));
    }

    #[test]
    fn summary_table_lists_stages_and_headline() {
        let m = RunManifest {
            config_hash: 0xabc,
            seed: 9,
            window: (1, 3),
            stage_timings: vec![StageTiming {
                stage: "crawl".into(),
                days: 3,
                total_ms: 12.0,
                self_ms: 12.0,
                max_ms: 5.0,
            }],
            headline: Headline {
                psrs: 10,
                cloaked_doorways: 4,
                detected_stores: 3,
                seizure_notices: 1,
                test_orders: 5,
                purchases: 2,
                campaign_orders: vec![CampaignOrders {
                    campaign: "Uggs".into(),
                    stores_sampled: 2,
                    estimated_orders: 77,
                }],
            },
            calibration: vec![CalibrationEntry {
                observable: "total_psrs".into(),
                paper: 357_0000.0,
                measured: Some(10.0),
                status: "warn".into(),
            }],
            days: Vec::new(),
            event_trail: Vec::new(),
        };
        let table = m.summary_table();
        assert!(table.contains("crawl"));
        assert!(table.contains("psrs=10"));
        assert!(table.contains("Uggs"));
        assert!(table.contains("est_orders=77"));
        assert!(table.contains("calibration total_psrs"));
    }

    #[test]
    fn calibration_bands_classify_ok_warn_fail() {
        let targets = vec![
            CalibrationTarget::new("a", 50.0, (40.0, 60.0), (20.0, 80.0)),
            CalibrationTarget::new("b", 50.0, (40.0, 60.0), (20.0, 80.0)),
            CalibrationTarget::new("c", 50.0, (40.0, 60.0), (20.0, 80.0)),
            CalibrationTarget::new("missing", 1.0, (0.0, 2.0), (0.0, 3.0)),
        ];
        let measured = [("a", 55.0), ("b", 70.0), ("c", 99.0)];
        let rows = evaluate_calibration(&targets, &measured);
        let statuses: Vec<&str> = rows.iter().map(|r| r.status.as_str()).collect();
        assert_eq!(statuses, vec!["ok", "warn", "fail", "warn"]);
        assert_eq!(rows[0].measured, Some(55.0));
        assert_eq!(rows[3].measured, None);
    }

    #[test]
    fn chrome_trace_renders_slices_spans_and_counters() {
        let obs = Registry::new();
        ss_obs::time!(obs, "study.warmup", std::hint::black_box(1 + 1));
        let slices = vec![StageSlice {
            day: 3,
            stage: "crawl",
            ts_us: 10,
            dur_us: 25,
        }];
        let days = vec![DayRecord {
            day: 3,
            psrs: 7,
            test_orders: 0,
            purchases: 0,
            elapsed_ms: 1.5,
        }];
        let trace = chrome_trace(&obs, &slices, &days);
        let json = trace.to_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("study.warmup"));
        assert!(json.contains("\"crawl\""));
        assert!(json.contains("\"psrs\""));
    }
}

//! The study pipeline: §4's data-collection programme run end to end.
//!
//! The daily programme is a schedule of [`DailyStage`]s — crawl, store
//! enrollment, purchase-pair sampling, real purchases, AWStats sweeps —
//! each a self-contained unit over the shared [`DailyState`]. [`Study::run`]
//! iterates the registered schedule for every day of the window, so the
//! programme can be reordered, trimmed, or extended without touching the
//! driver loop. Stages receive `&mut World` but only the purchase-plane
//! stages use it mutably (via `Web::fetch_apply`); observation stages go
//! through the read-only fetch plane.
//!
//! # Telemetry
//!
//! The run owns one [`ss_obs::Registry`]. Every stage executes under a
//! `stage.{name}` span and records `pipeline.*` counters through
//! [`StageContext::obs`]; the crawler, sampler, and world contribute
//! `crawl.*`, `orders.*`, and `eco.*` metrics of their own. At the end of
//! the run everything is folded into one registry, summarized as a
//! [`RunManifest`], and (when [`StudyConfig::manifest_path`] is set)
//! written to disk. The counters and histograms are deterministic for a
//! given config — identical at any crawl thread count — while span
//! timings are wall-clock and live in a separate, non-compared section.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use ss_obs::{Registry, TraceLevel};
use ss_types::{DomainName, SimDate};

use ss_crawl::crawler::{Crawler, CrawlerConfig};
use ss_crawl::terms::MonitoredVertical;
use ss_eco::{ScenarioConfig, World};
use ss_orders::analytics::{self, ParsedReport};
use ss_orders::purchasepair::{OrderSampler, SamplerConfig};
use ss_orders::supplier_scrape::{self, SupplierDataset};
use ss_orders::transactions::{self, Transaction};

use crate::analysis::scan::StudyScan;
use crate::attribution::{self, Attribution, AttributionConfig};
use crate::manifest::{self, CalibrationTarget, DayRecord, RunManifest, StageSlice};
use crate::state::{self, RunCheckpoint, RunOptions, RunState};

/// Study configuration: the scenario plus every §4 programme knob.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// The world scenario.
    pub scenario: ScenarioConfig,
    /// Crawler configuration (§4.1.2).
    pub crawler: CrawlerConfig,
    /// Purchase-pair sampler configuration (§4.3.1).
    pub sampler: SamplerConfig,
    /// Monitored terms per vertical (§4.1.1; paper: 100).
    pub monitored_terms: usize,
    /// Cap on stores enrolled in order monitoring (paper: 290 stores).
    pub monitor_store_cap: usize,
    /// Target number of real purchases (§4.3.2; paper: 16).
    pub purchase_target: usize,
    /// Campaign-identification configuration (§4.2).
    pub attribution: AttributionConfig,
    /// First crawl day (defaults to the paper's 2013-11-13).
    pub crawl_start: SimDate,
    /// Last crawl day inclusive (defaults to 2014-07-15, clamped to the
    /// scenario's end).
    pub crawl_end: SimDate,
    /// Days between AWStats collection sweeps (§4.4: "periodically").
    pub awstats_interval: u32,
    /// Where to write the run manifest; `None` disables the write (the
    /// manifest is still built and returned in [`StudyOutput`]).
    pub manifest_path: Option<String>,
    /// Worker threads for the simulation's tick-stage planners (`<= 1`
    /// runs serially). Usually set together with `crawler.threads` via
    /// [`StudyConfig::set_threads`]; any value is bit-identical.
    pub tick_threads: usize,
    /// Worker threads for the post-crawl analysis scan (`<= 1` runs
    /// serially). Usually set via [`StudyConfig::set_threads`]; the scan
    /// is bit-identical at any value.
    pub analysis_threads: usize,
    /// Trace-plane level: flight recorders (crawl + tick) and the world
    /// event-trail retention that powers `repro explain`. Off by default
    /// so benches and plain studies pay nothing; set together with the
    /// crawler's knob via [`StudyConfig::set_trace`]. Enabling it changes
    /// no deterministic metric byte.
    pub trace_level: TraceLevel,
    /// Where to write the Chrome trace-event timeline (wall-clock half);
    /// `None` disables the export.
    pub trace_path: Option<String>,
    /// Declared calibration target bands, evaluated against this run's
    /// headline observables into the manifest's `calibration` section.
    pub calibration: Vec<CalibrationTarget>,
}

impl StudyConfig {
    /// Paper-faithful defaults over a given scenario.
    pub fn new(scenario: ScenarioConfig) -> Self {
        let crawl_end_day = ss_types::CRAWL_END_DAY.min(scenario.scale.end_day);
        StudyConfig {
            crawler: CrawlerConfig {
                serp_depth: scenario.scale.serp_depth,
                ..CrawlerConfig::default()
            },
            sampler: SamplerConfig::default(),
            monitored_terms: scenario.scale.terms_per_vertical,
            monitor_store_cap: 290,
            purchase_target: 16,
            attribution: AttributionConfig::default(),
            crawl_start: SimDate::from_day_index(ss_types::CRAWL_START_DAY),
            crawl_end: SimDate::from_day_index(crawl_end_day),
            awstats_interval: 14,
            manifest_path: Some("reports/run_manifest.json".to_owned()),
            tick_threads: 1,
            analysis_threads: 1,
            trace_level: TraceLevel::Off,
            trace_path: None,
            calibration: Vec::new(),
            scenario,
        }
    }

    /// Points every worker pool at `n` threads: the crawler's
    /// per-vertical fan-out, the tick planners' shard fan-out, and the
    /// analysis scan's day-range shards. Output is bit-identical for
    /// every `n`.
    pub fn set_threads(&mut self, n: usize) {
        self.crawler.threads = n.max(1);
        self.tick_threads = n.max(1);
        self.analysis_threads = n.max(1);
    }

    /// Points the whole trace plane at `level`: the crawler's PSR
    /// provenance recorder, the tick plane's recorder, and the world
    /// event-trail retention. The plumbing mirror of
    /// [`StudyConfig::set_threads`].
    pub fn set_trace(&mut self, level: TraceLevel) {
        self.trace_level = level;
        self.crawler.trace = level;
    }

    /// A fast configuration for tests: tiny world, short crawl, light
    /// training.
    pub fn fast_test(seed: u64) -> Self {
        let mut cfg = StudyConfig::new(ScenarioConfig::tiny(seed));
        cfg.monitored_terms = 6;
        cfg.crawler.serp_depth = 30;
        cfg.crawl_end = cfg.crawl_start + 16;
        cfg.attribution.train.epochs = 120;
        cfg.attribution.refine_rounds = 1;
        cfg.awstats_interval = 7;
        cfg.manifest_path = None;
        cfg
    }
}

/// Everything the study produced; the analyses feed on this.
pub struct StudyOutput {
    /// The (post-run) world — used for truth scoring and late fetches.
    pub world: World,
    /// The crawler with its database.
    pub crawler: Crawler,
    /// The purchase-pair sampler.
    pub sampler: OrderSampler,
    /// Completed purchases.
    pub transactions: Vec<Transaction>,
    /// AWStats reports per store domain, in collection order.
    pub awstats: HashMap<String, Vec<ParsedReport>>,
    /// Supplier dataset, when the portal was discovered.
    pub supplier: Option<SupplierDataset>,
    /// Campaign attribution artifacts.
    pub attribution: Attribution,
    /// The shared one-pass aggregation over the PSR corpus; every
    /// analysis module reads this instead of re-scanning the rows.
    pub scan: StudyScan,
    /// Monitored term sets per vertical.
    pub monitored: Vec<MonitoredVertical>,
    /// Crawl window actually executed.
    pub window: (SimDate, SimDate),
    /// The run's merged telemetry registry (crawl, eco, orders, pipeline).
    pub metrics: Registry,
    /// The run manifest (also written to [`StudyConfig::manifest_path`]).
    pub manifest: RunManifest,
}

impl StudyOutput {
    /// Fingerprint of the run's final mutable state: the world hash
    /// folded with the search engine's and the PSR store's (see
    /// [`state::run_fingerprint`]). Equal fingerprints mean an
    /// uninterrupted run and a checkpoint-resumed run ended in the same
    /// place — the state plane's equivalence tests pin this at several
    /// thread counts.
    pub fn run_fingerprint(&self) -> u64 {
        state::run_fingerprint(&self.world, &self.crawler)
    }
}

/// Mutable programme state threaded through the daily stage schedule.
pub struct DailyState {
    /// The crawler with its accumulating database.
    pub crawler: Crawler,
    /// The purchase-pair sampler.
    pub sampler: OrderSampler,
    /// Completed real purchases.
    pub transactions: Vec<Transaction>,
    /// Collected AWStats reports per store domain.
    pub awstats: HashMap<String, Vec<ParsedReport>>,
    /// Stores already purchased from (at most one real order per store),
    /// by interned domain id — resolved to strings only at the purchase
    /// boundary.
    pub purchased: HashSet<u32>,
}

/// Read-only context shared by every stage invocation.
pub struct StageContext<'a> {
    /// The study configuration.
    pub cfg: &'a StudyConfig,
    /// First day of the crawl window (cadence anchors key off it).
    pub start: SimDate,
    /// The run's telemetry registry; stages record `pipeline.*` metrics
    /// here and pass it down to metered subsystems.
    pub obs: &'a Registry,
}

/// One unit of the daily programme. Implementations must be independent
/// of wall-clock and thread scheduling: everything they need arrives via
/// the context, the state, the world, and the day.
pub trait DailyStage {
    /// Stable stage name (for schedules, logs, and tests).
    fn name(&self) -> &'static str;
    /// Static span key (`stage.{name}`), interned at compile time so the
    /// daily loop never allocates a span-name `String` per (day × stage).
    fn span_name(&self) -> &'static str;
    /// Runs the stage for one day.
    fn run(&self, ctx: &StageContext<'_>, state: &mut DailyState, world: &mut World, day: SimDate);
}

/// The daily SERP crawl (§4.1.2). Pure observation: the crawler sees only
/// the world's read plane.
pub struct CrawlStage;

impl DailyStage for CrawlStage {
    fn name(&self) -> &'static str {
        "crawl"
    }
    fn span_name(&self) -> &'static str {
        "stage.crawl"
    }
    fn run(&self, ctx: &StageContext<'_>, state: &mut DailyState, world: &mut World, day: SimDate) {
        state.crawler.crawl_day_metered(world, day, ctx.obs);
    }
}

/// Newly detected stores join order monitoring, up to the cap, keyed
/// initially by their own domain; attribution re-groups them later.
pub struct EnrollStoresStage;

impl DailyStage for EnrollStoresStage {
    fn name(&self) -> &'static str {
        "enroll-stores"
    }
    fn span_name(&self) -> &'static str {
        "stage.enroll-stores"
    }
    fn run(
        &self,
        ctx: &StageContext<'_>,
        state: &mut DailyState,
        _world: &mut World,
        _day: SimDate,
    ) {
        let cap = ctx.cfg.monitor_store_cap;
        if state.sampler.stores.len() >= cap {
            return;
        }
        for id in state.crawler.db.detected_store_ids() {
            if state.sampler.stores.len() >= cap {
                break;
            }
            let domain = state.crawler.db.domains.resolve(id);
            if !state.sampler.stores.contains_key(domain) {
                ss_obs::count!(ctx.obs, "pipeline.stores_enrolled");
            }
            state.sampler.monitor(domain, domain);
        }
    }
}

/// Purchase-pair sampling (§4.3.1): test orders at stores due for their
/// weekly sample. These are real orders, so the stage commits effects.
pub struct SamplePairsStage;

impl DailyStage for SamplePairsStage {
    fn name(&self) -> &'static str {
        "purchase-pairs"
    }
    fn span_name(&self) -> &'static str {
        "stage.purchase-pairs"
    }
    fn run(&self, ctx: &StageContext<'_>, state: &mut DailyState, world: &mut World, day: SimDate) {
        state.sampler.sample_day_metered(world, day, ctx.obs);
    }
}

/// Real purchases (§4.3.2): spread through the window until the target is
/// hit, at most one per store, two candidate stores per purchase day.
pub struct PurchaseStage;

impl DailyStage for PurchaseStage {
    fn name(&self) -> &'static str {
        "purchases"
    }
    fn span_name(&self) -> &'static str {
        "stage.purchases"
    }
    fn run(&self, ctx: &StageContext<'_>, state: &mut DailyState, world: &mut World, day: SimDate) {
        if state.transactions.len() >= ctx.cfg.purchase_target || !day.day_index().is_multiple_of(9)
        {
            return;
        }
        let candidates: Vec<u32> = state
            .crawler
            .db
            .detected_store_ids()
            .into_iter()
            .filter(|id| !state.purchased.contains(id))
            .take(2)
            .collect();
        for id in candidates {
            ss_obs::count!(ctx.obs, "pipeline.purchase_attempts");
            let domain = state.crawler.db.domains.resolve(id);
            if let Some(tx) = transactions::purchase(world, domain, day) {
                ss_obs::count!(ctx.obs, "pipeline.purchases");
                state.purchased.insert(id);
                state.transactions.push(tx);
            }
        }
    }
}

/// Periodic AWStats sweep over detected stores (§4.4): most return 404;
/// the leaky ones yield reports. Read-only.
pub struct AwstatsSweepStage;

impl DailyStage for AwstatsSweepStage {
    fn name(&self) -> &'static str {
        "awstats-sweep"
    }
    fn span_name(&self) -> &'static str {
        "stage.awstats-sweep"
    }
    fn run(&self, ctx: &StageContext<'_>, state: &mut DailyState, world: &mut World, day: SimDate) {
        if day.days_since(ctx.start) % i64::from(ctx.cfg.awstats_interval) != 0 {
            return;
        }
        ss_obs::count!(ctx.obs, "pipeline.awstats_sweeps");
        for id in state.crawler.db.detected_store_ids() {
            ss_obs::count!(ctx.obs, "pipeline.awstats_probes");
            let site = state.crawler.db.domains.resolve(id);
            if let Some(report) = analytics::fetch_report(&*world, site, None) {
                ss_obs::count!(ctx.obs, "pipeline.awstats_reports");
                let entry = state.awstats.entry(site.to_owned()).or_default();
                // Keep at most one report per period (latest wins).
                entry.retain(|r| r.period != report.period);
                entry.push(report);
            }
        }
    }
}

/// The runnable study.
pub struct Study {
    /// Configuration.
    pub cfg: StudyConfig,
    /// The daily stage schedule, executed in order each day.
    stages: Vec<Box<dyn DailyStage>>,
}

impl Study {
    /// Creates a study with the default five-stage schedule.
    pub fn new(cfg: StudyConfig) -> Self {
        Study {
            cfg,
            stages: Self::default_schedule(),
        }
    }

    /// Creates a study with a custom stage schedule.
    pub fn with_schedule(cfg: StudyConfig, stages: Vec<Box<dyn DailyStage>>) -> Self {
        Study { cfg, stages }
    }

    /// The paper's daily programme, in order: crawl, enroll newly found
    /// stores, purchase-pair sampling, real purchases, AWStats sweep.
    pub fn default_schedule() -> Vec<Box<dyn DailyStage>> {
        vec![
            Box::new(CrawlStage),
            Box::new(EnrollStoresStage),
            Box::new(SamplePairsStage),
            Box::new(PurchaseStage),
            Box::new(AwstatsSweepStage),
        ]
    }

    /// Names of the registered stages, in execution order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Runs the full programme and returns its outputs.
    pub fn run(self) -> ss_types::Result<StudyOutput> {
        self.run_with(RunOptions::default())
    }

    /// Runs the programme with explicit run-plane options: resume from a
    /// checkpoint file and/or write checkpoints at a fixed day cadence.
    /// A resumed run reproduces the uninterrupted run's deterministic
    /// output bit for bit (headline, metrics, fingerprints); only the
    /// wall-clock sections describe the post-resume half alone.
    pub fn run_with(self, opts: RunOptions) -> ss_types::Result<StudyOutput> {
        let state = match &opts.resume_from {
            Some(path) => {
                let ckpt = state::load_checkpoint(std::path::Path::new(path))
                    .map_err(|e| ss_types::Error::Checkpoint(format!("{path}: {e}")))?;
                RunState::restore(ckpt, &self.cfg)
                    .map_err(|e| ss_types::Error::Checkpoint(format!("{path}: {e}")))?
            }
            None => RunState::build(&self.cfg)?,
        };
        self.drive(state, &opts)
    }

    /// Resumes from an already-decoded checkpoint — the in-memory path
    /// the intervention sweep uses to fork one checkpoint into arms.
    pub fn resume(self, ckpt: RunCheckpoint) -> ss_types::Result<StudyOutput> {
        let state = RunState::restore(ckpt, &self.cfg)
            .map_err(|e| ss_types::Error::Checkpoint(e.to_string()))?;
        self.drive(state, &RunOptions::default())
    }

    /// The daily driver: executes the registered schedule over the
    /// remaining window of `state`, then runs post-crawl collection and
    /// assembles the outputs. [`RunState`]'s two constructors (day-0
    /// build, checkpoint restore) are the only ways in.
    fn drive(self, mut state: RunState, opts: &RunOptions) -> ss_types::Result<StudyOutput> {
        let cfg = &self.cfg;
        let start = cfg.crawl_start;
        let end = cfg.crawl_end;

        // Wall-clock timeline for the Chrome trace export (only kept when
        // a trace path is configured; never part of determinism checks).
        let timeline = cfg.trace_path.is_some();
        let mut slices: Vec<StageSlice> = Vec::new();
        let run_clock = Instant::now();
        let slice = |slices: &mut Vec<StageSlice>, day: SimDate, stage, since: Instant| {
            let dur = since.elapsed().as_micros() as u64;
            slices.push(StageSlice {
                day: day.day_index(),
                stage,
                ts_us: (run_clock.elapsed().as_micros() as u64).saturating_sub(dur),
                dur_us: dur,
            });
        };
        {
            // ---- the daily programme: run the registered schedule ----
            let ctx = StageContext {
                cfg,
                start,
                obs: &state.obs,
            };
            for day in SimDate::range_inclusive(state.next_day, end) {
                let day_clock = Instant::now();
                {
                    let _day_span = ctx.obs.span("study.day");
                    let tick_clock = Instant::now();
                    ss_obs::time!(ctx.obs, "study.world_tick", state.world.run_until(day));
                    if timeline {
                        slice(&mut slices, day, "world-tick", tick_clock);
                    }
                    for stage in &self.stages {
                        let stage_clock = Instant::now();
                        {
                            let _stage_span = ctx.obs.span(stage.span_name());
                            stage.run(&ctx, &mut state.daily, &mut state.world, day);
                        }
                        if timeline {
                            slice(&mut slices, day, stage.name(), stage_clock);
                        }
                    }
                }
                // Drain the query plane's counters into the world registry
                // at the day boundary, *before* any checkpoint: snapshots
                // must never carry undrained residue, so a resumed run
                // counts `engine.serp_queries` identically to a full one.
                state.world.drain_engine_metrics();
                state.day_records.push(DayRecord {
                    day: day.day_index(),
                    psrs: state.daily.crawler.db.psrs.len() as u64,
                    test_orders: state.daily.sampler.orders_created as u64,
                    purchases: state.daily.transactions.len() as u64,
                    elapsed_ms: day_clock.elapsed().as_secs_f64() * 1_000.0,
                });
                state.next_day = day + 1;
                // Checkpoint at the day boundary. Saving observes the run
                // without perturbing it: no RNG draw, no deterministic
                // counter — only a wall-clock span.
                if let Some(every) = opts.checkpoint_every {
                    if every > 0 && day < end && day.days_since(start) % i64::from(every) == 0 {
                        let dir = opts.checkpoint_dir.as_deref().unwrap_or("checkpoints");
                        let path = format!("{dir}/checkpoint-day{:04}.ssnp", day.day_index());
                        let _ckpt_span = ctx.obs.span("study.checkpoint");
                        state::save_checkpoint(&state, cfg, std::path::Path::new(&path))
                            .map_err(|e| ss_types::Error::Checkpoint(format!("{path}: {e}")))?;
                    }
                }
            }
        }
        let RunState {
            mut world,
            daily,
            monitored,
            obs,
            day_records,
            next_day: _,
        } = state;
        let DailyState {
            crawler,
            sampler,
            mut transactions,
            awstats,
            purchased: _,
        } = daily;

        // ---- post-crawl collection ----

        // Supplier discovery via packing slips of completed purchases.
        let _supplier_span = obs.span("study.supplier");
        let mut supplier = None;
        for tx in &transactions {
            let Ok(host) = DomainName::parse(&tx.store_domain) else {
                continue;
            };
            if let Some(portal) = world.packing_slip(&host) {
                if let Some(max) = supplier_scrape::probe_max_order(&world, &portal) {
                    supplier = Some(supplier_scrape::scrape(&world, &portal, max, 4));
                }
                break;
            }
        }
        // The study's purchases *did* reach the supplier; if the random
        // purchase set missed every partnered store, buy once more from
        // one (still a legitimate purchase path).
        if supplier.is_none() {
            let partnered: Option<String> = crawler
                .db
                .detected_store_ids()
                .into_iter()
                .map(|id| crawler.db.domains.resolve(id))
                .find(|d| {
                    DomainName::parse(d)
                        .ok()
                        .and_then(|h| world.packing_slip(&h))
                        .is_some()
                })
                .map(str::to_owned);
            if let Some(domain) = partnered {
                if let Some(tx) = transactions::purchase(&mut world, &domain, end) {
                    transactions.push(tx);
                }
                let portal = world
                    .packing_slip(&DomainName::parse(&domain).expect("validated"))
                    .expect("checked above");
                if let Some(max) = supplier_scrape::probe_max_order(&world, &portal) {
                    supplier = Some(supplier_scrape::scrape(&world, &portal, max, 4));
                }
            }
        }

        drop(_supplier_span);

        // Campaign identification (§4.2).
        let attribution = ss_obs::time!(obs, "study.attribution", {
            attribution::attribute(&world, &crawler.db, &cfg.attribution, cfg.scenario.seed)
        });

        // The one shared aggregation pass every analysis reads from
        // (ticks the `analysis.passes` / `analysis.rows_scanned` counters).
        let scan = ss_obs::time!(obs, "study.analysis_scan", {
            StudyScan::compute(
                &crawler.db,
                &attribution,
                monitored.len(),
                (start + 1, end),
                cfg.analysis_threads,
                &obs,
            )
        });

        // Fold the ecosystem's own counters in and assemble the manifest.
        // Post-crawl collection (supplier probes, purchases) may have
        // queried the engine again — drain once more so nothing is lost.
        world.drain_engine_metrics();
        obs.merge_from(&world.metrics);
        let stage_names: Vec<&'static str> = self.stages.iter().map(|s| s.name()).collect();
        let measured = calibration_observables(&scan, (start + 1, end));
        if let Some(path) = &cfg.trace_path {
            manifest::chrome_trace(&obs, &slices, &day_records).write(path);
        }
        let run_manifest = RunManifest {
            config_hash: manifest::config_hash(cfg),
            seed: cfg.scenario.seed,
            window: ((start + 1).day_index(), end.day_index()),
            stage_timings: manifest::stage_timings(&obs, &stage_names),
            headline: manifest::headline(&crawler.db, &sampler, &transactions, &attribution),
            calibration: manifest::evaluate_calibration(&cfg.calibration, &measured),
            days: day_records,
            event_trail: manifest::trail_summary(&world.event_trail),
        };
        if let Some(path) = &cfg.manifest_path {
            run_manifest.write(&obs, path);
            // Collapsed-stack exports next to the manifest: wall-clock
            // self time (for flamegraph tooling) and the deterministic
            // cost weight (allocations + work units).
            if let Some(dir) = std::path::Path::new(path).parent() {
                let write = |name: &str, body: String| {
                    if let Err(e) = std::fs::write(dir.join(name), body) {
                        eprintln!("profile export: write {name} failed: {e}");
                    }
                };
                write("profile.folded", ss_obs::folded_wall(&obs));
                write("profile.cost.folded", ss_obs::folded_cost(&obs));
            }
        }

        Ok(StudyOutput {
            world,
            crawler,
            sampler,
            transactions,
            awstats,
            supplier,
            attribution,
            scan,
            monitored,
            window: (start + 1, end),
            metrics: obs,
            manifest: run_manifest,
        })
    }
}

/// Measures the calibration observables from the shared scan: total PSR
/// rows, the top-5 attributed campaigns' share of attributed PSRs
/// (paper: the top 5 account for ~60%), and the mean peak-range duration
/// across attributed campaigns (the Table 2 mean, paper: 51.3 days).
/// Mirrors `analysis::ecosystem::{top_k_psr_share, table2}` so the gate
/// and the report can never silently disagree.
fn calibration_observables(
    scan: &StudyScan,
    window: (SimDate, SimDate),
) -> Vec<(&'static str, f64)> {
    let attributed: u64 = scan.classes.iter().map(|c| c.psrs).sum();
    let mut counts: Vec<u64> = scan
        .classes
        .iter()
        .map(|c| c.psrs)
        .filter(|&n| n > 0)
        .collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let top5 = if attributed == 0 {
        0.0
    } else {
        counts.iter().take(5).sum::<u64>() as f64 / attributed as f64
    };
    let (start, end) = window;
    let mut peak_sum = 0.0;
    let mut peak_n = 0usize;
    for c in &scan.classes {
        let mut s = ss_stats::series::DailySeries::new(start, end);
        for day in SimDate::range_inclusive(start, end) {
            s.set(day, 0.0);
        }
        for (day, v) in c.daily.observed() {
            s.add(day, v);
        }
        if let Some(p) = ss_stats::peak::peak_range(&s, 0.6) {
            peak_sum += f64::from(p.days);
            peak_n += 1;
        }
    }
    vec![
        ("total_psrs", scan.rows as f64),
        ("top5_campaign_share", top5),
        (
            "mean_peak_days",
            if peak_n == 0 {
                0.0
            } else {
                peak_sum / peak_n as f64
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_produces_all_datasets() {
        let out = Study::new(StudyConfig::fast_test(71)).run().unwrap();
        assert!(!out.crawler.db.psrs.is_empty(), "no PSRs");
        assert!(out.crawler.db.detected_stores().count() > 0, "no stores");
        assert!(out.sampler.orders_created > 0, "no test orders");
        assert!(!out.transactions.is_empty(), "no purchases");
        assert!(out.supplier.is_some(), "supplier never scraped");
        assert!(!out.supplier.as_ref().unwrap().records.is_empty());
        assert_eq!(out.monitored.len(), out.world.verticals.len());
        // Attribution classified at least one store.
        assert!(out.attribution.store_class.values().any(|c| c.is_some()));
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = Study::new(StudyConfig::fast_test(72)).run().unwrap();
        let b = Study::new(StudyConfig::fast_test(72)).run().unwrap();
        assert_eq!(a.crawler.db.psrs.len(), b.crawler.db.psrs.len());
        assert_eq!(a.sampler.orders_created, b.sampler.orders_created);
        assert_eq!(a.transactions.len(), b.transactions.len());
        assert_eq!(
            a.attribution.store_class.len(),
            b.attribution.store_class.len()
        );
    }

    /// Enabling the full trace plane (recorders, event trail, calibration
    /// gate) must not perturb a single deterministic metric byte — the
    /// trace plane observes the run, it never steers it.
    #[test]
    fn trace_plane_records_without_perturbing_metrics() {
        let base = StudyConfig::fast_test(75);
        let mut traced = StudyConfig::fast_test(75);
        traced.set_trace(TraceLevel::Event);
        traced.calibration = vec![
            CalibrationTarget::new("total_psrs", 3_570_000.0, (1.0, 1e12), (1.0, 1e12)),
            CalibrationTarget::new("no_such_observable", 1.0, (0.0, 1.0), (0.0, 1.0)),
        ];
        let a = Study::new(base).run().unwrap();
        let b = Study::new(traced).run().unwrap();
        assert_eq!(a.metrics.metrics_json(), b.metrics.metrics_json());
        assert!(a.world.event_trail.is_empty(), "retention must default off");
        assert!(a.crawler.recorder.is_empty());
        assert!(!b.world.event_trail.is_empty(), "no tick events retained");
        assert!(!b.crawler.recorder.is_empty(), "no crawl events recorded");
        assert_eq!(b.manifest.calibration[0].status, "ok");
        assert_eq!(b.manifest.calibration[1].status, "warn");
    }

    #[test]
    fn default_schedule_registers_the_five_stages() {
        let study = Study::new(StudyConfig::fast_test(73));
        assert_eq!(
            study.stage_names(),
            [
                "crawl",
                "enroll-stores",
                "purchase-pairs",
                "purchases",
                "awstats-sweep"
            ]
        );
    }

    /// Runs a full fast-test study pinned to one JS engine and thread
    /// count; everything compared by the engine-equivalence tests.
    fn run_with_engine(engine: ss_web::js::JsEngine, threads: usize) -> StudyOutput {
        let mut cfg = StudyConfig::fast_test(76);
        cfg.crawler.js_engine = engine;
        cfg.set_threads(threads);
        Study::new(cfg).run().unwrap()
    }

    /// The tentpole guarantee at study level: swapping the bytecode VM for
    /// the treewalker changes *nothing observable* — cloaking verdicts,
    /// PSR stream, orders, purchases, attribution, and the manifest
    /// headline are byte-identical, at every thread count. (The merged
    /// metric registries are *not* compared: the VM records compile-cache
    /// counters the treewalker doesn't have.)
    #[test]
    fn js_engines_are_study_equivalent() {
        let tw = run_with_engine(ss_web::js::JsEngine::TreeWalk, 1);
        for threads in [1usize, 2, 8] {
            let vm = run_with_engine(ss_web::js::JsEngine::Vm, threads);
            assert_eq!(
                tw.crawler.db.psrs, vm.crawler.db.psrs,
                "PSRs differ (vm threads={threads})"
            );
            assert_eq!(tw.crawler.db.daily_counts, vm.crawler.db.daily_counts);
            assert_eq!(
                tw.sampler.orders_created, vm.sampler.orders_created,
                "order volume differs (vm threads={threads})"
            );
            assert_eq!(tw.transactions.len(), vm.transactions.len());
            assert_eq!(
                tw.attribution.store_class, vm.attribution.store_class,
                "attribution differs (vm threads={threads})"
            );
            assert_eq!(
                format!("{:?}", tw.manifest.headline),
                format!("{:?}", vm.manifest.headline),
                "manifest headline differs (vm threads={threads})"
            );
            // Engines must also agree doorway-by-doorway on the verdict.
            assert_eq!(
                tw.crawler.db.doorway_info.len(),
                vm.crawler.db.doorway_info.len()
            );
            for (id, info) in &tw.crawler.db.doorway_info {
                assert_eq!(info.cloak, vm.crawler.db.doorway_info[id].cloak);
            }
        }
    }

    /// The schedule is genuinely what drives the loop: dropping stages
    /// changes what gets produced, without touching the driver.
    #[test]
    fn trimmed_schedule_skips_omitted_programmes() {
        let mut cfg = StudyConfig::fast_test(74);
        cfg.crawl_end = cfg.crawl_start + 10;
        let study = Study::with_schedule(cfg, vec![Box::new(CrawlStage)]);
        let out = study.run().unwrap();
        assert!(
            !out.crawler.db.psrs.is_empty(),
            "crawl stage must still run"
        );
        assert_eq!(out.sampler.orders_created, 0, "sampling was not scheduled");
        assert!(out.awstats.is_empty(), "awstats was not scheduled");
    }
}

//! The study pipeline: §4's data-collection programme run end to end.

use std::collections::HashMap;

use ss_types::{DomainName, SimDate};

use ss_crawl::crawler::{Crawler, CrawlerConfig};
use ss_crawl::terms::{self, MonitoredVertical};
use ss_eco::{ScenarioConfig, World};
use ss_orders::analytics::{self, ParsedReport};
use ss_orders::purchasepair::{OrderSampler, SamplerConfig};
use ss_orders::supplier_scrape::{self, SupplierDataset};
use ss_orders::transactions::{self, Transaction};

use crate::attribution::{self, Attribution, AttributionConfig};

/// Study configuration: the scenario plus every §4 programme knob.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// The world scenario.
    pub scenario: ScenarioConfig,
    /// Crawler configuration (§4.1.2).
    pub crawler: CrawlerConfig,
    /// Purchase-pair sampler configuration (§4.3.1).
    pub sampler: SamplerConfig,
    /// Monitored terms per vertical (§4.1.1; paper: 100).
    pub monitored_terms: usize,
    /// Cap on stores enrolled in order monitoring (paper: 290 stores).
    pub monitor_store_cap: usize,
    /// Target number of real purchases (§4.3.2; paper: 16).
    pub purchase_target: usize,
    /// Campaign-identification configuration (§4.2).
    pub attribution: AttributionConfig,
    /// First crawl day (defaults to the paper's 2013-11-13).
    pub crawl_start: SimDate,
    /// Last crawl day inclusive (defaults to 2014-07-15, clamped to the
    /// scenario's end).
    pub crawl_end: SimDate,
    /// Days between AWStats collection sweeps (§4.4: "periodically").
    pub awstats_interval: u32,
}

impl StudyConfig {
    /// Paper-faithful defaults over a given scenario.
    pub fn new(scenario: ScenarioConfig) -> Self {
        let crawl_end_day = ss_types::CRAWL_END_DAY.min(scenario.scale.end_day);
        StudyConfig {
            crawler: CrawlerConfig {
                serp_depth: scenario.scale.serp_depth,
                ..CrawlerConfig::default()
            },
            sampler: SamplerConfig::default(),
            monitored_terms: scenario.scale.terms_per_vertical,
            monitor_store_cap: 290,
            purchase_target: 16,
            attribution: AttributionConfig::default(),
            crawl_start: SimDate::from_day_index(ss_types::CRAWL_START_DAY),
            crawl_end: SimDate::from_day_index(crawl_end_day),
            awstats_interval: 14,
            scenario,
        }
    }

    /// A fast configuration for tests: tiny world, short crawl, light
    /// training.
    pub fn fast_test(seed: u64) -> Self {
        let mut cfg = StudyConfig::new(ScenarioConfig::tiny(seed));
        cfg.monitored_terms = 6;
        cfg.crawler.serp_depth = 30;
        cfg.crawl_end = cfg.crawl_start + 16;
        cfg.attribution.train.epochs = 120;
        cfg.attribution.refine_rounds = 1;
        cfg.awstats_interval = 7;
        cfg
    }
}

/// Everything the study produced; the analyses feed on this.
pub struct StudyOutput {
    /// The (post-run) world — used for truth scoring and late fetches.
    pub world: World,
    /// The crawler with its database.
    pub crawler: Crawler,
    /// The purchase-pair sampler.
    pub sampler: OrderSampler,
    /// Completed purchases.
    pub transactions: Vec<Transaction>,
    /// AWStats reports per store domain, in collection order.
    pub awstats: HashMap<String, Vec<ParsedReport>>,
    /// Supplier dataset, when the portal was discovered.
    pub supplier: Option<SupplierDataset>,
    /// Campaign attribution artifacts.
    pub attribution: Attribution,
    /// Monitored term sets per vertical.
    pub monitored: Vec<MonitoredVertical>,
    /// Crawl window actually executed.
    pub window: (SimDate, SimDate),
}

/// The runnable study.
pub struct Study {
    /// Configuration.
    pub cfg: StudyConfig,
}

impl Study {
    /// Creates a study.
    pub fn new(cfg: StudyConfig) -> Self {
        Study { cfg }
    }

    /// Runs the full programme and returns its outputs.
    pub fn run(self) -> ss_types::Result<StudyOutput> {
        let cfg = self.cfg;
        let mut world = World::build(cfg.scenario.clone())?;
        let start = cfg.crawl_start;
        let end = cfg.crawl_end;

        // Warm the world to the eve of the crawl, then pick terms.
        world.run_until(start);
        let monitored =
            terms::select_all(&mut world, start, cfg.monitored_terms, cfg.scenario.seed);

        let mut crawler = Crawler::new(cfg.crawler.clone(), monitored.clone());
        let mut sampler = OrderSampler::new(cfg.sampler.clone());
        let mut transactions: Vec<Transaction> = Vec::new();
        let mut awstats: HashMap<String, Vec<ParsedReport>> = HashMap::new();
        let mut purchased_stores: Vec<String> = Vec::new();

        // ---- the daily programme ----
        for day in SimDate::range_inclusive(start + 1, end) {
            world.run_until(day);
            crawler.crawl_day(&mut world, day);

            // Newly detected stores join order monitoring (up to the cap),
            // keyed initially by their own domain; attribution re-groups
            // them later.
            if sampler.stores.len() < cfg.monitor_store_cap {
                let mut new_stores: Vec<String> = crawler
                    .db
                    .detected_stores()
                    .map(|(id, _)| crawler.db.domains.resolve(*id).to_owned())
                    .collect();
                // HashMap iteration order is unstable; sort so the cap
                // admits the same stores on every run.
                new_stores.sort();
                for domain in new_stores {
                    if sampler.stores.len() >= cfg.monitor_store_cap {
                        break;
                    }
                    sampler.monitor(&domain, &domain);
                }
            }
            sampler.sample_day(&mut world, day);

            // Purchases: spread through the window until the target is hit
            // (§4.3.2), at most one per store.
            if transactions.len() < cfg.purchase_target && day.day_index() % 9 == 0 {
                let mut all: Vec<String> = crawler
                    .db
                    .detected_stores()
                    .map(|(id, _)| crawler.db.domains.resolve(*id).to_owned())
                    .filter(|d| !purchased_stores.contains(d))
                    .collect();
                all.sort();
                let candidates: Vec<String> = all.into_iter().take(2).collect();
                for domain in candidates {
                    if let Some(tx) = transactions::purchase(&mut world, &domain, day) {
                        purchased_stores.push(domain);
                        transactions.push(tx);
                    }
                }
            }

            // Periodic AWStats sweep over detected stores (§4.4): most
            // return 404; the leaky ones yield reports.
            if day.days_since(start) % i64::from(cfg.awstats_interval) == 0 {
                let mut stores: Vec<String> = crawler
                    .db
                    .detected_stores()
                    .map(|(id, _)| crawler.db.domains.resolve(*id).to_owned())
                    .collect();
                stores.sort();
                for site in stores {
                    if let Some(report) = analytics::fetch_report(&mut world, &site, None) {
                        let entry = awstats.entry(site).or_default();
                        // Keep at most one report per period (latest wins).
                        entry.retain(|r| r.period != report.period);
                        entry.push(report);
                    }
                }
            }
        }

        // ---- post-crawl collection ----

        // Supplier discovery via packing slips of completed purchases.
        let mut supplier = None;
        for tx in &transactions {
            let Ok(host) = DomainName::parse(&tx.store_domain) else { continue };
            if let Some(portal) = world.packing_slip(&host) {
                if let Some(max) = supplier_scrape::probe_max_order(&mut world, &portal) {
                    supplier = Some(supplier_scrape::scrape(&mut world, &portal, max, 4));
                }
                break;
            }
        }
        // The study's purchases *did* reach the supplier; if the random
        // purchase set missed every partnered store, buy once more from
        // one (still a legitimate purchase path).
        if supplier.is_none() {
            let mut detected: Vec<String> = crawler
                .db
                .detected_stores()
                .map(|(id, _)| crawler.db.domains.resolve(*id).to_owned())
                .collect();
            detected.sort();
            let partnered: Option<String> = detected.into_iter().find(|d| {
                DomainName::parse(d).ok().and_then(|h| world.packing_slip(&h)).is_some()
            });
            if let Some(domain) = partnered {
                if let Some(tx) = transactions::purchase(&mut world, &domain, end) {
                    transactions.push(tx);
                }
                let portal = world
                    .packing_slip(&DomainName::parse(&domain).expect("validated"))
                    .expect("checked above");
                if let Some(max) = supplier_scrape::probe_max_order(&mut world, &portal) {
                    supplier = Some(supplier_scrape::scrape(&mut world, &portal, max, 4));
                }
            }
        }

        // Campaign identification (§4.2).
        let attribution =
            attribution::attribute(&world, &crawler.db, &cfg.attribution, cfg.scenario.seed);

        Ok(StudyOutput {
            world,
            crawler,
            sampler,
            transactions,
            awstats,
            supplier,
            attribution,
            monitored,
            window: (start + 1, end),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_produces_all_datasets() {
        let out = Study::new(StudyConfig::fast_test(71)).run().unwrap();
        assert!(!out.crawler.db.psrs.is_empty(), "no PSRs");
        assert!(out.crawler.db.detected_stores().count() > 0, "no stores");
        assert!(out.sampler.orders_created > 0, "no test orders");
        assert!(!out.transactions.is_empty(), "no purchases");
        assert!(out.supplier.is_some(), "supplier never scraped");
        assert!(!out.supplier.as_ref().unwrap().records.is_empty());
        assert_eq!(out.monitored.len(), out.world.verticals.len());
        // Attribution classified at least one store.
        assert!(out.attribution.store_class.values().any(|c| c.is_some()));
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = Study::new(StudyConfig::fast_test(72)).run().unwrap();
        let b = Study::new(StudyConfig::fast_test(72)).run().unwrap();
        assert_eq!(a.crawler.db.psrs.len(), b.crawler.db.psrs.len());
        assert_eq!(a.sampler.orders_created, b.sampler.orders_created);
        assert_eq!(a.transactions.len(), b.transactions.len());
        assert_eq!(
            a.attribution.store_class.len(),
            b.attribution.store_class.len()
        );
    }
}

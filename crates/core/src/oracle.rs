//! The simulated domain expert.
//!
//! §4.2 required "a domain expert to examine each Web page … using
//! domain-specific heuristics to infer the SEO campaign behind it". Our
//! expert is backed by simulator ground truth with a configurable error
//! rate, standing in for the human analysts. Two uses:
//!
//! * building the initial labeled seed (the paper's 491 manually labeled
//!   pages);
//! * validating the classifier's top predictions in the §4.2.3 refinement
//!   rounds (the expert cross-checks infrastructure — C&C, payment,
//!   templates — before confirming a label).
//!
//! This is the only place the pipeline touches ground truth, and it
//! mirrors what the original analysts could genuinely do by hand.

use rand::Rng;
use ss_types::rng::{sub_rng, SimRng};
use ss_types::DomainName;

use ss_eco::domains::SiteKind;
use ss_eco::World;
use ss_ml::refine::Oracle;

/// The expert: resolves a store domain to its true campaign name, with a
/// small chance of error or abstention.
pub struct WorldOracle<'w> {
    world: &'w World,
    /// Pool of store domain names the expert can be asked about, aligned
    /// with the classifier's sample indexing.
    pub pool_domains: Vec<String>,
    /// Class names the classifier uses (classified campaigns only).
    pub class_names: Vec<String>,
    /// Probability the expert mislabels a sample (assigns a random class).
    pub error_rate: f64,
    rng: SimRng,
    /// Consultations so far (each costs analyst time in the real study).
    pub consultations: usize,
}

impl<'w> WorldOracle<'w> {
    /// Creates an oracle over a sample pool of store domains.
    pub fn new(
        world: &'w World,
        pool_domains: Vec<String>,
        class_names: Vec<String>,
        error_rate: f64,
        seed: u64,
    ) -> Self {
        WorldOracle {
            world,
            pool_domains,
            class_names,
            error_rate,
            rng: sub_rng(seed, "oracle"),
            consultations: 0,
        }
    }

    /// True campaign name of a store domain, when it belongs to one of the
    /// classified (nameable) campaigns. Shadow-campaign stores return
    /// `None` — the expert sees an unfamiliar operation and declines to
    /// name it.
    pub fn true_campaign(&self, domain: &str) -> Option<String> {
        let name = DomainName::parse(domain).ok()?;
        let id = self.world.domains.lookup(&name)?;
        let SiteKind::Storefront { store } = self.world.domains.get(id).kind else {
            return None;
        };
        let campaign = self.world.campaigns.row(self.world.store(store).campaign);
        campaign.classified.then(|| campaign.name.to_owned())
    }

    /// Class index for a campaign name.
    pub fn class_of(&self, campaign: &str) -> Option<usize> {
        self.class_names.iter().position(|c| c == campaign)
    }
}

impl Oracle for WorldOracle<'_> {
    fn label(&mut self, idx: usize) -> Option<usize> {
        self.consultations += 1;
        let domain = self.pool_domains.get(idx)?.clone();
        let truth = self.true_campaign(&domain)?;
        let class = self.class_of(&truth)?;
        if self.error_rate > 0.0 && self.rng.gen::<f64>() < self.error_rate {
            // A confident-but-wrong expert call.
            let wrong = self.rng.gen_range(0..self.class_names.len());
            return Some(wrong);
        }
        Some(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_eco::ScenarioConfig;

    #[test]
    fn oracle_names_classified_campaigns_only() {
        let w = World::build(ScenarioConfig::tiny(51)).unwrap();
        // A classified store.
        let classified = w
            .stores
            .iter()
            .find(|s| w.campaigns.row(s.campaign).classified)
            .unwrap();
        let dom = w
            .domains
            .get(classified.current_domain)
            .name
            .as_str()
            .to_owned();
        let names: Vec<String> = w
            .campaigns
            .iter()
            .filter(|c| c.classified)
            .map(|c| c.name.to_owned())
            .collect();
        let oracle = WorldOracle::new(&w, vec![dom.clone()], names, 0.0, 1);
        let truth = oracle.true_campaign(&dom).unwrap();
        assert_eq!(truth, w.campaigns.row(classified.campaign).name);

        // A shadow store gets no name.
        let shadow = w
            .stores
            .iter()
            .find(|s| !w.campaigns.row(s.campaign).classified)
            .unwrap();
        let sdom = w
            .domains
            .get(shadow.current_domain)
            .name
            .as_str()
            .to_owned();
        assert_eq!(oracle.true_campaign(&sdom), None);

        // Non-stores get no name either.
        assert_eq!(oracle.true_campaign("not-registered-anywhere.com"), None);
    }

    #[test]
    fn labeling_respects_error_rate() {
        let w = World::build(ScenarioConfig::tiny(51)).unwrap();
        let store = w
            .stores
            .iter()
            .find(|s| w.campaigns.row(s.campaign).classified)
            .unwrap();
        let dom = w.domains.get(store.current_domain).name.as_str().to_owned();
        let truth_name = w.campaigns.row(store.campaign).name.to_owned();
        let names: Vec<String> = w
            .campaigns
            .iter()
            .filter(|c| c.classified)
            .map(|c| c.name.to_owned())
            .collect();
        let truth_class = names.iter().position(|n| *n == truth_name).unwrap();

        let mut perfect = WorldOracle::new(&w, vec![dom.clone(); 50], names.clone(), 0.0, 2);
        for i in 0..50 {
            assert_eq!(perfect.label(i), Some(truth_class));
        }
        assert_eq!(perfect.consultations, 50);

        let mut flaky = WorldOracle::new(&w, vec![dom; 400], names, 0.3, 3);
        let wrong = (0..400)
            .filter(|&i| flaky.label(i) != Some(truth_class))
            .count();
        // ~30% error, minus accidental correct random picks.
        assert!((50..180).contains(&wrong), "wrong={wrong}");
    }
}

//! # search-seizure
//!
//! End-to-end reproduction of *"Search + Seizure: The Effectiveness of
//! Interventions on SEO Campaigns"* (IMC 2014) — the paper's methodology
//! run against the `ss-eco` world simulator:
//!
//! * [`pipeline`] — the study itself: build the world, select monitored
//!   terms (§4.1.1), crawl daily (§4.1.2), detect stores (§4.1.3), place
//!   weekly test orders (§4.3.1), make purchases (§4.3.2), collect AWStats
//!   (§4.4), scrape the supplier (§4.5);
//! * [`oracle`] — the simulated domain expert standing in for the paper's
//!   manual labeling (§4.2), with configurable error;
//! * [`attribution`] — campaign identification: feature extraction,
//!   training with iterative refinement, PSR → campaign mapping (§4.2);
//! * [`analysis`] — one module per table/figure/statistic in the paper's
//!   evaluation, each returning structured results plus renderable views;
//! * [`report`] — paper-vs-measured comparison records and the
//!   EXPERIMENTS.md generator;
//! * [`state`] — the run-level state plane: versioned checkpoint frames,
//!   `--resume-from` restore, and the fork point for checkpoint-based
//!   intervention sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod attribution;
pub mod explain;
pub mod manifest;
pub mod oracle;
pub mod pipeline;
pub mod report;
pub mod state;

pub use pipeline::{Study, StudyConfig, StudyOutput};
pub use state::{CheckpointError, RunCheckpoint, RunOptions, RunState};

//! Campaign identification (§4.2): features → seed labeling → training
//! with refinement → store and PSR attribution.

use std::collections::HashMap;

use ss_eco::World;
use ss_ml::eval::{cross_validate, CvResult};
use ss_ml::logreg::{MulticlassModel, TrainConfig};
use ss_ml::refine::{refine, RefineResult};
use ss_ml::sparse::SparseVec;
use ss_ml::{extract_features, Dictionary};

use ss_crawl::CrawlDb;

use crate::oracle::WorldOracle;

/// The attribution artifacts the analyses consume.
pub struct Attribution {
    /// Class names (classified campaign names), classifier indexing.
    pub class_names: Vec<String>,
    /// The trained model.
    pub model: MulticlassModel,
    /// The feature dictionary.
    pub dict: Dictionary,
    /// store interned-domain id → class index (None = unknown/abstained).
    pub store_class: HashMap<u32, Option<usize>>,
    /// Labeled training set size after refinement.
    pub labeled_count: usize,
    /// Seed labeled set size (pre-refinement).
    pub seed_count: usize,
    /// Oracle consultations spent.
    pub oracle_queries: usize,
    /// Cross-validation result on the final labeled set.
    pub cv: CvResult,
    /// Feature vectors per pool entry (kept for re-scoring experiments).
    pub pool_domains: Vec<String>,
}

/// Attribution configuration.
#[derive(Debug, Clone)]
pub struct AttributionConfig {
    /// Seed labels per campaign the expert provides up front.
    pub seed_per_campaign: usize,
    /// Refinement rounds (§4.2.3).
    pub refine_rounds: usize,
    /// Top predictions per class validated per round.
    pub validate_per_class: usize,
    /// Expert error rate.
    pub oracle_error: f64,
    /// Trainer hyperparameters.
    pub train: TrainConfig,
    /// Cross-validation folds (paper: 10).
    pub cv_folds: usize,
}

impl Default for AttributionConfig {
    fn default() -> Self {
        AttributionConfig {
            // ~9 per campaign over 52 campaigns lands near the paper's
            // 491-page seed.
            seed_per_campaign: 9,
            refine_rounds: 2,
            validate_per_class: 3,
            oracle_error: 0.02,
            train: TrainConfig::default(),
            cv_folds: 10,
        }
    }
}

/// Runs the full §4.2 pipeline over the crawler's detected stores.
pub fn attribute(world: &World, db: &CrawlDb, cfg: &AttributionConfig, seed: u64) -> Attribution {
    // The classification corpus: every detected store's captured HTML.
    let mut pool_domains: Vec<String> = Vec::new();
    let mut pool_html: Vec<&str> = Vec::new();
    for (id, info) in db.detected_stores() {
        pool_domains.push(db.domains.resolve(*id).to_owned());
        pool_html.push(&info.html);
    }

    // Feature extraction (dictionary grows over the whole corpus, as when
    // vectorizing a fixed crawl).
    let mut dict = Dictionary::new();
    let pool: Vec<SparseVec> = pool_html
        .iter()
        .map(|h| extract_features(h, &mut dict, true))
        .collect();

    // The nameable campaign universe comes from expert analysis of C&C and
    // URL patterns (Table 2's naming); our expert enumerates it directly.
    let class_names: Vec<String> = world
        .campaigns
        .iter()
        .filter(|c| c.classified)
        .map(|c| c.name.to_owned())
        .collect();

    let mut oracle = WorldOracle::new(
        world,
        pool_domains.clone(),
        class_names.clone(),
        cfg.oracle_error,
        seed,
    );

    // Seed labeling: the expert labels up to N stores per campaign from
    // the corpus (the 491-page seed of §4.2).
    let mut per_class_count: HashMap<usize, usize> = HashMap::new();
    let mut seed_labels: Vec<(usize, usize)> = Vec::new();
    for (i, domain) in pool_domains.iter().enumerate() {
        if let Some(name) = oracle.true_campaign(domain) {
            if let Some(class) = oracle.class_of(&name) {
                let count = per_class_count.entry(class).or_insert(0);
                if *count < cfg.seed_per_campaign {
                    seed_labels.push((i, class));
                    *count += 1;
                    oracle.consultations += 1;
                }
            }
        }
    }
    let seed_count = seed_labels.len();

    // Train + refine (§4.2.2–4.2.3).
    let RefineResult {
        model,
        labeled,
        oracle_queries,
        ..
    } = refine(
        &pool,
        &seed_labels,
        &class_names,
        dict.len(),
        &cfg.train,
        &mut oracle,
        cfg.validate_per_class,
        cfg.refine_rounds,
    );

    // Cross-validate on the final labeled set (§4.2.2 reports 10-fold CV).
    let xs: Vec<SparseVec> = labeled.iter().map(|(i, _)| pool[*i].clone()).collect();
    let ys: Vec<usize> = labeled.iter().map(|(_, c)| *c).collect();
    let folds = cfg.cv_folds.min(xs.len().max(2)).max(2);
    let cv = cross_validate(&xs, &ys, &class_names, dict.len(), folds, &cfg.train, seed);

    // Attribute every detected store.
    let mut store_class: HashMap<u32, Option<usize>> = HashMap::new();
    for (i, domain) in pool_domains.iter().enumerate() {
        let id = db.domains.get(domain).expect("pool came from the db");
        let class = model.predict(&pool[i]).map(|(c, _)| c);
        store_class.insert(id, class);
    }

    Attribution {
        class_names,
        model,
        dict,
        store_class,
        labeled_count: labeled.len(),
        seed_count,
        oracle_queries,
        cv,
        pool_domains,
    }
}

impl Attribution {
    /// Campaign class of a PSR (via its landing store), `None` = unknown.
    pub fn psr_class(&self, psr: &ss_crawl::db::PsrRecord) -> Option<usize> {
        self.store_class.get(&psr.landing?).copied().flatten()
    }

    /// Class index by campaign name.
    pub fn class_index(&self, name: &str) -> Option<usize> {
        self.class_names.iter().position(|c| c == name)
    }

    /// The most characteristic HTML features of a class (for forensics
    /// output; §4.2.2's interpretability claim).
    pub fn top_features_of(&self, class: usize, k: usize) -> Vec<(String, f32)> {
        self.model.classes[class]
            .top_features(k)
            .into_iter()
            .map(|(i, w)| (self.dict.token(i).to_owned(), w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_crawl::crawler::{Crawler, CrawlerConfig};
    use ss_crawl::terms;
    use ss_eco::ScenarioConfig;
    use ss_types::SimDate;

    fn crawled_world() -> (World, Crawler) {
        let mut w = World::build(ScenarioConfig::tiny(61)).unwrap();
        let start = SimDate::from_day_index(ss_types::CRAWL_START_DAY);
        w.run_until(start);
        let monitored = terms::select_all(&w, start, 6, 5);
        let mut crawler = Crawler::new(
            CrawlerConfig {
                serp_depth: 30,
                ..CrawlerConfig::default()
            },
            monitored,
        );
        for d in 1..=8u32 {
            let day = start + d;
            w.run_until(day);
            crawler.crawl_day(&w, day);
        }
        (w, crawler)
    }

    #[test]
    fn attribution_learns_real_campaigns() {
        let (w, crawler) = crawled_world();
        let cfg = AttributionConfig {
            train: TrainConfig {
                epochs: 120,
                ..TrainConfig::default()
            },
            refine_rounds: 1,
            ..AttributionConfig::default()
        };
        let attr = attribute(&w, &crawler.db, &cfg, 7);
        assert_eq!(attr.class_names.len(), 52);
        assert!(attr.seed_count > 0, "no seed labels");
        assert!(attr.labeled_count >= attr.seed_count);

        // Score attribution against ground truth for the stores that were
        // classified (abstentions excluded).
        let oracle = WorldOracle::new(&w, vec![], attr.class_names.clone(), 0.0, 1);
        let mut correct = 0usize;
        let mut wrong = 0usize;
        for (id, class) in &attr.store_class {
            let Some(class) = class else { continue };
            let domain = crawler.db.domains.resolve(*id);
            match oracle.true_campaign(domain) {
                Some(truth) => {
                    if attr.class_names[*class] == truth {
                        correct += 1;
                    } else {
                        wrong += 1;
                    }
                }
                None => wrong += 1, // shadow store confidently misattributed
            }
        }
        assert!(correct > 0, "nothing attributed correctly");
        let precision = correct as f64 / (correct + wrong).max(1) as f64;
        assert!(
            precision > 0.6,
            "precision {precision} ({correct}/{})",
            correct + wrong
        );
    }

    #[test]
    fn top_features_carry_campaign_signatures() {
        let (w, crawler) = crawled_world();
        let cfg = AttributionConfig {
            train: TrainConfig {
                epochs: 120,
                ..TrainConfig::default()
            },
            refine_rounds: 0,
            ..AttributionConfig::default()
        };
        let attr = attribute(&w, &crawler.db, &cfg, 7);
        // Find a class with training data and inspect its features.
        let class = (0..attr.class_names.len())
            .find(|&c| !attr.model.classes[c].top_features(1).is_empty());
        if let Some(c) = class {
            let feats = attr.top_features_of(c, 5);
            assert!(!feats.is_empty());
            assert!(feats.iter().all(|(_, w)| *w > 0.0));
        }
    }
}

//! Side-channel datasets: the supplier ledger (§4.5), conversion metrics
//! (§5.2.3), and the purchase programme summary (§4.3).

use std::collections::HashSet;

use ss_orders::analytics::{conversion_metrics, ConversionMetrics};
use ss_web::pagegen::supplier::ShipStatus;

use crate::pipeline::StudyOutput;

/// §4.5 results: the supplier shipment ledger.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SupplierAnalysis {
    /// Records recovered.
    pub records: u64,
    /// Delivered / seized-at-source / seized-at-destination / returned.
    pub delivered: u64,
    /// Seized by customs at origin.
    pub seized_source: u64,
    /// Seized at destination.
    pub seized_destination: u64,
    /// Returned by the customer.
    pub returned: u64,
    /// Top destination countries with counts.
    pub top_countries: Vec<(String, usize)>,
    /// Share of orders destined for US + Japan + Australia + W. Europe
    /// (paper: over 81%).
    pub top_market_share: f64,
    /// Lookup queries the scrape needed (20 ids each).
    pub queries: u64,
}

/// Computes the supplier analysis; `None` when the portal was never found.
pub fn supplier(out: &StudyOutput) -> Option<SupplierAnalysis> {
    let ds = out.supplier.as_ref()?;
    let status = ds.status_counts();
    let get = |s: ShipStatus| *status.get(&s).unwrap_or(&0) as u64;
    Some(SupplierAnalysis {
        records: ds.records.len() as u64,
        delivered: get(ShipStatus::Delivered),
        seized_source: get(ShipStatus::SeizedAtSource),
        seized_destination: get(ShipStatus::SeizedAtDestination),
        returned: get(ShipStatus::Returned),
        top_countries: ds.country_counts().into_iter().take(5).collect(),
        top_market_share: ds.share_of(&[
            "United States",
            "Japan",
            "Australia",
            "United Kingdom",
            "Germany",
            "France",
            "Italy",
        ]),
        queries: ds.queries as u64,
    })
}

/// §5.2.3 conversion case study for a store (by domain prefix).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ConversionAnalysis {
    /// Store domains matched.
    pub domains: Vec<String>,
    /// Parsed metrics.
    pub visits: u64,
    /// Referrer-set fraction (paper: 60%).
    pub referrer_fraction: f64,
    /// Pages per visit (paper: 5.6).
    pub pages_per_visit: f64,
    /// Conversion rate (paper: 0.7%).
    pub conversion_rate: f64,
    /// Visits per sale (paper: ~151).
    pub visits_per_sale: f64,
    /// Fraction of referrer hosts that the crawler independently saw as
    /// poisoned doorways (paper: 47.7%).
    pub doorway_overlap: f64,
}

/// Computes conversion metrics for stores whose domain starts with
/// `pattern`, using AWStats reports plus the purchase-pair order estimate
/// over the same window.
pub fn conversion(out: &StudyOutput, pattern: &str) -> Option<ConversionAnalysis> {
    let mut domains: Vec<String> = out
        .awstats
        .keys()
        .filter(|d| d.starts_with(pattern))
        .cloned()
        .collect();
    domains.sort();
    if domains.is_empty() {
        return None;
    }
    let reports: Vec<_> = domains
        .iter()
        .flat_map(|d| out.awstats.get(d).cloned().unwrap_or_default())
        .collect();

    // Order estimate over the report window from the purchase-pair data.
    let (start, end) = out.window;
    let orders: f64 = domains
        .iter()
        .filter_map(|d| out.sampler.rate_series(d, start, end))
        .map(|r| r.sum())
        .sum();
    let m: ConversionMetrics = conversion_metrics(&reports, orders)?;

    // Cross-check referrers against the crawler's poisoned-domain set.
    let poisoned: HashSet<&str> = out
        .crawler
        .db
        .poisoned_domains()
        .map(|(id, _)| out.crawler.db.domains.resolve(*id))
        .collect();
    let known = m
        .referrer_hosts
        .iter()
        .filter(|h| poisoned.contains(h.as_str()))
        .count();
    let doorway_overlap = if m.referrer_hosts.is_empty() {
        0.0
    } else {
        known as f64 / m.referrer_hosts.len() as f64
    };

    Some(ConversionAnalysis {
        domains,
        visits: m.visits,
        referrer_fraction: m.referrer_fraction,
        pages_per_visit: m.pages_per_visit,
        conversion_rate: m.conversion_rate,
        visits_per_sale: m.visits_per_sale,
        doorway_overlap,
    })
}

/// §4.3 programme summary.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PurchaseProgramme {
    /// Test orders created (paper: 1,408).
    pub test_orders: u64,
    /// Stores successfully sampled (paper: 290).
    pub stores_sampled: u64,
    /// Distinct attributed campaigns touched by sampling (paper: 24).
    pub campaigns_touched: u64,
    /// Distinct verticals touched (paper: 13).
    pub verticals_touched: u64,
    /// Completed real purchases (paper: 16).
    pub purchases: u64,
    /// Distinct campaigns among purchases (paper: 12).
    pub purchase_campaigns: u64,
    /// Settling banks with purchase counts (paper: 3 banks — 2 CN, 1 KR).
    pub banks: Vec<(String, usize)>,
}

/// Computes the purchase-programme summary.
pub fn purchases(out: &StudyOutput) -> PurchaseProgramme {
    let class_of = |domain: &str| -> Option<usize> {
        out.crawler
            .db
            .domains
            .get(domain)
            .and_then(|id| out.attribution.store_class.get(&id))
            .copied()
            .flatten()
    };

    let mut campaigns: HashSet<usize> = HashSet::new();
    let mut sampled_ids: HashSet<u32> = HashSet::new();
    for (domain, mon) in &out.sampler.stores {
        if mon.samples.is_empty() {
            continue;
        }
        if let Some(c) = class_of(domain) {
            campaigns.insert(c);
        }
        if let Some(id) = out.crawler.db.domains.get(domain) {
            sampled_ids.insert(id);
        }
    }
    // Verticals whose PSRs landed on a sampled store, off the scan's
    // (landing, vertical) pair set instead of a per-store corpus pass.
    let verticals: HashSet<u16> = out
        .scan
        .landing_verticals
        .iter()
        .filter(|(l, _)| sampled_ids.contains(l))
        .map(|(_, v)| *v)
        .collect();

    let mut purchase_campaigns: HashSet<usize> = HashSet::new();
    for tx in &out.transactions {
        if let Some(c) = class_of(&tx.store_domain) {
            purchase_campaigns.insert(c);
        }
    }

    PurchaseProgramme {
        test_orders: out.sampler.orders_created as u64,
        stores_sampled: out.sampler.stores_sampled() as u64,
        campaigns_touched: campaigns.len() as u64,
        verticals_touched: verticals.len() as u64,
        purchases: out.transactions.len() as u64,
        purchase_campaigns: purchase_campaigns.len() as u64,
        banks: ss_orders::transactions::bank_concentration(&out.transactions),
    }
}

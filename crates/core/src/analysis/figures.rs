//! Figure regeneration: the data behind Figures 2–6 as CSV series plus
//! terminal sparkline views.

use std::collections::HashSet;

use ss_stats::{render, DailySeries};
use ss_types::SimDate;

use crate::pipeline::StudyOutput;

/// Figure 2 data for one vertical: stacked attribution of PSR share.
#[derive(Debug, Clone)]
pub struct Fig2Vertical {
    /// Vertical name.
    pub name: String,
    /// Daily % of crawled results that are poisoned.
    pub poisoned_pct: DailySeries,
    /// Per-campaign daily % share (largest campaigns first; the rest fold
    /// into "misc"), plus `unknown` and `penalized` series.
    pub campaign_pct: Vec<(String, DailySeries)>,
    /// Daily % of results that were poisoned AND penalized (labeled or
    /// pointing at an observed-seized store).
    pub penalized_pct: DailySeries,
}

/// Builds Figure 2 for a vertical (by monitored index), keeping the top
/// `max_campaigns` campaigns as named series. All per-PSR work comes from
/// the shared one-pass scan; only the daily-count denominator is local.
pub fn fig2(out: &StudyOutput, vertical: usize, max_campaigns: usize) -> Fig2Vertical {
    let (start, end) = out.window;
    let db = &out.crawler.db;

    // Denominator: results crawled per day in this vertical.
    let mut seen = DailySeries::new(start, end);
    for c in &db.daily_counts {
        if c.vertical == vertical as u16 {
            seen.add(c.day, f64::from(c.total_seen));
        }
    }

    let v = &out.scan.verticals[vertical];

    let pct = |num: &DailySeries| -> DailySeries {
        let mut out_s = DailySeries::new(start, end);
        for day in SimDate::range_inclusive(start, end) {
            let d = seen.get(day).unwrap_or(0.0);
            if d > 0.0 {
                out_s.set(day, num.get(day).unwrap_or(0.0) / d * 100.0);
            }
        }
        out_s
    };

    // Rank campaigns by mass; top N named, remainder folded into "misc".
    // Classes are visited in index order so equal-mass ties break
    // deterministically by class index.
    let mut keys: Vec<Option<usize>> = v.per_class.keys().copied().collect();
    keys.sort_unstable();
    let mut named: Vec<(usize, f64)> = keys
        .iter()
        .filter_map(|k| k.map(|c| (c, v.per_class[k].sum())))
        .collect();
    named.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let keep: Vec<usize> = named.iter().take(max_campaigns).map(|(c, _)| *c).collect();

    let mut campaign_pct: Vec<(String, DailySeries)> = Vec::new();
    let mut misc = DailySeries::new(start, end);
    let mut unknown = DailySeries::new(start, end);
    for class in keys {
        let series = &v.per_class[&class];
        match class {
            Some(c) if keep.contains(&c) => {
                campaign_pct.push((out.attribution.class_names[c].clone(), pct(series)));
            }
            Some(_) => {
                for (d, val) in series.observed() {
                    misc.add(d, val);
                }
            }
            None => {
                for (d, val) in series.observed() {
                    unknown.add(d, val);
                }
            }
        }
    }
    campaign_pct.sort_by(|a, b| {
        b.1.sum()
            .partial_cmp(&a.1.sum())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    campaign_pct.push(("misc".into(), pct(&misc)));
    campaign_pct.push(("unknown".into(), pct(&unknown)));

    Fig2Vertical {
        name: out.monitored[vertical].name.clone(),
        poisoned_pct: pct(&v.poisoned),
        campaign_pct,
        penalized_pct: pct(&v.penalized),
    }
}

impl Fig2Vertical {
    /// CSV with one column per series.
    pub fn to_csv(&self) -> String {
        let mut cols: Vec<(&str, &DailySeries)> = vec![
            ("poisoned_pct", &self.poisoned_pct),
            ("penalized_pct", &self.penalized_pct),
        ];
        for (name, s) in &self.campaign_pct {
            cols.push((name.as_str(), s));
        }
        render::series_csv(&cols)
    }

    /// Terminal sparkline summary.
    pub fn to_text(&self, width: usize) -> String {
        let mut outp = format!("Figure 2 — {}\n", self.name);
        outp.push_str(&format!(
            "  poisoned  {}\n",
            render::sparkline_compact(&self.poisoned_pct, width)
        ));
        for (name, s) in self.campaign_pct.iter().take(6) {
            outp.push_str(&format!(
                "  {name:<9} {}\n",
                render::sparkline_compact(s, width)
            ));
        }
        outp.push_str(&format!(
            "  penalized {}\n",
            render::sparkline_compact(&self.penalized_pct, width)
        ));
        outp
    }
}

/// Figure 3 row: poisoning envelope for one vertical.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig3Row {
    /// Vertical name.
    pub name: String,
    /// Min/max daily % of top-10 results poisoned.
    pub top10: (f64, f64),
    /// Min/max daily % of top-100 (crawled depth) results poisoned.
    pub top100: (f64, f64),
    /// Paper envelope `(t10_min, t10_max, t100_min, t100_max)`.
    pub paper: (f64, f64, f64, f64),
}

/// Builds Figure 3 across all verticals, plus the raw daily series for
/// sparkline rendering.
pub fn fig3(out: &StudyOutput) -> (Vec<Fig3Row>, Vec<(DailySeries, DailySeries)>) {
    let (start, end) = out.window;
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (vi, mv) in out.monitored.iter().enumerate() {
        let mut t10 = DailySeries::new(start, end);
        let mut t100 = DailySeries::new(start, end);
        for c in &out.crawler.db.daily_counts {
            if c.vertical != vi as u16 {
                continue;
            }
            if c.top10_seen > 0 {
                t10.set(
                    c.day,
                    f64::from(c.top10_poisoned) / f64::from(c.top10_seen) * 100.0,
                );
            }
            if c.total_seen > 0 {
                t100.set(
                    c.day,
                    f64::from(c.total_poisoned) / f64::from(c.total_seen) * 100.0,
                );
            }
        }
        let spec = out.world.verticals[vi].spec;
        rows.push(Fig3Row {
            name: mv.name.clone(),
            top10: t10.min_max().unwrap_or((0.0, 0.0)),
            top100: t100.min_max().unwrap_or((0.0, 0.0)),
            paper: (
                spec.fig3.top10_min,
                spec.fig3.top10_max,
                spec.fig3.top100_min,
                spec.fig3.top100_max,
            ),
        });
        series.push((t10, t100));
    }
    (rows, series)
}

/// Renders Figure 3 as sparkline pairs, in the paper's layout.
pub fn fig3_text(rows: &[Fig3Row], series: &[(DailySeries, DailySeries)], width: usize) -> String {
    let mut s = String::from(
        "Figure 3 — % of results poisoned (top-10 | top-100), min..max, paper in ()\n",
    );
    for (row, (t10, t100)) in rows.iter().zip(series) {
        s.push_str(&format!(
            "{:<14} {:5.2}..{:5.2} {} ({:.2}..{:.2}) | {:5.2}..{:5.2} {} ({:.2}..{:.2})\n",
            row.name,
            row.top10.0,
            row.top10.1,
            render::sparkline_compact(t10, width),
            row.paper.0,
            row.paper.1,
            row.top100.0,
            row.top100.1,
            render::sparkline_compact(t100, width),
            row.paper.2,
            row.paper.3,
        ));
    }
    s
}

/// Figure 4 panel for one campaign: PSR visibility vs order activity.
#[derive(Debug, Clone)]
pub struct Fig4Campaign {
    /// Campaign name.
    pub name: String,
    /// Daily PSR counts across the crawled depth.
    pub top100: DailySeries,
    /// Daily PSR counts in the top 10.
    pub top10: DailySeries,
    /// Daily count of labeled ("hacked") PSRs.
    pub labeled: DailySeries,
    /// Representative store's cumulative order-number growth.
    pub volume: Option<DailySeries>,
    /// Representative store's estimated daily order rate.
    pub rate: Option<DailySeries>,
    /// The representative store's domain.
    pub store_domain: Option<String>,
    /// Pearson correlation between PSR visibility and order rate.
    pub visibility_rate_correlation: Option<f64>,
}

/// Builds a Figure 4 panel for a campaign by name. Returns `None` when the
/// campaign was never attributed in this run.
pub fn fig4(out: &StudyOutput, campaign: &str) -> Option<Fig4Campaign> {
    let class = out.attribution.class_index(campaign)?;
    let (start, end) = out.window;
    let top100 = super::campaign_psr_series(out, class, false);
    let top10 = super::campaign_psr_series(out, class, true);
    let labeled = out.scan.classes[class].labeled.clone();

    // Representative store: the monitored store of this campaign with the
    // most samples (mirrors "stores … visible in PSRs [with] high order
    // activity", §5.2.1). Stores enrolled the same day tie on sample
    // count and `sampler.stores` iterates in hash order, so break ties by
    // domain name (first alphabetically).
    let store_domain = out
        .sampler
        .stores
        .values()
        .filter(|s| {
            out.crawler
                .db
                .domains
                .get(&s.domain)
                .and_then(|id| out.attribution.store_class.get(&id))
                .copied()
                .flatten()
                == Some(class)
        })
        .max_by_key(|s| (s.samples.len(), std::cmp::Reverse(s.domain.as_str())))
        .map(|s| s.domain.clone());

    let volume = store_domain
        .as_ref()
        .and_then(|d| out.sampler.volume_series(d, start, end));
    let rate = store_domain
        .as_ref()
        .and_then(|d| out.sampler.rate_series(d, start, end));
    let visibility_rate_correlation = rate
        .as_ref()
        .and_then(|r| ss_stats::corr::pearson(&top100.dense_or_zero(), &r.dense_or_zero()));

    Some(Fig4Campaign {
        name: campaign.to_owned(),
        top100,
        top10,
        labeled,
        volume,
        rate,
        store_domain,
        visibility_rate_correlation,
    })
}

impl Fig4Campaign {
    /// CSV with all panel series.
    pub fn to_csv(&self) -> String {
        let mut cols: Vec<(&str, &DailySeries)> = vec![
            ("psrs_top100", &self.top100),
            ("psrs_top10", &self.top10),
            ("psrs_labeled", &self.labeled),
        ];
        if let Some(v) = &self.volume {
            cols.push(("order_volume", v));
        }
        if let Some(r) = &self.rate {
            cols.push(("order_rate", r));
        }
        render::series_csv(&cols)
    }
}

/// Figure 5: the coco*.com (BIGLOVE Chanel store) case study.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// The store domains involved, in rotation order of first sighting.
    pub domains: Vec<String>,
    /// Daily PSRs landing on any of them (crawled depth).
    pub top100: DailySeries,
    /// Daily PSRs landing on them within the top 10.
    pub top10: DailySeries,
    /// Daily HTML pages served (from AWStats daily rows).
    pub traffic_pages: DailySeries,
    /// Cumulative order volume of the primary domain under sampling.
    pub volume: Option<DailySeries>,
    /// Estimated daily order rate.
    pub rate: Option<DailySeries>,
}

/// Builds Figure 5 over every store domain matching `pattern` (the study
/// tracked `coco*.com`). Returns `None` when no matching store was seen.
pub fn fig5(out: &StudyOutput, pattern: &str) -> Option<Fig5> {
    let (start, end) = out.window;
    let db = &out.crawler.db;
    let mut ids: Vec<(u32, SimDate)> = db
        .store_info
        .iter()
        .filter(|(id, _)| db.domains.resolve(**id).starts_with(pattern))
        .map(|(id, s)| (*id, s.first_seen))
        .collect();
    if ids.is_empty() {
        return None;
    }
    // `store_info` iterates in hash order; same-day first sightings must
    // still order deterministically, so tie-break on the interned id
    // (assigned in commit order).
    ids.sort_unstable_by_key(|(id, d)| (*d, *id));
    let id_list: Vec<u32> = ids.iter().map(|(i, _)| *i).collect();
    let domains: Vec<String> = id_list
        .iter()
        .map(|i| db.domains.resolve(*i).to_owned())
        .collect();

    let top100 = super::landing_psr_series(out, &id_list, false);
    let top10 = super::landing_psr_series(out, &id_list, true);

    let mut traffic_pages = DailySeries::new(start, end);
    for d in &domains {
        if let Some(reports) = out.awstats.get(d) {
            for r in reports {
                for (day, _visits, pages) in &r.daily {
                    traffic_pages.add(*day, *pages as f64);
                }
            }
        }
    }

    let sampled = domains.iter().find(|d| out.sampler.stores.contains_key(*d));
    let volume = sampled.and_then(|d| out.sampler.volume_series(d, start, end));
    let rate = sampled.and_then(|d| out.sampler.rate_series(d, start, end));

    Some(Fig5 {
        domains,
        top100,
        top10,
        traffic_pages,
        volume,
        rate,
    })
}

impl Fig5 {
    /// CSV of all series.
    pub fn to_csv(&self) -> String {
        let mut cols: Vec<(&str, &DailySeries)> = vec![
            ("psrs_top100", &self.top100),
            ("psrs_top10", &self.top10),
            ("traffic_pages", &self.traffic_pages),
        ];
        if let Some(v) = &self.volume {
            cols.push(("order_volume", v));
        }
        if let Some(r) = &self.rate {
            cols.push(("order_rate", r));
        }
        render::series_csv(&cols)
    }
}

/// Figure 6: order-number trajectories of one campaign's international
/// stores around a seizure.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// `(store domain, order-number samples as (day, number))` per store.
    pub stores: Vec<(String, Vec<(SimDate, u64)>)>,
    /// Observed seizure days per store domain.
    pub seizures: Vec<(String, SimDate)>,
}

/// Builds Figure 6 for the stores of `campaign` whose domains match any of
/// `patterns` (the paper's four international PHP?P= stores).
pub fn fig6(out: &StudyOutput, campaign: &str, patterns: &[&str]) -> Option<Fig6> {
    // The campaign must exist in the attribution index; the stores
    // themselves are selected by domain pattern, as in the paper (the four
    // international stores were identified by their PHP?P= URL structure).
    out.attribution.class_index(campaign)?;
    let mut stores = Vec::new();
    let mut seizures = Vec::new();
    let mut matched: HashSet<String> = HashSet::new();
    for (domain, mon) in &out.sampler.stores {
        let pattern_hit = patterns.iter().any(|p| domain.contains(p));
        if !pattern_hit {
            continue;
        }
        matched.insert(domain.clone());
        let samples: Vec<(SimDate, u64)> = mon
            .samples
            .iter()
            .map(|s| (s.day, s.order_number))
            .collect();
        stores.push((domain.clone(), samples));
    }
    for (id, info) in &out.crawler.db.store_info {
        let domain = out.crawler.db.domains.resolve(*id);
        if matched.contains(domain) {
            if let Some((day, _)) = &info.seizure {
                seizures.push((domain.to_owned(), *day));
            }
        }
    }
    stores.sort_by(|a, b| a.0.cmp(&b.0));
    seizures.sort();
    (!stores.is_empty()).then_some(Fig6 { stores, seizures })
}

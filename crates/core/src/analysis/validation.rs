//! Methodology validation (§4.1.1, §4.1.3, §4.2.2) — plus the checks the
//! paper could not do, scored against simulator ground truth.

use std::collections::{HashMap, HashSet};

use ss_crawl::crawler::{Crawler, CrawlerConfig};
use ss_crawl::terms::{self, MonitoredVertical, TermMethodology};
use ss_eco::domains::SiteKind;
use ss_types::DomainName;

use crate::pipeline::StudyOutput;

/// §4.2.2 classifier evaluation.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ClassifierValidation {
    /// k-fold CV accuracy on the labeled set (paper: 86.8%).
    pub cv_accuracy: f64,
    /// Chance baseline (paper: 1/52 ≈ 1.9%).
    pub chance: f64,
    /// Labeled set size (paper seed: 491).
    pub labeled: u64,
    /// Oracle/expert consultations spent.
    pub expert_queries: u64,
    /// Ground-truth precision over confidently classified stores (only
    /// measurable in the reproduction).
    pub truth_precision: f64,
    /// Ground-truth recall: classified-campaign stores correctly named /
    /// all detected classified-campaign stores.
    pub truth_recall: f64,
}

/// Scores the classifier against ground truth.
pub fn classifier(out: &StudyOutput) -> ClassifierValidation {
    let mut correct = 0usize;
    let mut confident = 0usize;
    let mut classified_truth_total = 0usize;
    for (id, class) in &out.attribution.store_class {
        let domain = out.crawler.db.domains.resolve(*id);
        let truth = true_campaign(out, domain);
        if truth.is_some() {
            classified_truth_total += 1;
        }
        let Some(c) = class else { continue };
        confident += 1;
        if truth.as_deref() == Some(out.attribution.class_names[*c].as_str()) {
            correct += 1;
        }
    }
    ClassifierValidation {
        cv_accuracy: out.attribution.cv.accuracy,
        chance: out.attribution.cv.chance,
        labeled: out.attribution.labeled_count as u64,
        expert_queries: out.attribution.oracle_queries as u64,
        truth_precision: correct as f64 / confident.max(1) as f64,
        truth_recall: correct as f64 / classified_truth_total.max(1) as f64,
    }
}

fn true_campaign(out: &StudyOutput, domain: &str) -> Option<String> {
    let dn = DomainName::parse(domain).ok()?;
    let id = out.world.domains.lookup(&dn)?;
    let SiteKind::Storefront { store } = out.world.domains.get(id).kind else {
        return None;
    };
    let campaign = out.world.campaigns.row(out.world.store(store).campaign);
    campaign.classified.then(|| campaign.name.to_owned())
}

/// §4.1.3 detection validation, done exhaustively against ground truth
/// rather than on a 1.8K-result sample.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DetectionValidation {
    /// Domains flagged poisoned that are truly doorways.
    pub true_positives: u64,
    /// Domains flagged poisoned that are NOT doorways (paper sample: 0).
    pub false_positives: u64,
    /// Doorways the crawler saw but cleared (paper sample: 1.2%).
    pub false_negatives: u64,
    /// False-negative rate over doorways encountered.
    pub fn_rate: f64,
    /// Detected stores that are truly storefronts.
    pub store_true_positives: u64,
    /// Detected stores that are not storefronts.
    pub store_false_positives: u64,
}

/// Scores detection against ground truth.
pub fn detection(out: &StudyOutput) -> DetectionValidation {
    let db = &out.crawler.db;
    let truth_is_doorway = |name: &str| -> bool {
        DomainName::parse(name)
            .ok()
            .and_then(|dn| out.world.domains.lookup(&dn))
            .map(|id| matches!(out.world.domains.get(id).kind, SiteKind::Doorway { .. }))
            .unwrap_or(false)
    };
    let mut tp = 0u64;
    let mut fp = 0u64;
    for (id, _) in db.poisoned_domains() {
        if truth_is_doorway(db.domains.resolve(*id)) {
            tp += 1;
        } else {
            fp += 1;
        }
    }
    let mut fn_count = 0u64;
    for id in out.crawler.known_clean() {
        if truth_is_doorway(db.domains.resolve(*id)) {
            fn_count += 1;
        }
    }

    let mut store_tp = 0u64;
    let mut store_fp = 0u64;
    for (id, _) in db.detected_stores() {
        let name = db.domains.resolve(*id);
        let is_store = DomainName::parse(name)
            .ok()
            .and_then(|dn| out.world.domains.lookup(&dn))
            .map(|d| matches!(out.world.domains.get(d).kind, SiteKind::Storefront { .. }))
            .unwrap_or(false);
        if is_store {
            store_tp += 1;
        } else {
            store_fp += 1;
        }
    }

    DetectionValidation {
        true_positives: tp,
        false_positives: fp,
        false_negatives: fn_count,
        fn_rate: fn_count as f64 / (tp + fn_count).max(1) as f64,
        store_true_positives: store_tp,
        store_false_positives: store_fp,
    }
}

/// §4.1.1 term-selection bias check: re-crawl one day with
/// suggest-derived alternates for the doorway-extraction verticals and
/// compare what each term set finds.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TermBias {
    /// Verticals compared.
    pub verticals: u64,
    /// Overlapping terms out of the total alternate terms (paper: 4/1000).
    pub overlapping_terms: u64,
    /// Total terms compared.
    pub total_terms: u64,
    /// PSR rate (per result) under the original term sets on the probe day.
    pub original_psr_rate: f64,
    /// PSR rate under the alternate term sets.
    pub alternate_psr_rate: f64,
    /// Jaccard similarity of the campaign sets found by each methodology
    /// (the paper's conclusion: "we find the same campaigns").
    pub campaign_jaccard: f64,
}

/// Runs the bias check on the study's final crawl day.
pub fn term_bias(out: &mut StudyOutput) -> TermBias {
    let probe_day = out.window.1;
    let seed = out.world.cfg.seed ^ 0xb1a5;

    // Alternate term sets: suggest expansion for the doorway-derived
    // verticals (the inverse of the study's split).
    let mut alternates: Vec<MonitoredVertical> = Vec::new();
    let mut overlap = 0u64;
    let mut total = 0u64;
    for (vi, mv) in out.monitored.clone().iter().enumerate() {
        if mv.methodology != TermMethodology::DoorwayExtraction {
            alternates.push(mv.clone());
            continue;
        }
        let alt = terms::suggest_expansion_terms(&out.world, vi, probe_day, mv.terms.len(), seed);
        overlap += terms::term_overlap(&alt, &mv.terms) as u64;
        total += alt.len() as u64;
        alternates.push(MonitoredVertical {
            name: mv.name.clone(),
            methodology: TermMethodology::SuggestExpansion,
            terms: alt,
        });
    }

    // One-day crawls under both term sets.
    let cfg = CrawlerConfig {
        serp_depth: out.crawler.cfg.serp_depth,
        ..CrawlerConfig::default()
    };
    let mut crawl_alt = Crawler::new(cfg.clone(), alternates);
    crawl_alt.crawl_day(&out.world, probe_day);
    let mut crawl_orig = Crawler::new(cfg, out.monitored.clone());
    crawl_orig.crawl_day(&out.world, probe_day);

    let rate = |c: &Crawler| -> f64 {
        let seen: u64 =
            c.db.daily_counts
                .iter()
                .map(|d| u64::from(d.total_seen))
                .sum();
        if seen == 0 {
            0.0
        } else {
            c.db.psrs.len() as f64 / seen as f64
        }
    };

    // Campaign sets found: attribute landings through the study's model.
    let campaigns_of = |c: &Crawler| -> HashSet<usize> {
        let mut set = HashSet::new();
        for psr in &c.db.psrs {
            let Some(l) = psr.landing else { continue };
            let domain = c.db.domains.resolve(l);
            if let Some(id) = out.crawler.db.domains.get(domain) {
                if let Some(Some(class)) = out.attribution.store_class.get(&id) {
                    set.insert(*class);
                }
            }
        }
        set
    };
    let a = campaigns_of(&crawl_orig);
    let b = campaigns_of(&crawl_alt);
    let inter = a.intersection(&b).count() as f64;
    let union = a.union(&b).count().max(1) as f64;

    TermBias {
        verticals: out
            .monitored
            .iter()
            .filter(|m| m.methodology == TermMethodology::DoorwayExtraction)
            .count() as u64,
        overlapping_terms: overlap,
        total_terms: total,
        original_psr_rate: rate(&crawl_orig),
        alternate_psr_rate: rate(&crawl_alt),
        campaign_jaccard: inter / union,
    }
}

/// Extra ground-truth check unavailable to the paper: how well measured
/// per-campaign PSR attributions track true campaign activity days.
pub fn attribution_timeline_fidelity(out: &StudyOutput) -> HashMap<String, f64> {
    let mut scores = HashMap::new();
    for (c, name) in out.attribution.class_names.iter().enumerate() {
        let measured = super::campaign_psr_series(out, c, false);
        let Some(truth_campaign) = out.world.campaigns.iter().find(|w| w.name == *name) else {
            continue;
        };
        let (start, end) = out.window;
        let mut truth = ss_stats::DailySeries::new(start, end);
        for day in ss_types::SimDate::range_inclusive(start, end) {
            truth.set(day, truth_campaign.juice_on(day));
        }
        if measured.sum() > 0.0 {
            if let Some(r) =
                ss_stats::corr::pearson(&measured.dense_or_zero(), &truth.dense_or_zero())
            {
                scores.insert(name.clone(), r);
            }
        }
    }
    scores
}

/// Detector ablation: what does the rendering crawler (VanGogh) buy over
/// fetch-and-diff (Dagger) alone? §3.1.1 claims iframe cloaking defeats
/// non-rendering detection entirely; this experiment runs two crawlers
/// over the same world and days, one with rendering disabled.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DetectorAblation {
    /// Poisoned domains found with the full stack.
    pub full_poisoned: u64,
    /// Poisoned domains found with Dagger alone (no rendering).
    pub dagger_only_poisoned: u64,
    /// Domains only the rendering stack caught.
    pub rendering_exclusive: u64,
    /// Of those, how many are truly iframe-cloaking doorways (scored
    /// against ground truth).
    pub rendering_exclusive_iframe: u64,
    /// PSR observations under the full stack vs Dagger alone.
    pub full_psrs: u64,
    /// PSRs found without rendering.
    pub dagger_only_psrs: u64,
}

/// Runs the ablation over a fresh world (independent of a study run).
pub fn detector_ablation(seed: u64, crawl_days: u32) -> DetectorAblation {
    use ss_eco::{ScenarioConfig, World};
    use ss_types::SimDate;

    let build = || {
        let mut w = World::build(ScenarioConfig::tiny(seed)).expect("world builds");
        let start = SimDate::from_day_index(ss_types::CRAWL_START_DAY);
        w.run_until(start);
        let monitored = terms::select_all(&w, start, 6, seed);
        (w, monitored, start)
    };

    let run = |render_sample: u8| -> Crawler {
        let (mut w, monitored, start) = build();
        let mut crawler = Crawler::new(
            CrawlerConfig {
                serp_depth: 30,
                render_sample,
                ..CrawlerConfig::default()
            },
            monitored,
        );
        for d in 1..=crawl_days {
            let day = start + d;
            w.run_until(day);
            crawler.crawl_day(&w, day);
        }
        crawler
    };

    let full = run(3);
    let dagger_only = run(0);

    let full_set: HashSet<String> = full
        .db
        .poisoned_domains()
        .map(|(id, _)| full.db.domains.resolve(*id).to_owned())
        .collect();
    let dagger_set: HashSet<String> = dagger_only
        .db
        .poisoned_domains()
        .map(|(id, _)| dagger_only.db.domains.resolve(*id).to_owned())
        .collect();
    let exclusive: Vec<&String> = full_set.difference(&dagger_set).collect();

    // Score the exclusives against ground truth cloak modes.
    let (w, _, _) = build();
    let mut exclusive_iframe = 0u64;
    for name in &exclusive {
        let Some(domain) = DomainName::parse(name)
            .ok()
            .and_then(|dn| w.domains.lookup(&dn))
        else {
            continue;
        };
        if let SiteKind::Doorway { cloak, .. } = w.domains.get(domain).kind {
            if matches!(cloak, ss_web::cloak::CloakMode::Iframe { .. }) {
                exclusive_iframe += 1;
            }
        }
    }

    DetectorAblation {
        full_poisoned: full_set.len() as u64,
        dagger_only_poisoned: dagger_set.len() as u64,
        rendering_exclusive: exclusive.len() as u64,
        rendering_exclusive_iframe: exclusive_iframe,
        full_psrs: full.db.psrs.len() as u64,
        dagger_only_psrs: dagger_only.db.psrs.len() as u64,
    }
}

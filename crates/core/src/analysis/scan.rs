//! The shared aggregation layer: every analysis family's per-row work is
//! an [`Aggregator`], and [`run_scan`] fuses any set of them into one
//! pass over the PSR columns.
//!
//! # One-pass invariant
//!
//! [`StudyScan::compute`] registers all five aggregator families —
//! counts/labels, per-class series, per-vertical breakdowns, per-landing
//! series, and per-day churn sets — as one fused tuple, so the whole
//! analysis suite reads the corpus exactly once. `Study::run` computes it
//! once and hands it to the analyses through `StudyOutput::scan`; the
//! `analysis.passes` / `analysis.rows_scanned` counters in the run
//! manifest record that exactly one pass happened (`repro all` asserts
//! it). Analyses over *other* corpora — the term-bias probe crawl and the
//! detector ablation build their own crawlers — are outside the
//! invariant by construction.
//!
//! # Parallel scan discipline
//!
//! The driver shards the row range at day boundaries
//! ([`PsrStore::day_shards`]) and merges shard aggregates in shard-index
//! order — the same order-insensitive merge rule `ss-obs` registries and
//! the crawl reduce follow. Because shards are contiguous and merged in
//! order, even order-dependent accumulators see concatenation semantics;
//! because no day straddles a shard, every daily slot of every series is
//! filled by exactly one worker. Counts are integer-valued (`u64` adds,
//! set unions, integer-valued `f64` day slots), so results are
//! bit-identical at any thread count.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ss_crawl::db::{ColumnView, CrawlDb, PsrStore};
use ss_obs::Registry;
use ss_stats::DailySeries;
use ss_types::SimDate;

use crate::attribution::Attribution;

/// One analysis's streaming state over a PSR scan. `observe` folds in one
/// row; `merge` combines two partial states (shards merge in shard-index
/// order, and every implementation here is order-insensitive besides);
/// `finish` extracts the result.
pub trait Aggregator: Send + Sized {
    /// What the aggregator yields once the scan completes.
    type Output;
    /// Folds one row into the state.
    fn observe(&mut self, cols: &ColumnView<'_>, row: usize);
    /// Absorbs another partial state (produced over a disjoint row range).
    fn merge(&mut self, other: Self);
    /// Extracts the result.
    fn finish(self) -> Self::Output;
}

/// Tuples of aggregators fuse into one: a single scan feeds every member.
macro_rules! impl_aggregator_tuple {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Aggregator),+> Aggregator for ($($name,)+) {
            type Output = ($($name::Output,)+);
            fn observe(&mut self, cols: &ColumnView<'_>, row: usize) {
                $(self.$idx.observe(cols, row);)+
            }
            fn merge(&mut self, other: Self) {
                $(self.$idx.merge(other.$idx);)+
            }
            fn finish(self) -> Self::Output {
                ($(self.$idx.finish(),)+)
            }
        }
    };
}

impl_aggregator_tuple!(A.0, B.1);
impl_aggregator_tuple!(A.0, B.1, C.2);
impl_aggregator_tuple!(A.0, B.1, C.2, D.3);
impl_aggregator_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_aggregator_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Wraps an aggregator so its merge and finish phases record wall time
/// into the cost ledger under `path` (a work-only scope — shard merges
/// run on the reducing thread, whose heap pattern is not part of the
/// deterministic contract). `observe` delegates with no bookkeeping: it
/// runs once per PSR row and must stay allocation- and branch-free.
pub struct Timed<'a, A> {
    path: &'static str,
    obs: &'a Registry,
    agg: A,
}

impl<'a, A> Timed<'a, A> {
    /// Wraps `agg`, recording merge/finish cost under `path`.
    pub fn new(path: &'static str, obs: &'a Registry, agg: A) -> Self {
        Timed { path, obs, agg }
    }
}

impl<A: Aggregator> Aggregator for Timed<'_, A> {
    type Output = A::Output;
    #[inline]
    fn observe(&mut self, cols: &ColumnView<'_>, row: usize) {
        self.agg.observe(cols, row);
    }
    fn merge(&mut self, other: Self) {
        let _scope = self.obs.work_scope(self.path);
        self.agg.merge(other.agg);
    }
    fn finish(self) -> Self::Output {
        let _scope = self.obs.work_scope(self.path);
        self.agg.finish()
    }
}

/// Runs one pass of `make()`'s aggregator over the store: serial when
/// `threads <= 1`, otherwise sharded at day boundaries across scoped
/// crossbeam workers and merged in shard-index order. Records one
/// `analysis.passes` tick and the row count into `obs`. Bit-identical at
/// any thread count.
pub fn run_scan<A, F>(store: &PsrStore, threads: usize, obs: &Registry, make: F) -> A::Output
where
    A: Aggregator,
    F: Fn() -> A + Sync,
{
    ss_obs::count!(obs, "analysis.passes");
    ss_obs::count!(obs, "analysis.rows_scanned", store.len() as u64);
    // Work-only scope: shard observe loops run on worker threads (whose
    // allocations aren't metered here anyway), but the row count is exact
    // and deterministic.
    let _scan_scope = obs.work_scope("analysis/scan");
    ss_obs::charge(ss_obs::WorkKind::PsrRowsScanned, store.len() as u64);
    let cols = store.columns();
    let shards = store.day_shards(threads.max(1));
    if threads <= 1 || shards.len() <= 1 {
        let mut agg = make();
        for row in 0..store.len() {
            agg.observe(&cols, row);
        }
        return agg.finish();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<A>>> = Mutex::new(shards.iter().map(|_| None).collect());
    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(shards.len()) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= shards.len() {
                    break;
                }
                let mut agg = make();
                for row in shards[i].clone() {
                    agg.observe(&cols, row);
                }
                slots
                    .lock()
                    .expect("no scan worker panicked holding the lock")[i] = Some(agg);
            });
        }
    })
    .expect("scan worker panicked");
    slots
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|slot| slot.expect("every shard aggregated"))
        .reduce(|mut a, b| {
            a.merge(b);
            a
        })
        .unwrap_or_else(make)
        .finish()
}

/// Read-only context the aggregators share: attribution plus the maps
/// precomputed from the (small) doorway/store tables, so the per-row work
/// is pure lookups.
struct ScanCtx<'a> {
    window: (SimDate, SimDate),
    n_classes: usize,
    n_verticals: usize,
    /// landing id → attributed class (from [`Attribution::store_class`]).
    store_class: &'a HashMap<u32, Option<usize>>,
    /// Landing ids that passed store detection.
    is_store: HashSet<u32>,
    /// Store id → first seizure-notice observation day.
    seizure_day: HashMap<u32, SimDate>,
    /// Doorway id → first labeled-sighting day. `label_seen` is set by the
    /// label events that pair 1:1 with PSR events, so this equals the
    /// first labeled-PSR day per labeled doorway.
    first_label_day: HashMap<u32, SimDate>,
}

impl<'a> ScanCtx<'a> {
    fn new(
        db: &CrawlDb,
        attribution: &'a Attribution,
        n_verticals: usize,
        window: (SimDate, SimDate),
    ) -> Self {
        ScanCtx {
            window,
            n_classes: attribution.class_names.len(),
            n_verticals,
            store_class: &attribution.store_class,
            is_store: db
                .store_info
                .iter()
                .filter(|(_, s)| s.is_store)
                .map(|(id, _)| *id)
                .collect(),
            seizure_day: db
                .store_info
                .iter()
                .filter_map(|(id, s)| s.seizure.as_ref().map(|(d, _)| (*id, *d)))
                .collect(),
            first_label_day: db
                .doorway_info
                .iter()
                .filter_map(|(id, i)| i.label_seen.map(|(f, _)| (*id, f)))
                .collect(),
        }
    }

    fn class_of(&self, cols: &ColumnView<'_>, row: usize) -> Option<usize> {
        self.store_class.get(&cols.landing(row)?).copied().flatten()
    }

    fn series(&self) -> DailySeries {
        DailySeries::new(self.window.0, self.window.1)
    }
}

/// Adds `b`'s observed days into `a`. Day slots hold integer-valued
/// counts, so the fold is exact and order-insensitive.
fn merge_series(a: &mut DailySeries, b: &DailySeries) {
    for (day, v) in b.observed() {
        a.add(day, v);
    }
}

/// Totals and label coverage (feeds `interventions::labels`).
struct CountsAgg<'a> {
    ctx: &'a ScanCtx<'a>,
    rows: u64,
    labeled: u64,
    missed: u64,
}

impl Aggregator for CountsAgg<'_> {
    type Output = (u64, u64, u64);
    fn observe(&mut self, cols: &ColumnView<'_>, row: usize) {
        self.rows += 1;
        if cols.labeled[row] {
            self.labeled += 1;
        } else if self
            .ctx
            .first_label_day
            .get(&cols.domain[row])
            .map(|f| cols.day[row] >= *f)
            .unwrap_or(false)
        {
            self.missed += 1;
        }
    }
    fn merge(&mut self, other: Self) {
        self.rows += other.rows;
        self.labeled += other.labeled;
        self.missed += other.missed;
    }
    fn finish(self) -> Self::Output {
        (self.rows, self.labeled, self.missed)
    }
}

/// Per-class daily series, counts, and doorway sets (feeds the campaign
/// series, Table 2, top-k share, and Figure 4).
struct ClassAgg<'a> {
    ctx: &'a ScanCtx<'a>,
    daily: Vec<DailySeries>,
    daily_top10: Vec<DailySeries>,
    labeled: Vec<DailySeries>,
    psrs: Vec<u64>,
    doorways: Vec<HashSet<u32>>,
}

impl<'a> ClassAgg<'a> {
    fn new(ctx: &'a ScanCtx<'a>) -> Self {
        let n = ctx.n_classes;
        ClassAgg {
            ctx,
            daily: (0..n).map(|_| ctx.series()).collect(),
            daily_top10: (0..n).map(|_| ctx.series()).collect(),
            labeled: (0..n).map(|_| ctx.series()).collect(),
            psrs: vec![0; n],
            doorways: vec![HashSet::new(); n],
        }
    }
}

/// Per-class scan results.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassScan {
    /// Daily PSR counts over the crawled depth (sparse: only observed
    /// days are set).
    pub daily: DailySeries,
    /// Daily PSR counts within the top 10 (sparse).
    pub daily_top10: DailySeries,
    /// Daily labeled-PSR counts (sparse).
    pub labeled: DailySeries,
    /// Total PSRs attributed to the class.
    pub psrs: u64,
    /// Doorway domains attributed to the class.
    pub doorways: HashSet<u32>,
}

impl Aggregator for ClassAgg<'_> {
    type Output = Vec<ClassScan>;
    fn observe(&mut self, cols: &ColumnView<'_>, row: usize) {
        let Some(c) = self.ctx.class_of(cols, row) else {
            return;
        };
        let day = cols.day[row];
        self.psrs[c] += 1;
        self.doorways[c].insert(cols.domain[row]);
        self.daily[c].add(day, 1.0);
        if cols.rank[row] <= 10 {
            self.daily_top10[c].add(day, 1.0);
        }
        if cols.labeled[row] {
            self.labeled[c].add(day, 1.0);
        }
    }
    fn merge(&mut self, other: Self) {
        for c in 0..self.psrs.len() {
            merge_series(&mut self.daily[c], &other.daily[c]);
            merge_series(&mut self.daily_top10[c], &other.daily_top10[c]);
            merge_series(&mut self.labeled[c], &other.labeled[c]);
            self.psrs[c] += other.psrs[c];
            self.doorways[c].extend(&other.doorways[c]);
        }
    }
    fn finish(self) -> Self::Output {
        self.daily
            .into_iter()
            .zip(self.daily_top10)
            .zip(self.labeled)
            .zip(self.psrs)
            .zip(self.doorways)
            .map(
                |((((daily, daily_top10), labeled), psrs), doorways)| ClassScan {
                    daily,
                    daily_top10,
                    labeled,
                    psrs,
                    doorways,
                },
            )
            .collect()
    }
}

/// Per-vertical scan results (feeds Table 1 and Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct VerticalScan {
    /// PSR observations in the vertical.
    pub psrs: u64,
    /// Unique doorway domains seen in the vertical's PSRs.
    pub doorways: HashSet<u32>,
    /// Unique detected stores reached from the vertical.
    pub stores: HashSet<u32>,
    /// Distinct attributed campaigns observed in the vertical.
    pub campaigns: HashSet<usize>,
    /// Daily PSR counts per attributed class (`None` = unattributed),
    /// sparse — only observed days are set, as Figure 2 requires.
    pub per_class: HashMap<Option<usize>, DailySeries>,
    /// Daily poisoned-result counts (sparse).
    pub poisoned: DailySeries,
    /// Daily penalized counts: labeled or landing on an observed-seized
    /// store (sparse).
    pub penalized: DailySeries,
}

struct VerticalAgg<'a> {
    ctx: &'a ScanCtx<'a>,
    verticals: Vec<VerticalScan>,
}

impl<'a> VerticalAgg<'a> {
    fn new(ctx: &'a ScanCtx<'a>) -> Self {
        VerticalAgg {
            ctx,
            verticals: (0..ctx.n_verticals)
                .map(|_| VerticalScan {
                    psrs: 0,
                    doorways: HashSet::new(),
                    stores: HashSet::new(),
                    campaigns: HashSet::new(),
                    per_class: HashMap::new(),
                    poisoned: ctx.series(),
                    penalized: ctx.series(),
                })
                .collect(),
        }
    }
}

impl Aggregator for VerticalAgg<'_> {
    type Output = Vec<VerticalScan>;
    fn observe(&mut self, cols: &ColumnView<'_>, row: usize) {
        let ctx = self.ctx;
        let day = cols.day[row];
        let landing = cols.landing(row);
        let class = ctx.class_of(cols, row);
        let v = &mut self.verticals[usize::from(cols.vertical[row])];
        v.psrs += 1;
        v.doorways.insert(cols.domain[row]);
        if let Some(l) = landing {
            if ctx.is_store.contains(&l) {
                v.stores.insert(l);
            }
        }
        if let Some(c) = class {
            v.campaigns.insert(c);
        }
        v.poisoned.add(day, 1.0);
        let seized = landing
            .and_then(|l| ctx.seizure_day.get(&l))
            .map(|d| *d <= day)
            .unwrap_or(false);
        if cols.labeled[row] || seized {
            v.penalized.add(day, 1.0);
        }
        v.per_class
            .entry(class)
            .or_insert_with(|| ctx.series())
            .add(day, 1.0);
    }
    fn merge(&mut self, other: Self) {
        for (v, o) in self.verticals.iter_mut().zip(other.verticals) {
            v.psrs += o.psrs;
            v.doorways.extend(o.doorways);
            v.stores.extend(o.stores);
            v.campaigns.extend(o.campaigns);
            merge_series(&mut v.poisoned, &o.poisoned);
            merge_series(&mut v.penalized, &o.penalized);
            for (k, s) in o.per_class {
                match v.per_class.entry(k) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        merge_series(e.get_mut(), &s)
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(s);
                    }
                }
            }
        }
    }
    fn finish(self) -> Self::Output {
        self.verticals
    }
}

/// Per-landing daily PSR series (feeds `landing_psr_series` / Figure 5).
#[derive(Debug, Clone, PartialEq)]
pub struct LandingScan {
    /// Daily PSR counts landing on the store, crawled depth (sparse).
    pub daily: DailySeries,
    /// Daily PSR counts landing on the store, top 10 only (sparse).
    pub daily_top10: DailySeries,
}

struct LandingAgg<'a> {
    ctx: &'a ScanCtx<'a>,
    daily: HashMap<u32, LandingScan>,
    verticals: HashSet<(u32, u16)>,
}

impl Aggregator for LandingAgg<'_> {
    type Output = (HashMap<u32, LandingScan>, HashSet<(u32, u16)>);
    fn observe(&mut self, cols: &ColumnView<'_>, row: usize) {
        let Some(l) = cols.landing(row) else {
            return;
        };
        let day = cols.day[row];
        self.verticals.insert((l, cols.vertical[row]));
        let entry = self.daily.entry(l).or_insert_with(|| LandingScan {
            daily: self.ctx.series(),
            daily_top10: self.ctx.series(),
        });
        entry.daily.add(day, 1.0);
        if cols.rank[row] <= 10 {
            entry.daily_top10.add(day, 1.0);
        }
    }
    fn merge(&mut self, other: Self) {
        self.verticals.extend(other.verticals);
        for (l, s) in other.daily {
            match self.daily.entry(l) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    merge_series(&mut e.get_mut().daily, &s.daily);
                    merge_series(&mut e.get_mut().daily_top10, &s.daily_top10);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(s);
                }
            }
        }
    }
    fn finish(self) -> Self::Output {
        (self.daily, self.verticals)
    }
}

/// Per-day doorway-domain sets (feeds `mean_daily_churn`).
#[derive(Default)]
struct ChurnAgg {
    day_domains: HashMap<SimDate, HashSet<u32>>,
}

impl Aggregator for ChurnAgg {
    type Output = HashMap<SimDate, HashSet<u32>>;
    fn observe(&mut self, cols: &ColumnView<'_>, row: usize) {
        self.day_domains
            .entry(cols.day[row])
            .or_default()
            .insert(cols.domain[row]);
    }
    fn merge(&mut self, other: Self) {
        for (day, set) in other.day_domains {
            self.day_domains.entry(day).or_default().extend(set);
        }
    }
    fn finish(self) -> Self::Output {
        self.day_domains
    }
}

/// Everything the analysis suite needs from the PSR corpus, computed in
/// one fused pass by [`StudyScan::compute`] and carried on
/// `StudyOutput::scan`.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyScan {
    /// Crawl window `(first crawl day, last day)` the scan covered.
    pub window: (SimDate, SimDate),
    /// Total PSR rows scanned.
    pub rows: u64,
    /// PSRs carrying the hacked label.
    pub labeled_psrs: u64,
    /// Unlabeled PSRs on a doorway at/after its first labeled sighting
    /// (the root-only label policy's coverage gap).
    pub label_missed: u64,
    /// Per-class results, indexed by attribution class.
    pub classes: Vec<ClassScan>,
    /// Per-vertical results, indexed by monitored-vertical order.
    pub verticals: Vec<VerticalScan>,
    /// Per-landing-store daily series, keyed by interned store domain id.
    pub landings: HashMap<u32, LandingScan>,
    /// `(landing store id, vertical)` pairs observed in PSRs.
    pub landing_verticals: HashSet<(u32, u16)>,
    /// Doorway-domain sets per crawl day (for churn).
    pub day_domains: HashMap<SimDate, HashSet<u32>>,
}

impl StudyScan {
    /// Computes the full scan in **one** fused pass over the PSR columns,
    /// sharded over `threads` workers.
    pub fn compute(
        db: &CrawlDb,
        attribution: &Attribution,
        n_verticals: usize,
        window: (SimDate, SimDate),
        threads: usize,
        obs: &Registry,
    ) -> StudyScan {
        let ctx = ScanCtx::new(db, attribution, n_verticals, window);
        let (
            (rows, labeled_psrs, label_missed),
            classes,
            verticals,
            (landings, landing_verticals),
            day_domains,
        ) = run_scan(&db.psrs, threads, obs, || {
            (
                Timed::new(
                    "analysis/merge/counts",
                    obs,
                    CountsAgg {
                        ctx: &ctx,
                        rows: 0,
                        labeled: 0,
                        missed: 0,
                    },
                ),
                Timed::new("analysis/merge/classes", obs, ClassAgg::new(&ctx)),
                Timed::new("analysis/merge/verticals", obs, VerticalAgg::new(&ctx)),
                Timed::new(
                    "analysis/merge/landings",
                    obs,
                    LandingAgg {
                        ctx: &ctx,
                        daily: HashMap::new(),
                        verticals: HashSet::new(),
                    },
                ),
                Timed::new("analysis/merge/churn", obs, ChurnAgg::default()),
            )
        });
        StudyScan {
            window,
            rows,
            labeled_psrs,
            label_missed,
            classes,
            verticals,
            landings,
            landing_verticals,
            day_domains,
        }
    }

    /// The pre-refactor shape, kept for benchmarking the fusion win: the
    /// same aggregators run as five **separate** serial passes over the
    /// corpus (each ticking `analysis.passes` once).
    pub fn compute_per_module(
        db: &CrawlDb,
        attribution: &Attribution,
        n_verticals: usize,
        window: (SimDate, SimDate),
        obs: &Registry,
    ) -> StudyScan {
        let ctx = ScanCtx::new(db, attribution, n_verticals, window);
        let (rows, labeled_psrs, label_missed) = run_scan(&db.psrs, 1, obs, || CountsAgg {
            ctx: &ctx,
            rows: 0,
            labeled: 0,
            missed: 0,
        });
        let classes = run_scan(&db.psrs, 1, obs, || ClassAgg::new(&ctx));
        let verticals = run_scan(&db.psrs, 1, obs, || VerticalAgg::new(&ctx));
        let (landings, landing_verticals) = run_scan(&db.psrs, 1, obs, || LandingAgg {
            ctx: &ctx,
            daily: HashMap::new(),
            verticals: HashSet::new(),
        });
        let day_domains = run_scan(&db.psrs, 1, obs, ChurnAgg::default);
        StudyScan {
            window,
            rows,
            labeled_psrs,
            label_missed,
            classes,
            verticals,
            landings,
            landing_verticals,
            day_domains,
        }
    }
}

//! Intervention effectiveness: hacked-label coverage and delay (§5.2.2)
//! and domain-seizure coverage, lifetimes, and reactions (§5.3, Table 3).

use std::collections::{HashMap, HashSet};

use ss_stats::lifetime::{CensoredLifetime, LifetimeBound};
use ss_types::SimDate;

use crate::pipeline::StudyOutput;

/// §5.2.2 results: the "hacked" label intervention.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LabelAnalysis {
    /// Total PSR observations.
    pub total_psrs: u64,
    /// PSRs carrying the label.
    pub labeled_psrs: u64,
    /// Label coverage as a fraction of PSRs (paper: 2.5%).
    pub coverage: f64,
    /// PSRs that *could* have been labeled under a same-domain policy
    /// (labeled ones plus unlabeled results on domains with a labeled
    /// root — paper: 68,193 → 102,104, +49%).
    pub could_have_labeled: u64,
    /// Relative gain of dropping the root-only policy.
    pub policy_gain: f64,
    /// Labeling delay bounds in days after a doorway's first sighting
    /// (paper: 13–32 days on average).
    pub delay: Option<LifetimeBound>,
    /// Doorways whose label was observed (and hence measurable).
    pub labeled_doorways: u64,
    /// Doorways already labeled the first time the crawler saw them —
    /// excluded from delay estimation, exactly as the paper excludes its
    /// 588 pre-labeled doorways (§5.2.2).
    pub prelabeled_doorways: u64,
}

/// Computes the label analysis. PSR totals, label coverage, and the
/// root-only policy's missed count all come from the shared one-pass scan
/// (`label_seen` on the doorway table pairs 1:1 with labeled PSR rows, so
/// the scan's first-labeled-day lookup matches the old per-PSR recompute);
/// only the per-doorway delay estimation below walks the doorway table.
pub fn labels(out: &StudyOutput) -> LabelAnalysis {
    let db = &out.crawler.db;
    let total_psrs = out.scan.rows;
    let labeled_psrs = out.scan.labeled_psrs;
    let could_have_labeled = labeled_psrs + out.scan.label_missed;

    // Delay estimation (censored): last unlabeled sighting → first labeled
    // sighting, relative to the doorway's first appearance. Doorways that
    // were already labeled when first seen carry no delay information and
    // are excluded (the paper's 588-of-1,282 exclusion, §5.2.2).
    let mut obs = Vec::new();
    let mut prelabeled = 0u64;
    for info in db.doorway_info.values() {
        let Some((first_labeled, _)) = info.label_seen else {
            continue;
        };
        let Some(lo_anchor) = info.last_unlabeled_before else {
            prelabeled += 1;
            continue;
        };
        let lo = lo_anchor.days_since(info.first_seen).max(0) as f64;
        let hi = first_labeled.days_since(info.first_seen).max(0) as f64;
        obs.push(CensoredLifetime::new(lo, hi));
    }

    LabelAnalysis {
        total_psrs,
        labeled_psrs,
        coverage: if total_psrs == 0 {
            0.0
        } else {
            labeled_psrs as f64 / total_psrs as f64
        },
        could_have_labeled,
        policy_gain: if labeled_psrs == 0 {
            0.0
        } else {
            could_have_labeled as f64 / labeled_psrs as f64 - 1.0
        },
        labeled_doorways: obs.len() as u64,
        prelabeled_doorways: prelabeled,
        delay: LifetimeBound::estimate(&obs),
    }
}

/// One firm's measured Table 3 row plus §5.3.2 dynamics.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FirmAnalysis {
    /// Firm name as printed on notices.
    pub firm: String,
    /// Distinct court cases observed through PSRs.
    pub cases: u64,
    /// Distinct plaintiff brands across those cases.
    pub brands: u64,
    /// Total domains listed in the observed court documents.
    pub seized_total: u64,
    /// Seized store domains directly observed via PSRs.
    pub observed_stores: u64,
    /// Of those, attributed to a known campaign.
    pub classified_stores: u64,
    /// Distinct campaigns affected.
    pub campaigns: u64,
    /// Store lifetime bounds (first PSR sighting → seizure; paper: 58–68
    /// days GBC, 48–56 SMGPA).
    pub store_lifetime: Option<LifetimeBound>,
    /// Seized stores whose doorways re-pointed to a new store.
    pub redirected: u64,
    /// Of the re-pointed, how many successor stores were later seized too.
    pub successor_seized: u64,
    /// Mean days from observed seizure to observed re-pointing.
    pub mean_reaction_days: Option<f64>,
}

/// Full seizure analysis (Table 3 + §5.3).
#[derive(Debug, Clone, serde::Serialize)]
pub struct SeizureAnalysis {
    /// Per-firm rows.
    pub firms: Vec<FirmAnalysis>,
    /// Seized observed stores as a fraction of all detected stores
    /// (paper: 3.9%).
    pub seized_store_fraction: f64,
}

/// Computes the seizure analysis.
pub fn seizures(out: &StudyOutput) -> SeizureAnalysis {
    let db = &out.crawler.db;

    // Successor mapping: for each doorway, landing transitions reveal
    // re-pointing after a seizure.
    // seized store id -> (seizure day, successors: Vec<(day, store id)>)
    let seizure_day: HashMap<u32, SimDate> = db
        .store_info
        .iter()
        .filter_map(|(id, s)| s.seizure.as_ref().map(|(d, _)| (*id, *d)))
        .collect();
    let mut successors: HashMap<u32, Vec<(SimDate, u32)>> = HashMap::new();
    for info in db.doorway_info.values() {
        for pair in info.landings.windows(2) {
            let (_, from) = pair[0];
            let (to_day, to) = pair[1];
            if let Some(sday) = seizure_day.get(&from) {
                if to_day >= *sday && to != from {
                    successors.entry(from).or_default().push((to_day, to));
                }
            }
        }
    }
    // `doorway_info` iterates in hash order; the reaction metric reads the
    // *earliest* re-point, so order each successor list chronologically
    // (ties by successor id, which is assigned deterministically).
    for succ in successors.values_mut() {
        succ.sort_unstable();
    }

    // Group seized stores by firm.
    let mut per_firm: HashMap<String, Vec<u32>> = HashMap::new();
    for (id, s) in &db.store_info {
        if let Some((_, notice)) = &s.seizure {
            per_firm.entry(notice.firm.clone()).or_default().push(*id);
        }
    }

    let mut firms = Vec::new();
    let mut names: Vec<String> = per_firm.keys().cloned().collect();
    names.sort();
    for firm in names {
        let ids = &per_firm[&firm];
        let mut cases: HashSet<String> = HashSet::new();
        let mut brands: HashSet<String> = HashSet::new();
        let mut schedule: HashSet<String> = HashSet::new();
        let mut classified = 0u64;
        let mut campaigns: HashSet<usize> = HashSet::new();
        let mut lifetimes = Vec::new();
        let mut redirected = 0u64;
        let mut successor_seized = 0u64;
        let mut reactions = Vec::new();
        for id in ids {
            let s = &db.store_info[id];
            let (seize_obs_day, notice) = s.seizure.as_ref().expect("grouped by seizure");
            cases.insert(notice.case_id.clone());
            brands.insert(notice.brand.clone());
            schedule.extend(notice.seized_domains.iter().cloned());
            if let Some(Some(c)) = out.attribution.store_class.get(id) {
                classified += 1;
                campaigns.insert(*c);
            }
            let lo_anchor = s.last_alive_before_seizure.unwrap_or(s.first_seen);
            lifetimes.push(CensoredLifetime::new(
                lo_anchor.days_since(s.first_seen).max(0) as f64,
                seize_obs_day.days_since(s.first_seen).max(0) as f64,
            ));
            if let Some(succ) = successors.get(id) {
                redirected += 1;
                if let Some((first_day, first_store)) = succ.first() {
                    reactions.push(first_day.days_since(*seize_obs_day).max(0) as f64);
                    if seizure_day.contains_key(first_store) {
                        successor_seized += 1;
                    }
                }
            }
        }
        firms.push(FirmAnalysis {
            firm,
            cases: cases.len() as u64,
            brands: brands.len() as u64,
            seized_total: schedule.len() as u64,
            observed_stores: ids.len() as u64,
            classified_stores: classified,
            campaigns: campaigns.len() as u64,
            store_lifetime: LifetimeBound::estimate(&lifetimes),
            redirected,
            successor_seized,
            mean_reaction_days: ss_stats::corr::mean(&reactions),
        });
    }

    let detected = db.detected_stores().count().max(1) as f64;
    let seized_observed: f64 = firms.iter().map(|f| f.observed_stores as f64).sum();
    SeizureAnalysis {
        firms,
        seized_store_fraction: seized_observed / detected,
    }
}

impl SeizureAnalysis {
    /// Markdown rendering of the Table 3 analogue.
    pub fn to_markdown(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .firms
            .iter()
            .map(|f| {
                vec![
                    f.firm.clone(),
                    f.cases.to_string(),
                    f.brands.to_string(),
                    f.seized_total.to_string(),
                    f.observed_stores.to_string(),
                    f.classified_stores.to_string(),
                    f.campaigns.to_string(),
                    f.store_lifetime
                        .map(|l| format!("{:.0}–{:.0}", l.mean_lo, l.mean_hi))
                        .unwrap_or_else(|| "—".into()),
                    format!("{}/{}", f.redirected, f.observed_stores),
                    f.mean_reaction_days
                        .map(|d| format!("{d:.1}"))
                        .unwrap_or_else(|| "—".into()),
                ]
            })
            .collect();
        ss_stats::render::markdown_table(
            &[
                "Firm",
                "Cases",
                "Brands",
                "Seized (docs)",
                "Stores",
                "Classified",
                "Campaigns",
                "Lifetime (d)",
                "Redirected",
                "Reaction (d)",
            ],
            &rows,
        )
    }
}

/// Validation of seizure-event inference against ground truth: how close
/// the crawler's observed seizure days are to the true court days (the
/// footnote-7 caveat — campaigns can re-point faster than the crawler
/// re-verifies).
pub fn seizure_observation_lag(out: &StudyOutput) -> Option<f64> {
    let db = &out.crawler.db;
    let mut lags = Vec::new();
    for (id, s) in &db.store_info {
        let Some((obs_day, _)) = &s.seizure else {
            continue;
        };
        let name = db.domains.resolve(*id);
        let Ok(dn) = ss_types::DomainName::parse(name) else {
            continue;
        };
        let Some(domain) = out.world.domains.lookup(&dn) else {
            continue;
        };
        let Some(truth) = out.world.domains.get(domain).seized else {
            continue;
        };
        lags.push(obs_day.days_since(truth.day).max(0) as f64);
    }
    ss_stats::corr::mean(&lags)
}

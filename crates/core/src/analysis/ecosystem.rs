//! Ecosystem characterization: Table 1 and Table 2 (§5.1).

use std::collections::HashSet;

use ss_stats::{peak_range, render, DailySeries};
use ss_types::SimDate;

use crate::pipeline::StudyOutput;

/// Measured Table 1 row (per vertical).
#[derive(Debug, Clone, serde::Serialize)]
pub struct VerticalRow {
    /// Vertical name.
    pub name: String,
    /// PSR observations in the vertical.
    pub psrs: u64,
    /// Unique doorway domains seen in the vertical's PSRs.
    pub doorways: u64,
    /// Unique detected stores reached from the vertical.
    pub stores: u64,
    /// Distinct attributed campaigns observed in the vertical.
    pub campaigns: u64,
    /// Paper-reported values for the same row (for comparison).
    pub paper: (u32, u32, u32, u32),
}

/// Measured Table 1 (plus unique totals).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table1 {
    /// Per-vertical rows in Table 1 order.
    pub rows: Vec<VerticalRow>,
    /// Unique totals across verticals (doorways/stores dedup'd globally).
    pub total: (u64, u64, u64, u64),
    /// Fraction of PSRs attributed to a known campaign (paper: 58%).
    pub attributed_psr_fraction: f64,
    /// Fraction of detected stores attributed (paper: ~11%).
    pub attributed_store_fraction: f64,
}

/// Computes Table 1 from the shared one-pass scan plus attribution.
pub fn table1(out: &StudyOutput) -> Table1 {
    let db = &out.crawler.db;
    let mut rows = Vec::new();
    let mut all_doorways: HashSet<u32> = HashSet::new();
    let mut all_stores: HashSet<u32> = HashSet::new();
    let mut all_campaigns: HashSet<usize> = HashSet::new();
    let mut total_psrs = 0u64;
    let attributed_psrs: u64 = out.scan.classes.iter().map(|c| c.psrs).sum();

    for (vi, mv) in out.monitored.iter().enumerate() {
        let v = &out.scan.verticals[vi];
        total_psrs += v.psrs;
        all_doorways.extend(&v.doorways);
        all_stores.extend(&v.stores);
        all_campaigns.extend(&v.campaigns);
        let spec = out.world.verticals[vi].spec;
        rows.push(VerticalRow {
            name: mv.name.clone(),
            psrs: v.psrs,
            doorways: v.doorways.len() as u64,
            stores: v.stores.len() as u64,
            campaigns: v.campaigns.len() as u64,
            paper: (
                spec.table1.psrs,
                spec.table1.doorways,
                spec.table1.stores,
                spec.table1.campaigns,
            ),
        });
    }

    let attributed_stores = out
        .attribution
        .store_class
        .values()
        .filter(|c| c.is_some())
        .count() as f64;
    let detected_stores = db.detected_stores().count().max(1) as f64;

    Table1 {
        rows,
        total: (
            total_psrs,
            all_doorways.len() as u64,
            all_stores.len() as u64,
            all_campaigns.len() as u64,
        ),
        attributed_psr_fraction: if total_psrs == 0 {
            0.0
        } else {
            attributed_psrs as f64 / total_psrs as f64
        },
        attributed_store_fraction: attributed_stores / detected_stores,
    }
}

impl Table1 {
    /// Markdown rendering with paper columns side by side.
    pub fn to_markdown(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{} ({})", r.psrs, r.paper.0),
                    format!("{} ({})", r.doorways, r.paper.1),
                    format!("{} ({})", r.stores, r.paper.2),
                    format!("{} ({})", r.campaigns, r.paper.3),
                ]
            })
            .chain(std::iter::once(vec![
                "Total (unique)".to_owned(),
                self.total.0.to_string(),
                self.total.1.to_string(),
                self.total.2.to_string(),
                self.total.3.to_string(),
            ]))
            .collect();
        render::markdown_table(
            &[
                "Vertical",
                "PSRs (paper)",
                "Doorways (paper)",
                "Stores (paper)",
                "Campaigns (paper)",
            ],
            &rows,
        )
    }
}

/// Measured Table 2 row (per campaign).
#[derive(Debug, Clone, serde::Serialize)]
pub struct CampaignRow {
    /// Campaign name.
    pub name: String,
    /// Unique doorway domains attributed to the campaign.
    pub doorways: u64,
    /// Stores attributed to it.
    pub stores: u64,
    /// Brands seen on its store pages.
    pub brands: u64,
    /// Peak poisoning duration (days, 60% mass — §5.1.2).
    pub peak_days: Option<u32>,
    /// Paper values `(doorways, stores, brands, peak_days)` when the
    /// campaign is in the printed table.
    pub paper: Option<(u32, u32, u32, u32)>,
}

/// Measured Table 2.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table2 {
    /// Per-campaign rows, by descending doorway count.
    pub rows: Vec<CampaignRow>,
    /// Mean peak duration across campaigns with a peak (paper: 51.3 days).
    pub mean_peak_days: f64,
}

/// Computes Table 2 from the shared scan plus attribution.
pub fn table2(out: &StudyOutput) -> Table2 {
    let db = &out.crawler.db;
    let brand_names = ss_types::market::all_brands();
    let n_classes = out.attribution.class_names.len();

    let doorways: Vec<&HashSet<u32>> = out.scan.classes.iter().map(|c| &c.doorways).collect();
    let mut stores: Vec<HashSet<u32>> = vec![HashSet::new(); n_classes];
    let mut brands: Vec<HashSet<&str>> = vec![HashSet::new(); n_classes];
    for (id, class) in &out.attribution.store_class {
        let Some(c) = class else { continue };
        stores[*c].insert(*id);
        if let Some(info) = db.store_info.get(id) {
            for b in &brand_names {
                if info.html.contains(b) {
                    brands[*c].insert(b);
                }
            }
        }
    }

    let mut rows = Vec::new();
    let mut peak_sum = 0.0;
    let mut peak_n = 0usize;
    for c in 0..n_classes {
        if doorways[c].is_empty() && stores[c].is_empty() {
            continue; // campaign never observed in this run
        }
        let name = out.attribution.class_names[c].clone();
        let series: DailySeries = super::campaign_psr_series(out, c, false);
        let peak = peak_range(&series, 0.6).map(|p| p.days);
        if let Some(d) = peak {
            peak_sum += f64::from(d);
            peak_n += 1;
        }
        let paper = ss_types::market::NAMED_CAMPAIGNS
            .iter()
            .find(|s| s.name == name)
            .map(|s| (s.doorways, s.stores, s.brands, s.peak_days));
        rows.push(CampaignRow {
            name,
            doorways: doorways[c].len() as u64,
            stores: stores[c].len() as u64,
            brands: brands[c].len() as u64,
            peak_days: peak,
            paper,
        });
    }
    rows.sort_by(|a, b| b.doorways.cmp(&a.doorways).then(a.name.cmp(&b.name)));
    Table2 {
        rows,
        mean_peak_days: if peak_n == 0 {
            0.0
        } else {
            peak_sum / peak_n as f64
        },
    }
}

impl Table2 {
    /// Markdown rendering.
    pub fn to_markdown(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let paper = r
                    .paper
                    .map(|(d, s, b, p)| format!("{d}/{s}/{b}/{p}"))
                    .unwrap_or_else(|| "—".into());
                vec![
                    r.name.clone(),
                    r.doorways.to_string(),
                    r.stores.to_string(),
                    r.brands.to_string(),
                    r.peak_days
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "—".into()),
                    paper,
                ]
            })
            .collect();
        render::markdown_table(
            &[
                "Campaign",
                "Doorways",
                "Stores",
                "Brands",
                "Peak (days)",
                "Paper d/s/b/p",
            ],
            &rows,
        )
    }
}

/// Distribution skew check (§5.1): the largest campaigns should account
/// for the majority of attributed PSRs. Returns the attributed-PSR share
/// of the top-k campaigns, straight off the scan's per-class counts.
pub fn top_k_psr_share(out: &StudyOutput, k: usize) -> f64 {
    let total: u64 = out.scan.classes.iter().map(|c| c.psrs).sum();
    if total == 0 {
        return 0.0;
    }
    let mut counts: Vec<u64> = out
        .scan
        .classes
        .iter()
        .map(|c| c.psrs)
        .filter(|&n| n > 0)
        .collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    counts.iter().take(k).sum::<u64>() as f64 / total as f64
}

/// Average observed daily churn across the crawl (paper: 1.84%), from the
/// scan's per-day doorway sets plus first-sighting days.
pub fn mean_daily_churn(out: &StudyOutput) -> f64 {
    let (start, end) = out.window;
    let db = &out.crawler.db;
    let mut sum = 0.0;
    let mut n = 0usize;
    // Skip the first day (everything is new on day one).
    for day in SimDate::range_inclusive(start + 1, end) {
        if let Some(seen) = out.scan.day_domains.get(&day).filter(|s| !s.is_empty()) {
            let new = seen
                .iter()
                .filter(|d| {
                    db.doorway_info
                        .get(d)
                        .map(|i| i.first_seen == day)
                        .unwrap_or(false)
                })
                .count();
            sum += new as f64 / seen.len() as f64;
        }
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

//! One analysis module per family of paper artifacts (§5 + methodology
//! validation). Each function consumes the [`crate::pipeline::StudyOutput`]
//! and returns a structured result carrying both the measured quantities
//! and renderable views (markdown / CSV).

pub mod ecosystem;
pub mod figures;
pub mod interventions;
pub mod scan;
pub mod sidechannel;
pub mod validation;

use ss_types::SimDate;

use ss_stats::DailySeries;

use crate::pipeline::StudyOutput;

/// A dense all-days-zero series over the study window, onto which the
/// scan's sparse per-day counts are folded.
fn dense_window(out: &StudyOutput, sparse: &DailySeries) -> DailySeries {
    let (start, end) = out.window;
    let mut s = DailySeries::new(start, end);
    for day in SimDate::range_inclusive(start, end) {
        s.set(day, 0.0);
    }
    for (day, v) in sparse.observed() {
        s.add(day, v);
    }
    s
}

/// Daily PSR-count series for one attributed campaign class across the
/// crawl window. `top10_only` restricts to ranks 1–10. Reads the shared
/// one-pass scan — no corpus iteration.
pub fn campaign_psr_series(out: &StudyOutput, class: usize, top10_only: bool) -> DailySeries {
    let c = &out.scan.classes[class];
    dense_window(out, if top10_only { &c.daily_top10 } else { &c.daily })
}

/// Daily PSR-count series for PSRs landing on a specific store domain set.
/// Reads the shared one-pass scan — no corpus iteration.
pub fn landing_psr_series(out: &StudyOutput, landing_ids: &[u32], top10_only: bool) -> DailySeries {
    let (start, end) = out.window;
    let mut s = DailySeries::new(start, end);
    for day in SimDate::range_inclusive(start, end) {
        s.set(day, 0.0);
    }
    for id in landing_ids {
        if let Some(l) = out.scan.landings.get(id) {
            let sparse = if top10_only { &l.daily_top10 } else { &l.daily };
            for (day, v) in sparse.observed() {
                s.add(day, v);
            }
        }
    }
    s
}

//! One analysis module per family of paper artifacts (§5 + methodology
//! validation). Each function consumes the [`crate::pipeline::StudyOutput`]
//! and returns a structured result carrying both the measured quantities
//! and renderable views (markdown / CSV).

pub mod ecosystem;
pub mod figures;
pub mod interventions;
pub mod sidechannel;
pub mod validation;

use ss_types::SimDate;

use ss_stats::DailySeries;

use crate::pipeline::StudyOutput;

/// Daily PSR-count series for one attributed campaign class across the
/// crawl window. `top10_only` restricts to ranks 1–10.
pub fn campaign_psr_series(out: &StudyOutput, class: usize, top10_only: bool) -> DailySeries {
    let (start, end) = out.window;
    let mut s = DailySeries::new(start, end);
    for day in SimDate::range_inclusive(start, end) {
        s.set(day, 0.0);
    }
    for psr in &out.crawler.db.psrs {
        if top10_only && psr.rank > 10 {
            continue;
        }
        if out.attribution.psr_class(psr) == Some(class) {
            s.add(psr.day, 1.0);
        }
    }
    s
}

/// Daily PSR-count series for PSRs landing on a specific store domain set.
pub fn landing_psr_series(out: &StudyOutput, landing_ids: &[u32], top10_only: bool) -> DailySeries {
    let (start, end) = out.window;
    let mut s = DailySeries::new(start, end);
    for day in SimDate::range_inclusive(start, end) {
        s.set(day, 0.0);
    }
    for psr in &out.crawler.db.psrs {
        if top10_only && psr.rank > 10 {
            continue;
        }
        if psr
            .landing
            .map(|l| landing_ids.contains(&l))
            .unwrap_or(false)
        {
            s.add(psr.day, 1.0);
        }
    }
    s
}

//! Causal provenance queries over a finished study run.
//!
//! The paper's core contribution is *attribution over time*: when a
//! campaign was penalized or seized, how long it took to react, and why
//! a given poisoned search result appeared. This module answers those
//! questions after the fact by walking three data planes together:
//!
//! * the **persisted tick-plane event log** (`World::event_trail`,
//!   retained behind the [`StudyConfig`](crate::StudyConfig)
//!   `trace_level` flag) — the ground-truth interventions in commit
//!   order;
//! * the **columnar PSR store** plus the doorway/store/seizure indices
//!   of the crawl database — what the measurement apparatus observed,
//!   queried through the shared [`Aggregator`]/[`run_scan`] machinery;
//! * the **attribution artifacts** — which campaign the classifier
//!   blamed.
//!
//! Each query returns a [`CausalChain`]: dated steps sorted
//! chronologically (creation → doorway planted → PSR surfaced →
//! penalty/seizure → reaction). The rendering is deterministic for a
//! given run, so `repro explain` output can be golden-tested.

use ss_crawl::db::{ColumnView, PsrRecord};
use ss_eco::domains::SiteKind;
use ss_eco::events::Event;
use ss_eco::CampaignRow;
use ss_eco::{World, WorldEvent};
use ss_types::{DomainName, SimDate, StoreId};

use crate::analysis::scan::{run_scan, Aggregator};
use crate::pipeline::StudyOutput;

/// Detail steps of one kind shown in full before summarizing the rest.
const DETAIL_CAP: usize = 10;

/// A chronological causal chain: dated steps plus a title.
#[derive(Debug, Clone)]
pub struct CausalChain {
    /// What the chain explains.
    pub title: String,
    steps: Vec<(SimDate, String)>,
}

impl CausalChain {
    fn new(title: String) -> Self {
        CausalChain {
            title,
            steps: Vec::new(),
        }
    }

    fn push(&mut self, day: SimDate, text: String) {
        self.steps.push((day, text));
    }

    /// The steps, sorted chronologically (stable: same-day steps keep
    /// insertion order).
    pub fn steps(&self) -> Vec<(SimDate, String)> {
        let mut steps = self.steps.clone();
        steps.sort_by_key(|(day, _)| *day);
        steps
    }

    /// Renders the chain as dated lines, oldest first.
    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\n", self.title);
        for (day, text) in self.steps() {
            out.push_str(&format!("{day}  {text}\n"));
        }
        out
    }
}

/// Resolves a campaign key — an exact campaign name, a dense index, or
/// `campaign#N` — against the world's ground truth.
fn campaign_by_key<'a>(world: &'a World, key: &str) -> Option<(usize, CampaignRow<'a>)> {
    if let Some(c) = world.campaigns.iter().find(|c| c.name == key) {
        return Some((c.id.index(), c));
    }
    let idx: usize = key.strip_prefix("campaign#").unwrap_or(key).parse().ok()?;
    world.campaigns.get(idx).map(|c| (idx, c))
}

/// Resolves a campaign's store id set once (rotations and seizures are
/// keyed by store, not campaign).
fn campaign_stores(c: CampaignRow<'_>) -> Vec<StoreId> {
    c.stores.to_vec()
}

/// Explains one campaign end to end: creation and activity windows
/// (ground-truth event log), doorways planted, PSRs surfaced
/// (measurement), penalties and seizures (persisted tick-plane events),
/// and the campaign's reactions.
pub fn explain_campaign(out: &StudyOutput, key: &str) -> Option<CausalChain> {
    let world = &out.world;
    let (ci, c) = campaign_by_key(world, key)?;
    let mut chain = CausalChain::new(format!(
        "campaign {} ({}, {})",
        c.name,
        c.id,
        if c.classified {
            "classified"
        } else {
            "shadow tail"
        }
    ));

    // Creation: activity windows from the ground-truth event log.
    for ev in world.events.all() {
        if let Event::CampaignActive { campaign, from, to } = ev {
            if *campaign == c.id {
                chain.push(
                    *from,
                    format!("campaign created/active: window {from} → {to}"),
                );
            }
        }
    }

    // Doorways planted (ground truth), capped with a summary tail.
    let mut planted: Vec<(SimDate, String)> = c
        .doorways
        .iter()
        .map(|d| {
            (
                d.live_from,
                format!(
                    "doorway {} planted (vertical {}, → {})",
                    world.domains.get(d.domain).name,
                    d.vertical,
                    d.target_store
                ),
            )
        })
        .collect();
    planted.sort();
    let extra = planted.len().saturating_sub(DETAIL_CAP);
    if let Some((last_day, _)) = planted.last().cloned() {
        for (day, text) in planted.into_iter().take(DETAIL_CAP) {
            chain.push(day, text);
        }
        if extra > 0 {
            chain.push(last_day, format!("… and {extra} more doorways planted"));
        }
    }

    // Measurement: the attributed PSR series from the shared scan.
    if let Some(class) = out.attribution.class_index(c.name) {
        let cs = &out.scan.classes[class];
        if let Some((first, _)) = cs.daily.observed().next() {
            chain.push(
                first,
                format!(
                    "first PSR attributed to this campaign surfaced (class {class}, {} PSRs over the run)",
                    cs.psrs
                ),
            );
        }
        let series = dense_class_series(out, class);
        if let Some(peak) = ss_stats::peak::peak_range(&series, 0.6) {
            chain.push(
                peak.from,
                format!(
                    "PSR volume entered its peak range ({} days, {:.0}% of mass, through {})",
                    peak.days,
                    peak.mass * 100.0,
                    peak.to
                ),
            );
        }
    } else {
        chain.push(
            c.windows.first().map(|w| w.from).unwrap_or(world.day),
            "attribution never formed a class for this campaign".to_owned(),
        );
    }

    // Interventions and reactions from the persisted tick-plane log.
    let stores = campaign_stores(c);
    let mut penalties = 0usize;
    let mut shown_penalties = 0usize;
    let mut last_penalty = None;
    for t in &world.event_trail {
        match &t.event {
            WorldEvent::PenalizeDoorway { domain, labeled } => {
                let Some((owner, _)) = world.doorway_truth(*domain) else {
                    continue;
                };
                if owner.index() != ci {
                    continue;
                }
                penalties += 1;
                last_penalty = Some(t.day);
                if shown_penalties < DETAIL_CAP {
                    shown_penalties += 1;
                    chain.push(
                        t.day,
                        format!(
                            "search engine penalized doorway {} (hacked label: {labeled})",
                            world.domains.get(*domain).name
                        ),
                    );
                }
            }
            WorldEvent::FileCase {
                firm,
                brand,
                targets,
                bulk,
            } => {
                let ours: Vec<&ss_types::DomainId> = targets
                    .iter()
                    .filter(|d| match world.domains.get(**d).kind {
                        SiteKind::Storefront { store } => stores.contains(&store),
                        _ => false,
                    })
                    .collect();
                if ours.is_empty() {
                    continue;
                }
                let names: Vec<String> = ours
                    .iter()
                    .map(|d| world.domains.get(**d).name.to_string())
                    .collect();
                chain.push(
                    t.day,
                    format!(
                        "{} filed a seizure case for brand {} naming {} (+{bulk} bulk domains)",
                        world.firms[firm.index()].name,
                        world.brand_names[brand.index()],
                        names.join(", ")
                    ),
                );
            }
            WorldEvent::Rotate { store, reactive } => {
                if !stores.contains(store) {
                    continue;
                }
                // The ground-truth event log has the from/to domains.
                let detail = world
                    .events
                    .rotations_of(*store)
                    .into_iter()
                    .find(|(d, _, _, r)| **d == t.day && *r == *reactive)
                    .map(|(_, from, to, _)| {
                        format!(
                            "{} → {}",
                            world.domains.get(*from).name,
                            world.domains.get(*to).name
                        )
                    })
                    .unwrap_or_else(|| "folded (backup pool exhausted)".to_owned());
                chain.push(
                    t.day,
                    format!(
                        "campaign reacted: rotated {store} ({detail}, {})",
                        if *reactive {
                            format!("reactive, {}d after seizure", c.reaction_days)
                        } else {
                            "scripted-proactive".to_owned()
                        }
                    ),
                );
            }
            _ => {}
        }
    }
    if penalties > shown_penalties {
        chain.push(
            last_penalty.expect("penalties counted"),
            format!(
                "… {} penalties total on this campaign's doorways",
                penalties
            ),
        );
    }
    if world.event_trail.is_empty() {
        chain.push(
            world.day,
            "(tick event trail empty — run with tracing enabled for intervention provenance)"
                .to_owned(),
        );
    }

    // Crawler-observed seizures on this campaign's stores (measurement).
    let db = &out.crawler.db;
    for store in &stores {
        for (_, domain) in world.store(*store).domain_history {
            let name = world.domains.get(*domain).name.to_string();
            let Some(id) = db.domains.get(&name) else {
                continue;
            };
            if let Some((obs_day, notice)) = db.store_info.get(&id).and_then(|s| s.seizure.as_ref())
            {
                chain.push(
                    *obs_day,
                    format!(
                        "crawler observed the seizure notice on {name} (case {}, firm {})",
                        notice.case_id, notice.firm
                    ),
                );
            }
        }
    }

    Some(chain)
}

/// Dense per-class daily PSR series over the run window (the same shape
/// `analysis::campaign_psr_series` feeds to `peak_range`).
fn dense_class_series(out: &StudyOutput, class: usize) -> ss_stats::series::DailySeries {
    let (start, end) = out.window;
    let mut s = ss_stats::series::DailySeries::new(start, end);
    for day in SimDate::range_inclusive(start, end) {
        s.set(day, 0.0);
    }
    for (day, v) in out.scan.classes[class].daily.observed() {
        s.add(day, v);
    }
    s
}

/// Explains one store domain: detection, the PSRs that funneled into it,
/// attribution, the observed seizure, ground truth, and successors.
pub fn explain_store(out: &StudyOutput, domain: &str) -> Option<CausalChain> {
    let world = &out.world;
    let db = &out.crawler.db;
    let id = db.domains.get(domain)?;
    let info = db.store_info.get(&id)?;
    let mut chain = CausalChain::new(format!("store domain {domain}"));

    chain.push(
        info.first_seen,
        format!(
            "crawler first resolved a doorway landing here ({})",
            if info.is_store {
                "detected as a storefront"
            } else {
                "never confirmed as a storefront"
            }
        ),
    );
    if let Some(l) = out.scan.landings.get(&id) {
        if let Some((first, _)) = l.daily.observed().next() {
            chain.push(
                first,
                format!(
                    "PSRs began landing on this store ({:.0} PSR-days of traffic funnel over the run)",
                    l.daily.sum()
                ),
            );
        }
    }
    if let Some(Some(class)) = out.attribution.store_class.get(&id) {
        let name = &out.attribution.class_names[*class];
        chain.push(
            info.first_seen,
            format!("attribution assigned this store to campaign {name} (class {class})"),
        );
    }

    // Ground truth half: the registry knows the real store behind it.
    if let Ok(dn) = DomainName::parse(domain) {
        if let Some(did) = world.domains.lookup(&dn) {
            let rec = world.domains.get(did);
            if let SiteKind::Storefront { store } = rec.kind {
                let st = world.store(store);
                chain.push(
                    st.domain_history
                        .first()
                        .map(|(d, _)| *d)
                        .unwrap_or(world.day),
                    format!(
                        "ground truth: serves {store} of campaign {}",
                        world.campaigns.row(st.campaign).name
                    ),
                );
                for (day, from, to, reactive) in world.events.rotations_of(store) {
                    chain.push(
                        *day,
                        format!(
                            "store rotated {} → {} ({})",
                            world.domains.get(*from).name,
                            world.domains.get(*to).name,
                            if reactive {
                                "reacting to seizure"
                            } else {
                                "proactive"
                            }
                        ),
                    );
                }
            }
            if let Some(seizure) = rec.seized {
                chain.push(
                    seizure.day,
                    format!(
                        "ground truth: domain seized by court order (case {}, firm {})",
                        seizure.case,
                        world.firms[seizure.firm.index()].name
                    ),
                );
            }
        }
    }
    if let Some((obs_day, notice)) = &info.seizure {
        chain.push(
            *obs_day,
            format!(
                "crawler observed the seizure notice (case {}, firm {}, brand {})",
                notice.case_id, notice.firm, notice.brand
            ),
        );
    }
    Some(chain)
}

/// Finds PSR rows at `(day, rank)` — a one-pass query through the same
/// sharded scan machinery every analysis uses.
struct PsrProbe {
    day: SimDate,
    rank: u8,
    rows: Vec<PsrRecord>,
}

impl Aggregator for PsrProbe {
    type Output = Vec<PsrRecord>;
    fn observe(&mut self, cols: &ColumnView<'_>, row: usize) {
        if cols.day[row] == self.day && cols.rank[row] == self.rank {
            self.rows.push(cols.record(row));
        }
    }
    fn merge(&mut self, other: Self) {
        self.rows.extend(other.rows);
    }
    fn finish(self) -> Self::Output {
        self.rows
    }
}

/// Explains why PSRs appeared at `(day, rank)`: the matching rows, then
/// the full provenance of the first match — doorway first-sighting,
/// cloaking verdict, landing history, attribution, and ground truth.
pub fn explain_psr(out: &StudyOutput, day_index: u32, rank: u8) -> Option<CausalChain> {
    let world = &out.world;
    let db = &out.crawler.db;
    let day = SimDate::from_day_index(day_index);
    let rows = run_scan(&db.psrs, 1, &out.metrics, || PsrProbe {
        day,
        rank,
        rows: Vec::new(),
    });
    let first = *rows.first()?;
    let mut chain = CausalChain::new(format!(
        "PSR at rank {rank} on {day} ({} match{})",
        rows.len(),
        if rows.len() == 1 { "" } else { "es" }
    ));
    for r in rows.iter().take(DETAIL_CAP) {
        chain.push(
            day,
            format!(
                "psr: term {:?} → {} (root={}, labeled={})",
                db.terms.resolve(r.term),
                db.domains.resolve(r.domain),
                r.is_root,
                r.labeled
            ),
        );
    }

    let name = db.domains.resolve(first.domain).to_owned();
    if let Some(info) = db.doorway_info.get(&first.domain) {
        chain.push(
            info.first_seen,
            format!(
                "doorway {name} first seen and confirmed cloaking ({:?})",
                info.cloak
            ),
        );
        for (d, landing) in info.landings.iter().take(DETAIL_CAP) {
            chain.push(
                *d,
                format!(
                    "doorway landing resolved to {}",
                    db.domains.resolve(*landing)
                ),
            );
        }
        if let Some((first_labeled, _)) = info.label_seen {
            chain.push(
                first_labeled,
                format!("hacked label first observed on {name}"),
            );
        }
    }
    if let Some(landing) = first.landing {
        if let Some(Some(class)) = out.attribution.store_class.get(&landing) {
            chain.push(
                day,
                format!(
                    "landing store {} attributed to campaign {}",
                    db.domains.resolve(landing),
                    out.attribution.class_names[*class]
                ),
            );
        }
    }
    // Ground truth: who planted it and whether it was penalized.
    if let Ok(dn) = DomainName::parse(&name) {
        if let Some(did) = world.domains.lookup(&dn) {
            if let Some((campaign, doorway)) = world.doorway_truth(did) {
                chain.push(
                    doorway.live_from,
                    format!(
                        "ground truth: planted by campaign {} (live {} → {})",
                        world.campaigns.row(campaign).name,
                        doorway.live_from,
                        doorway.live_until
                    ),
                );
                if let Some(pday) = doorway.penalized {
                    chain.push(pday, "ground truth: doorway penalized".to_owned());
                }
            }
        }
    }
    Some(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Study, StudyConfig};
    use ss_obs::TraceLevel;

    fn traced_run(seed: u64) -> StudyOutput {
        let mut cfg = StudyConfig::fast_test(seed);
        cfg.set_trace(TraceLevel::Event);
        Study::new(cfg).run().expect("study runs")
    }

    #[test]
    fn explain_walks_campaign_store_and_psr_chains() {
        let out = traced_run(76);
        // A campaign with attributed PSRs exists in every healthy run.
        let name = out
            .attribution
            .class_names
            .first()
            .expect("at least one class")
            .clone();
        let chain = explain_campaign(&out, &name).expect("campaign resolves");
        let rendered = chain.render();
        assert!(rendered.contains("campaign created/active"));
        assert!(rendered.contains("doorway"), "no doorway steps: {rendered}");
        // Steps are chronological.
        let steps = chain.steps();
        assert!(steps.windows(2).all(|w| w[0].0 <= w[1].0));

        // A store the crawler detected explains end to end.
        let store_domain = out
            .crawler
            .db
            .detected_store_domains()
            .first()
            .expect("stores detected")
            .clone();
        let sc = explain_store(&out, &store_domain).expect("store resolves");
        assert!(sc.render().contains("ground truth: serves"));

        // Any recorded PSR explains.
        let r = out.crawler.db.psrs.get(0);
        let pc = explain_psr(&out, r.day.day_index(), r.rank).expect("psr resolves");
        let rendered = pc.render();
        assert!(rendered.contains("psr: term"));
        assert!(rendered.contains("ground truth: planted by campaign"));

        // Unknown keys answer None, not panic.
        assert!(explain_campaign(&out, "no-such-campaign").is_none());
        assert!(explain_store(&out, "nope.example.com").is_none());
        assert!(explain_psr(&out, 0, 255).is_none());
    }
}

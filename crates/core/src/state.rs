//! The state plane at run level: [`RunState`], the versioned
//! [`RunCheckpoint`] container, and checkpoint file I/O.
//!
//! Every layer below this one already knows how to snapshot itself — the
//! world (ECS tables, keyed RNG streams, search engine, supplier ledger,
//! event log), the crawler (columnar PSR store, crawl database, JS
//! compile cache), and the telemetry registry's deterministic half. This
//! module composes those frames into one [`RunCheckpoint`]: everything
//! [`crate::Study::run`] needs to continue a run from a day boundary,
//! plus the orderlab programme state (sampler, transactions, AWStats
//! reports, purchased-store set) hand-encoded here because those types
//! live in `ss-orders` and their codec belongs to the run container.
//!
//! Deliberately *not* captured: wall-clock artifacts. Span timings, the
//! Chrome-trace timeline, and per-day `elapsed_ms` of days not yet run
//! are how fast a run went, not what it did — a resumed run reproduces
//! every deterministic byte (headline, metrics, fingerprints) while its
//! wall-clock sections describe only the post-resume half.
//!
//! The semantic config hash stored in each checkpoint guards resumes: it
//! is the manifest config hash with every runtime-only knob (thread
//! counts, trace plane, output paths) normalized away, so a checkpoint
//! can be resumed at a different thread count — bit-identical output —
//! but not under a different scenario, crawl window, or sampler policy.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::Path;

use ss_crawl::crawler::Crawler;
use ss_crawl::terms::{MonitoredVertical, TermMethodology};
use ss_eco::World;
use ss_obs::{Registry, TraceLevel};
use ss_orders::analytics::ParsedReport;
use ss_orders::purchasepair::{MonitoredStore, OrderSample, OrderSampler, SamplerConfig};
use ss_orders::transactions::Transaction;
use ss_types::snapshot::{
    encode_framed, fold_fingerprint, Reader, Snapshot, SnapshotError, Writer,
};
use ss_types::SimDate;

use crate::manifest::{self, DayRecord};
use crate::pipeline::{DailyState, StudyConfig};

/// Errors from saving, loading, or applying a run checkpoint. Corrupted
/// or mismatched inputs always surface here — never as a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure reading or writing the checkpoint file.
    Io(String),
    /// The bytes failed frame validation or body decoding.
    Snapshot(SnapshotError),
    /// The checkpoint was written under a semantically different study
    /// configuration (different scenario, window, or programme knobs —
    /// thread counts, trace settings, and output paths don't count).
    ConfigMismatch {
        /// Semantic hash of the config attempting the resume.
        expected: u64,
        /// Semantic hash stored in the checkpoint.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::Snapshot(e) => write!(f, "checkpoint frame: {e}"),
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different study config \
                 (semantic hash {found:016x}, this config is {expected:016x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<SnapshotError> for CheckpointError {
    fn from(e: SnapshotError) -> Self {
        CheckpointError::Snapshot(e)
    }
}

/// Run-plane options orthogonal to [`StudyConfig`]: where to resume from
/// and whether to drop checkpoints along the way. These are runtime
/// knobs, not study semantics — none of them participates in the config
/// hash, and enabling them changes no deterministic output byte.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Resume from this checkpoint file instead of building day 0.
    pub resume_from: Option<String>,
    /// Write a checkpoint every N crawl days (at the day boundary, after
    /// the day's stages ran). `None` or 0 disables checkpointing.
    pub checkpoint_every: Option<u32>,
    /// Directory for checkpoint files (`checkpoints` when unset).
    pub checkpoint_dir: Option<String>,
}

/// The manifest config hash over a *normalized* configuration: every
/// runtime-only knob — thread counts, the trace plane, output paths — is
/// pinned to its neutral value first. Two configs with equal semantic
/// hashes produce bit-identical deterministic output, so this is the
/// compatibility key stored in (and checked against) every checkpoint.
pub fn semantic_config_hash(cfg: &StudyConfig) -> u64 {
    let mut c = cfg.clone();
    c.tick_threads = 1;
    c.analysis_threads = 1;
    c.crawler.threads = 1;
    c.trace_level = TraceLevel::Off;
    c.crawler.trace = TraceLevel::Off;
    c.trace_path = None;
    c.manifest_path = None;
    manifest::config_hash(&c)
}

/// Fingerprint of the whole run's mutable state: the world fingerprint
/// folded with the search engine's and the PSR store's. The world hash
/// alone misses the measurement side — two runs could agree on the
/// simulation but diverge in what the crawler recorded; this covers both
/// planes.
pub fn run_fingerprint(world: &World, crawler: &Crawler) -> u64 {
    let mut h = world.state_fingerprint();
    h = fold_fingerprint(h, world.engine.state_fingerprint());
    fold_fingerprint(h, crawler.db.psrs.state_fingerprint())
}

/// The complete mutable state of a running study between day boundaries.
/// The daily driver borrows its fields; the only constructors are the
/// day-0 build and checkpoint restore, so there is no third way for run
/// state to come into existence.
pub struct RunState {
    /// The simulated world (including the search engine and its RNGs).
    pub world: World,
    /// The measurement programme's mutable state (crawler, sampler,
    /// transactions, AWStats, purchased set).
    pub daily: DailyState,
    /// Monitored term sets per vertical, fixed at crawl start.
    pub monitored: Vec<MonitoredVertical>,
    /// The run's telemetry registry (deterministic half checkpointed;
    /// span timings are wall-clock and start empty on resume).
    pub obs: Registry,
    /// Per-day progress records accumulated so far.
    pub day_records: Vec<DayRecord>,
    /// The next day the driver will execute.
    pub next_day: SimDate,
}

impl RunState {
    /// Day-0 construction: builds the world, warms it to the eve of the
    /// crawl, selects monitored terms, and assembles an empty programme.
    pub fn build(cfg: &StudyConfig) -> ss_types::Result<RunState> {
        let obs = Registry::new();
        let mut world = World::build(cfg.scenario.clone())?;
        world.tick_threads = cfg.tick_threads;
        world.set_trace(cfg.trace_level);
        let start = cfg.crawl_start;
        let monitored = ss_obs::time!(obs, "study.warmup", {
            world.run_until(start);
            ss_crawl::terms::select_all(&world, start, cfg.monitored_terms, cfg.scenario.seed)
        });
        // Term selection probed the engine heavily; drain those queries
        // into the world registry now so a day-0 checkpoint (and every
        // later one) carries fully-settled query-plane counters.
        world.drain_engine_metrics();
        let daily = DailyState {
            crawler: Crawler::new(cfg.crawler.clone(), monitored.clone()),
            sampler: OrderSampler::new(cfg.sampler.clone()),
            transactions: Vec::new(),
            awstats: HashMap::new(),
            purchased: HashSet::new(),
        };
        Ok(RunState {
            world,
            daily,
            monitored,
            obs,
            day_records: Vec::new(),
            next_day: start + 1,
        })
    }

    /// Restores run state from a decoded checkpoint, validating that
    /// `cfg` is semantically the one the checkpoint was written under.
    /// Runtime-only knobs (thread counts) are re-applied from `cfg`; the
    /// trace plane keeps the state it was checkpointed with.
    pub fn restore(ckpt: RunCheckpoint, cfg: &StudyConfig) -> Result<RunState, CheckpointError> {
        let expected = semantic_config_hash(cfg);
        if ckpt.semantic_config_hash != expected {
            return Err(CheckpointError::ConfigMismatch {
                expected,
                found: ckpt.semantic_config_hash,
            });
        }
        let RunCheckpoint {
            semantic_config_hash: _,
            next_day,
            monitored,
            mut world,
            mut crawler,
            sampler,
            transactions,
            awstats,
            purchased,
            obs,
            day_records,
        } = ckpt;
        world.tick_threads = cfg.tick_threads;
        crawler.cfg.threads = cfg.crawler.threads;
        Ok(RunState {
            world,
            daily: DailyState {
                crawler,
                sampler,
                transactions,
                awstats,
                purchased,
            },
            monitored,
            obs,
            day_records,
            next_day,
        })
    }

    /// Fingerprint of this state's world + measurement planes.
    pub fn run_fingerprint(&self) -> u64 {
        run_fingerprint(&self.world, &self.daily.crawler)
    }

    /// Encodes this state as a [`RunCheckpoint`] frame without cloning
    /// any of the large structures.
    pub fn checkpoint_bytes(&self, cfg: &StudyConfig) -> Vec<u8> {
        let view = View {
            semantic_config_hash: semantic_config_hash(cfg),
            next_day: self.next_day,
            monitored: &self.monitored,
            world: &self.world,
            crawler: &self.daily.crawler,
            sampler: &self.daily.sampler,
            transactions: &self.daily.transactions,
            awstats: &self.daily.awstats,
            purchased: &self.daily.purchased,
            obs: &self.obs,
            day_records: &self.day_records,
        };
        encode_framed(RunCheckpoint::TAG, RunCheckpoint::VERSION, |w| {
            write_view(w, &view)
        })
    }
}

/// Writes `state` as a checkpoint file, creating parent directories.
/// Returns the frame size in bytes.
pub fn save_checkpoint(
    state: &RunState,
    cfg: &StudyConfig,
    path: &Path,
) -> Result<u64, CheckpointError> {
    let bytes = state.checkpoint_bytes(cfg);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| CheckpointError::Io(format!("{}: {e}", parent.display())))?;
        }
    }
    std::fs::write(path, &bytes)
        .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
    Ok(bytes.len() as u64)
}

/// Reads and decodes a checkpoint file. Every failure mode — missing
/// file, truncation, corruption, wrong tag or version — is a typed
/// [`CheckpointError`].
pub fn load_checkpoint(path: &Path) -> Result<RunCheckpoint, CheckpointError> {
    let bytes =
        std::fs::read(path).map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
    Ok(RunCheckpoint::decode(&bytes)?)
}

/// A complete run captured at a day boundary: everything the daily
/// driver needs to continue, in one versioned frame. Decode one with
/// [`load_checkpoint`] (or [`Snapshot::decode`]), then either resume it
/// via [`crate::Study::resume`] or fork it — `world.shift_scripted_seizures`
/// on several decoded copies of the same bytes is how the intervention
/// sweep builds its arms.
pub struct RunCheckpoint {
    /// Semantic hash of the study config the run was started under.
    pub semantic_config_hash: u64,
    /// The next day the resumed driver will execute.
    pub next_day: SimDate,
    /// Monitored term sets per vertical (fixed at crawl start; *not*
    /// re-derivable from a later world).
    pub monitored: Vec<MonitoredVertical>,
    /// The simulated world.
    pub world: World,
    /// The crawler with its database, clean-set, and JS cache.
    pub crawler: Crawler,
    /// The purchase-pair sampler.
    pub sampler: OrderSampler,
    /// Completed real purchases.
    pub transactions: Vec<Transaction>,
    /// Collected AWStats reports per store domain.
    pub awstats: HashMap<String, Vec<ParsedReport>>,
    /// Stores already purchased from, by interned domain id.
    pub purchased: HashSet<u32>,
    /// The run's telemetry registry (deterministic half).
    pub obs: Registry,
    /// Per-day progress records of the days already run.
    pub day_records: Vec<DayRecord>,
}

/// Borrowed view of checkpoint fields, so the driver can encode a frame
/// from `&RunState` without cloning the world.
struct View<'a> {
    semantic_config_hash: u64,
    next_day: SimDate,
    monitored: &'a [MonitoredVertical],
    world: &'a World,
    crawler: &'a Crawler,
    sampler: &'a OrderSampler,
    transactions: &'a [Transaction],
    awstats: &'a HashMap<String, Vec<ParsedReport>>,
    purchased: &'a HashSet<u32>,
    obs: &'a Registry,
    day_records: &'a [DayRecord],
}

fn put_methodology(w: &mut Writer, m: TermMethodology) {
    w.put_u8(match m {
        TermMethodology::DoorwayExtraction => 0,
        TermMethodology::SuggestExpansion => 1,
    });
}

fn get_methodology(r: &mut Reader<'_>) -> Result<TermMethodology, SnapshotError> {
    Ok(match r.get_u8()? {
        0 => TermMethodology::DoorwayExtraction,
        1 => TermMethodology::SuggestExpansion,
        b => return Err(SnapshotError::Corrupt(format!("term methodology {b}"))),
    })
}

fn put_monitored_store(w: &mut Writer, m: &MonitoredStore) {
    w.put_str(&m.domain);
    w.put_str(&m.campaign_key);
    w.put_seq(&m.samples, |w, s| {
        w.put_date(s.day);
        w.put_u64(s.order_number);
    });
    w.put_opt(m.last_attempt.as_ref(), |w, d| w.put_date(*d));
}

fn get_monitored_store(r: &mut Reader<'_>) -> Result<MonitoredStore, SnapshotError> {
    Ok(MonitoredStore {
        domain: r.get_str()?,
        campaign_key: r.get_str()?,
        samples: r.get_seq(|r| {
            Ok(OrderSample {
                day: r.get_date()?,
                order_number: r.get_u64()?,
            })
        })?,
        last_attempt: r.get_opt(|r| r.get_date())?,
    })
}

fn put_sampler(w: &mut Writer, s: &OrderSampler) {
    w.put_u32(s.cfg.interval_days);
    // Scalar count, not a sequence length: raw u64 (see the codec docs).
    w.put_u64(s.cfg.per_campaign_per_day as u64);
    let mut domains: Vec<&String> = s.stores.keys().collect();
    domains.sort();
    w.put_seq(&domains, |w, d| put_monitored_store(w, &s.stores[*d]));
    w.put_u64(s.orders_created as u64);
}

fn get_sampler(r: &mut Reader<'_>) -> Result<OrderSampler, SnapshotError> {
    let cfg = SamplerConfig {
        interval_days: r.get_u32()?,
        per_campaign_per_day: r.get_u64()? as usize,
    };
    let rows = r.get_seq(get_monitored_store)?;
    let mut stores = HashMap::with_capacity(rows.len());
    for m in rows {
        if stores.insert(m.domain.clone(), m).is_some() {
            return Err(SnapshotError::Corrupt("duplicate sampler store".into()));
        }
    }
    Ok(OrderSampler {
        cfg,
        stores,
        orders_created: r.get_u64()? as usize,
    })
}

fn put_transaction(w: &mut Writer, t: &Transaction) {
    w.put_str(&t.store_domain);
    w.put_date(t.day);
    w.put_u64(t.order_number);
    w.put_str(&t.processor);
    w.put_str(&t.bank.0);
    w.put_str(&t.bank.1);
    w.put_str(&t.merchant_id);
}

fn get_transaction(r: &mut Reader<'_>) -> Result<Transaction, SnapshotError> {
    Ok(Transaction {
        store_domain: r.get_str()?,
        day: r.get_date()?,
        order_number: r.get_u64()?,
        processor: r.get_str()?,
        bank: (r.get_str()?, r.get_str()?),
        merchant_id: r.get_str()?,
    })
}

fn put_report(w: &mut Writer, rep: &ParsedReport) {
    w.put_str(&rep.period);
    w.put_u64(rep.visits);
    w.put_u64(rep.pages);
    w.put_seq(&rep.referrers, |w, (host, n)| {
        w.put_str(host);
        w.put_u64(*n);
    });
    w.put_u64(rep.direct_visits);
    w.put_seq(&rep.daily, |w, (day, visits, pages)| {
        w.put_date(*day);
        w.put_u64(*visits);
        w.put_u64(*pages);
    });
}

fn get_report(r: &mut Reader<'_>) -> Result<ParsedReport, SnapshotError> {
    Ok(ParsedReport {
        period: r.get_str()?,
        visits: r.get_u64()?,
        pages: r.get_u64()?,
        referrers: r.get_seq(|r| Ok((r.get_str()?, r.get_u64()?)))?,
        direct_visits: r.get_u64()?,
        daily: r.get_seq(|r| Ok((r.get_date()?, r.get_u64()?, r.get_u64()?)))?,
    })
}

fn put_day_record(w: &mut Writer, d: &DayRecord) {
    w.put_u32(d.day);
    w.put_u64(d.psrs);
    w.put_u64(d.test_orders);
    w.put_u64(d.purchases);
    w.put_f64(d.elapsed_ms);
}

fn get_day_record(r: &mut Reader<'_>) -> Result<DayRecord, SnapshotError> {
    Ok(DayRecord {
        day: r.get_u32()?,
        psrs: r.get_u64()?,
        test_orders: r.get_u64()?,
        purchases: r.get_u64()?,
        elapsed_ms: r.get_f64()?,
    })
}

fn write_view(w: &mut Writer, v: &View<'_>) {
    w.put_u64(v.semantic_config_hash);
    w.put_date(v.next_day);
    w.put_seq(v.monitored, |w, mv| {
        w.put_str(&mv.name);
        put_methodology(w, mv.methodology);
        w.put_seq(&mv.terms, |w, t| w.put_str(t));
    });
    w.put_nested(v.world);
    w.put_nested(v.crawler);
    put_sampler(w, v.sampler);
    w.put_seq(v.transactions, put_transaction);
    // HashMaps are written sorted by key so the frame is canonical:
    // re-encoding a decoded checkpoint reproduces it byte for byte.
    let mut awstats_keys: Vec<&String> = v.awstats.keys().collect();
    awstats_keys.sort();
    w.put_seq(&awstats_keys, |w, domain| {
        w.put_str(domain);
        w.put_seq(&v.awstats[*domain], put_report);
    });
    let mut purchased: Vec<u32> = v.purchased.iter().copied().collect();
    purchased.sort_unstable();
    w.put_seq(&purchased, |w, id| w.put_u32(*id));
    w.put_nested(v.obs);
    w.put_seq(v.day_records, put_day_record);
}

impl Snapshot for RunCheckpoint {
    const TAG: &'static str = "run-checkpoint";
    const VERSION: u16 = 1;

    fn write_body(&self, w: &mut Writer) {
        write_view(
            w,
            &View {
                semantic_config_hash: self.semantic_config_hash,
                next_day: self.next_day,
                monitored: &self.monitored,
                world: &self.world,
                crawler: &self.crawler,
                sampler: &self.sampler,
                transactions: &self.transactions,
                awstats: &self.awstats,
                purchased: &self.purchased,
                obs: &self.obs,
                day_records: &self.day_records,
            },
        );
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let semantic_config_hash = r.get_u64()?;
        let next_day = r.get_date()?;
        let monitored = r.get_seq(|r| {
            Ok(MonitoredVertical {
                name: r.get_str()?,
                methodology: get_methodology(r)?,
                terms: r.get_seq(|r| r.get_str())?,
            })
        })?;
        let world = r.get_nested()?;
        let crawler = r.get_nested()?;
        let sampler = get_sampler(r)?;
        let transactions = r.get_seq(get_transaction)?;
        let awstats_rows = r.get_seq(|r| Ok((r.get_str()?, r.get_seq(get_report)?)))?;
        let mut awstats = HashMap::with_capacity(awstats_rows.len());
        for (domain, reports) in awstats_rows {
            if awstats.insert(domain, reports).is_some() {
                return Err(SnapshotError::Corrupt("duplicate awstats domain".into()));
            }
        }
        let purchased_rows = r.get_seq(|r| r.get_u32())?;
        let mut purchased = HashSet::with_capacity(purchased_rows.len());
        for id in purchased_rows {
            if !purchased.insert(id) {
                return Err(SnapshotError::Corrupt("duplicate purchased store".into()));
            }
        }
        Ok(RunCheckpoint {
            semantic_config_hash,
            next_day,
            monitored,
            world,
            crawler,
            sampler,
            transactions,
            awstats,
            purchased,
            obs: r.get_nested()?,
            day_records: r.get_seq(get_day_record)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StudyConfig;

    #[test]
    fn semantic_config_hash_ignores_runtime_knobs() {
        let base = StudyConfig::fast_test(7);
        let mut runtime = StudyConfig::fast_test(7);
        runtime.set_threads(8);
        runtime.set_trace(TraceLevel::Event);
        runtime.manifest_path = Some("elsewhere.json".into());
        runtime.trace_path = Some("trace.json".into());
        assert_eq!(semantic_config_hash(&base), semantic_config_hash(&runtime));
        // …but the raw manifest hash does see those knobs.
        assert_ne!(
            manifest::config_hash(&base),
            manifest::config_hash(&runtime)
        );
        // Semantic knobs still count.
        let mut other_seed = StudyConfig::fast_test(8);
        other_seed.set_threads(8);
        assert_ne!(
            semantic_config_hash(&base),
            semantic_config_hash(&other_seed)
        );
        let mut other_cap = StudyConfig::fast_test(7);
        other_cap.monitor_store_cap += 1;
        assert_ne!(
            semantic_config_hash(&base),
            semantic_config_hash(&other_cap)
        );
    }

    #[test]
    fn day_zero_checkpoint_roundtrips_canonically() {
        let cfg = StudyConfig::fast_test(91);
        let state = RunState::build(&cfg).expect("state builds");
        let fp = state.run_fingerprint();
        let bytes = state.checkpoint_bytes(&cfg);
        let ckpt = RunCheckpoint::decode(&bytes).expect("decodes");
        assert_eq!(ckpt.next_day, cfg.crawl_start + 1);
        assert_eq!(ckpt.monitored.len(), state.monitored.len());
        // The owned checkpoint re-encodes to the exact same frame: the
        // borrowed-view writer and the trait writer share one codec, and
        // every unordered container is serialized canonically.
        assert_eq!(ckpt.encode(), bytes);
        let restored = RunState::restore(ckpt, &cfg).expect("config matches");
        assert_eq!(restored.run_fingerprint(), fp);
        assert_eq!(restored.next_day, state.next_day);
    }

    #[test]
    fn restore_rejects_a_different_config() {
        let cfg = StudyConfig::fast_test(92);
        let state = RunState::build(&cfg).expect("state builds");
        let ckpt = RunCheckpoint::decode(&state.checkpoint_bytes(&cfg)).expect("decodes");
        let other = StudyConfig::fast_test(93);
        match RunState::restore(ckpt, &other) {
            Err(CheckpointError::ConfigMismatch { expected, found }) => {
                assert_eq!(expected, semantic_config_hash(&other));
                assert_eq!(found, semantic_config_hash(&cfg));
            }
            other => panic!("expected ConfigMismatch, got {:?}", other.err()),
        }
    }

    #[test]
    fn orderlab_codecs_roundtrip() {
        let mut sampler = OrderSampler::new(SamplerConfig::default());
        sampler.monitor("store-a.com", "KEY");
        sampler.monitor("store-b.com", "store-b.com");
        sampler
            .stores
            .get_mut("store-a.com")
            .expect("monitored")
            .samples
            .push(OrderSample {
                day: SimDate::from_day_index(140),
                order_number: 7_001,
            });
        sampler.orders_created = 3;
        let mut w = Writer::new();
        put_sampler(&mut w, &sampler);
        put_transaction(
            &mut w,
            &Transaction {
                store_domain: "store-a.com".into(),
                day: SimDate::from_day_index(141),
                order_number: 7_002,
                processor: "Global Payment Services".into(),
                bank: ("455623".into(), "Bank of Somewhere".into()),
                merchant_id: "M-77".into(),
            },
        );
        put_report(
            &mut w,
            &ParsedReport {
                period: "2013-12".into(),
                visits: 900,
                pages: 5_100,
                referrers: vec![("doorway.example.com".into(), 420)],
                direct_visits: 80,
                daily: vec![(SimDate::from_day_index(150), 31, 170)],
            },
        );
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let s2 = get_sampler(&mut r).expect("sampler");
        assert_eq!(s2.orders_created, 3);
        assert_eq!(s2.stores.len(), 2);
        assert_eq!(s2.stores["store-a.com"].campaign_key, "KEY");
        assert_eq!(s2.stores["store-a.com"].samples.len(), 1);
        let t2 = get_transaction(&mut r).expect("transaction");
        assert_eq!(t2.bank.1, "Bank of Somewhere");
        let rep2 = get_report(&mut r).expect("report");
        assert_eq!(rep2.referrers[0].1, 420);
        assert_eq!(rep2.daily[0].2, 170);
        assert_eq!(r.remaining(), 0);
    }
}

//! Dagger: the user-vs-crawler cloaking detector (§4.1.2).
//!
//! For each candidate URL the detector fetches the page twice — once
//! self-identified as Googlebot, once as a browser arriving from a Google
//! results page — follows HTTP redirect chains for both, and compares what
//! came back:
//!
//! 1. different final hosts → **redirect cloaking**;
//! 2. identical hosts but different bytes → render the user view; a JS
//!    navigation reveals **JS-redirect cloaking** (the paper's HtmlUnit
//!    extension);
//! 3. otherwise a semantic diff (title + word-set Dice coefficient) flags
//!    **content cloaking**.
//!
//! Iframe cloaking intentionally evades all three — same bytes to everyone
//! — which is why [`crate::vangogh`] exists.

use std::collections::HashSet;

use ss_obs::{charge, Registry, WorkKind};
use ss_types::Url;
use ss_web::http::{Fetcher, Request, Response, UserAgent};
use ss_web::js::render::render_with;
use ss_web::js::{JsCache, JsEngine};
use ss_web::Document;

/// What kind of cloaking was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CloakSignal {
    /// Server-side HTTP redirect for search users only.
    HttpRedirect,
    /// Client-side JS navigation for search users only.
    JsRedirect,
    /// Different content served, no redirect found.
    ContentDiff,
    /// Full-viewport iframe payload (set by VanGogh, not Dagger).
    Iframe,
}

/// The detector's verdict for one URL.
#[derive(Debug, Clone, PartialEq)]
pub struct DaggerVerdict {
    /// Detected cloaking, if any.
    pub cloaked: Option<CloakSignal>,
    /// Where a search user ultimately lands (host of the final page).
    pub landing: Option<Url>,
    /// The user-view response body (for downstream store detection).
    pub user_body: String,
    /// Cookies the landing page set.
    pub cookies: Vec<ss_web::http::Cookie>,
}

/// The Google referrer the detector presents (§4.1.2's "as a user" fetch
/// models a click-through from a results page).
pub fn google_referrer(term: &str) -> Url {
    Url::parse(&format!(
        "http://google.com/search?q={}",
        ss_types::url::encode_component(term)
    ))
    .expect("static referrer URL is valid")
}

/// Word-set Dice coefficient between two documents' visible text.
pub fn text_dice(a: &str, b: &str) -> f64 {
    let wa: HashSet<&str> = a.split_whitespace().collect();
    let wb: HashSet<&str> = b.split_whitespace().collect();
    if wa.is_empty() && wb.is_empty() {
        return 1.0;
    }
    let inter = wa.intersection(&wb).count();
    2.0 * inter as f64 / (wa.len() + wb.len()) as f64
}

/// Below this Dice similarity two views count as semantically different.
pub const DICE_THRESHOLD: f64 = 0.5;

/// Runs the detector against one URL with the default JS engine and the
/// process-wide compile cache.
pub fn check(web: &impl Fetcher, url: &Url, term: &str, max_hops: usize) -> DaggerVerdict {
    check_with(
        web,
        url,
        term,
        max_hops,
        JsEngine::default(),
        JsCache::global(),
        &Registry::new(),
    )
}

/// Runs the detector against one URL.
///
/// Takes the read plane only: detection fetches must never perturb the
/// world, so whatever effects the fetches report are dropped here. The
/// renderer (step 2's JS-redirect upgrade) uses `engine` and `cache`.
/// Phase costs (fetch/render/detect) record into `obs` — the caller's
/// per-work-item registry, so scoped totals merge deterministically.
#[allow(clippy::too_many_arguments)]
pub fn check_with(
    web: &impl Fetcher,
    url: &Url,
    term: &str,
    max_hops: usize,
    engine: JsEngine,
    cache: &JsCache,
    obs: &Registry,
) -> DaggerVerdict {
    let crawler_req = Request::crawler(url.clone());
    let user_req = Request {
        url: url.clone(),
        user_agent: UserAgent::Browser,
        referrer: Some(google_referrer(term)),
    };
    let (crawler_chain, crawler_resp, user_chain, user_resp) = {
        let _fetch = obs.cost_scope("crawl/fetch");
        charge(WorkKind::DocsFetched, 2);
        let (crawler_chain, crawler_resp, _) = web.fetch_following(&crawler_req, max_hops);
        let (user_chain, user_resp, _) = web.fetch_following(&user_req, max_hops);
        (crawler_chain, crawler_resp, user_chain, user_resp)
    };

    let crawler_host = crawler_chain.last().expect("chain non-empty").host.clone();
    let user_host = user_chain.last().expect("chain non-empty").host.clone();
    let landing_url = user_chain.last().expect("chain non-empty").clone();

    // 1. Redirect cloaking: the user ends up somewhere else entirely.
    if user_host != crawler_host {
        return DaggerVerdict {
            cloaked: Some(CloakSignal::HttpRedirect),
            landing: Some(landing_url),
            user_body: user_resp.body,
            cookies: user_resp.cookies,
        };
    }

    // 2. Same host; do the bytes differ at all?
    if user_resp.body != crawler_resp.body {
        // Render the user view to catch a JS redirect (the Dagger upgrade
        // described in §4.1.2 — only pages already flagged get rendered,
        // because rendering is expensive).
        let rendered = {
            let _render = obs.cost_scope("crawl/render");
            render_with(
                &user_resp.body,
                &url.to_string(),
                UserAgent::Browser,
                None,
                engine,
                cache,
            )
        };
        if let Some(target) = rendered.js_redirect {
            let (landing, follow) = {
                let _fetch = obs.cost_scope("crawl/fetch");
                charge(WorkKind::DocsFetched, 1);
                follow_js(web, &target, &user_req, max_hops)
            };
            return DaggerVerdict {
                cloaked: Some(CloakSignal::JsRedirect),
                landing,
                user_body: follow.map(|r| r.body).unwrap_or(user_resp.body),
                cookies: Vec::new(),
            };
        }
        let dice = {
            let _detect = obs.cost_scope("crawl/detect");
            text_dice(
                &Document::parse(&user_resp.body).text_content(),
                &Document::parse(&crawler_resp.body).text_content(),
            )
        };
        if dice < DICE_THRESHOLD {
            return DaggerVerdict {
                cloaked: Some(CloakSignal::ContentDiff),
                landing: Some(landing_url),
                user_body: user_resp.body,
                cookies: user_resp.cookies,
            };
        }
    }

    DaggerVerdict {
        cloaked: None,
        landing: None,
        user_body: user_resp.body,
        cookies: user_resp.cookies,
    }
}

/// Follows a JS navigation target, returning the final landing URL and
/// response when the target parses.
pub(crate) fn follow_js(
    web: &impl Fetcher,
    target: &str,
    prior: &Request,
    max_hops: usize,
) -> (Option<Url>, Option<Response>) {
    match Url::parse(target) {
        Ok(u) => {
            let req = Request {
                url: u,
                user_agent: UserAgent::Browser,
                referrer: Some(prior.url.clone()),
            };
            let (chain, resp, _) = web.fetch_following(&req, max_hops);
            (chain.last().cloned(), Some(resp))
        }
        Err(_) => (None, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_web::http::Response;

    /// A toy web exercising each cloaking style.
    struct CloakWeb;

    impl Fetcher for CloakWeb {
        fn fetch(&self, req: &Request) -> (Response, Vec<ss_web::SideEffect>) {
            let is_bot = req.user_agent == UserAgent::GoogleBot;
            let from_search = req
                .referrer
                .as_ref()
                .map(|r| r.host.as_str().contains("google"))
                .unwrap_or(false);
            let resp = match req.url.host.as_str() {
                "redirect-cloak.com" => {
                    if is_bot {
                        Response::ok("<p>seo words here</p>".into())
                    } else if from_search {
                        Response::redirect(Url::parse("http://store.com/").unwrap())
                    } else {
                        Response::ok("<p>original home page</p>".into())
                    }
                }
                "js-cloak.com" => {
                    if is_bot {
                        Response::ok("<p>seo words here</p>".into())
                    } else {
                        Response::ok(
                            "<p>seo words here</p><script>window.location = 'http://store.com/';</script>"
                                .into(),
                        )
                    }
                }
                "content-cloak.com" => {
                    if is_bot {
                        Response::ok("<p>alpha beta gamma delta epsilon zeta</p>".into())
                    } else {
                        Response::ok("<p>one two three four five six seven</p>".into())
                    }
                }
                "honest.com" => Response::ok("<p>same for everyone</p>".into()),
                "iframe-cloak.com" => Response::ok(
                    "<p>same bytes</p><script>var f = document.createElement('iframe');\
                     f.width = '100%'; f.height = '100%'; f.src = 'http://store.com/';\
                     document.body.appendChild(f);</script>"
                        .into(),
                ),
                "store.com" => Response::ok("<p>buy bags checkout</p>".into()),
                _ => Response::not_found(),
            };
            (resp, Vec::new())
        }
    }

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn detects_redirect_cloaking() {
        let v = check(
            &CloakWeb,
            &url("http://redirect-cloak.com/"),
            "cheap bags",
            5,
        );
        assert_eq!(v.cloaked, Some(CloakSignal::HttpRedirect));
        assert_eq!(v.landing.unwrap().host.as_str(), "store.com");
        assert!(v.user_body.contains("checkout"));
    }

    #[test]
    fn detects_js_redirect_cloaking() {
        let v = check(&CloakWeb, &url("http://js-cloak.com/"), "cheap bags", 5);
        assert_eq!(v.cloaked, Some(CloakSignal::JsRedirect));
        assert_eq!(v.landing.unwrap().host.as_str(), "store.com");
    }

    #[test]
    fn detects_content_cloaking() {
        let v = check(
            &CloakWeb,
            &url("http://content-cloak.com/"),
            "cheap bags",
            5,
        );
        assert_eq!(v.cloaked, Some(CloakSignal::ContentDiff));
    }

    #[test]
    fn honest_pages_pass() {
        let v = check(&CloakWeb, &url("http://honest.com/"), "cheap bags", 5);
        assert_eq!(v.cloaked, None);
    }

    #[test]
    fn iframe_cloaking_evades_dagger_by_design() {
        // Same bytes to everyone: exactly the blind spot §3.1.1 describes.
        let v = check(&CloakWeb, &url("http://iframe-cloak.com/"), "cheap bags", 5);
        assert_eq!(v.cloaked, None, "Dagger must NOT catch iframe cloaking");
    }

    #[test]
    fn dice_behaves() {
        assert!((text_dice("a b c", "a b c") - 1.0).abs() < 1e-12);
        assert_eq!(text_dice("a b", "c d"), 0.0);
        assert!((text_dice("", "") - 1.0).abs() < 1e-12);
        let half = text_dice("a b c d", "c d e f");
        assert!((half - 0.5).abs() < 1e-12);
    }
}

//! Storefront detection and seizure-notice parsing.
//!
//! §4.1.3: a landing site is treated as a counterfeit store when either of
//! two heuristics fires — (1) cookies characteristic of the counterfeit
//! ecosystem (payment processors, e-commerce platforms, web analytics), or
//! (2) the substrings "cart" / "checkout" on the landing page. These are
//! applied *only to landing sites reached through cloaked search results*,
//! which is what keeps legitimate retailers out.
//!
//! §5.3: seized domains serve notice pages naming the brand-protection
//! firm and the court case, with the full list of co-seized domains in the
//! embedded court document.

use ss_web::http::Cookie;
use ss_web::Document;

/// Cookie names the detector associates with counterfeit storefronts:
/// payment processors (§4.1.3 names Realypay, Mallpayment), e-commerce
/// platforms (Zen Cart's `zenid`, Magento's `frontend`), and analytics
/// trackers (Ajstat, CNZZ, 51.la, statcounter).
pub const STORE_COOKIE_NAMES: &[&str] = &[
    "realypay_tk",
    "mallpayment_tk",
    "globalbill_tk",
    "zenid",
    "frontend",
    "cnzz_a",
    "la51_vid",
    "ajstat_uid",
    "sc_is_visitor",
];

/// Result of store detection on a landing page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreVerdict {
    /// Heuristic 1: a known ecosystem cookie was set.
    pub cookie_hit: bool,
    /// Heuristic 2: "cart" or "checkout" appears on the page.
    pub cart_hit: bool,
}

impl StoreVerdict {
    /// "If either of the heuristics succeed, we treat the landing site as
    /// a counterfeit luxury store" (§4.1.3).
    pub fn is_store(self) -> bool {
        self.cookie_hit || self.cart_hit
    }
}

/// Applies both heuristics to a landing page.
pub fn detect_store(body: &str, cookies: &[Cookie]) -> StoreVerdict {
    let cookie_hit = cookies
        .iter()
        .any(|c| STORE_COOKIE_NAMES.contains(&c.name.as_str()));
    let lower = body.to_ascii_lowercase();
    let cart_hit = lower.contains("cart") || lower.contains("checkout");
    StoreVerdict {
        cookie_hit,
        cart_hit,
    }
}

/// A parsed seizure notice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeizureNotice {
    /// The brand-protection firm named on the page.
    pub firm: String,
    /// The court docket id.
    pub case_id: String,
    /// The plaintiff brand.
    pub brand: String,
    /// Domains listed in the embedded court document.
    pub seized_domains: Vec<String>,
}

/// Detects and parses a seizure-notice page; `None` when the page is not a
/// notice.
pub fn parse_seizure_notice(body: &str) -> Option<SeizureNotice> {
    if !body.contains("has been seized") {
        return None;
    }
    let doc = Document::parse(body);
    let text_of = |id: &str| doc.by_id(id).map(|e| e.text_content().trim().to_owned());
    let seized_domains = doc
        .find_all("li")
        .into_iter()
        .filter(|li| li.attr("class") == Some("seized-domain"))
        .map(|li| li.text_content().trim().to_owned())
        .collect();
    Some(SeizureNotice {
        firm: text_of("firm").unwrap_or_default(),
        case_id: text_of("case").unwrap_or_default(),
        brand: text_of("plaintiff").unwrap_or_default(),
        seized_domains,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cookie(name: &str) -> Cookie {
        Cookie {
            name: name.into(),
            value: "v".into(),
        }
    }

    #[test]
    fn cookie_heuristic_fires_on_ecosystem_cookies() {
        let v = detect_store("<p>nothing here</p>", &[cookie("zenid")]);
        assert!(v.cookie_hit && !v.cart_hit && v.is_store());
        let v = detect_store("<p>nothing</p>", &[cookie("cnzz_a")]);
        assert!(v.is_store());
        let v = detect_store("<p>nothing</p>", &[cookie("realypay_tk")]);
        assert!(v.is_store());
    }

    #[test]
    fn cart_heuristic_fires_on_substrings() {
        let v = detect_store("<a href=\"/cart\">View Cart</a>", &[]);
        assert!(v.cart_hit && v.is_store());
        let v = detect_store("<a>Proceed to CHECKOUT</a>", &[]);
        assert!(v.is_store());
    }

    #[test]
    fn neither_heuristic_fires_on_plain_pages() {
        let v = detect_store("<p>a blog about travel</p>", &[cookie("session")]);
        assert!(!v.is_store());
    }

    #[test]
    fn notice_parsing_roundtrips_generator_output() {
        let seized = vec![
            "cocoviphandbags.com".to_owned(),
            "other-store.net".to_owned(),
        ];
        let html = ss_web::pagegen::notice::page(&ss_web::pagegen::notice::NoticeCtx {
            domain: "cocoviphandbags.com",
            firm: "Greer, Burns & Crain",
            case_id: "14-cv-02317",
            brand: "Chanel",
            seized_domains: &seized,
        });
        let n = parse_seizure_notice(&html).unwrap();
        assert_eq!(n.firm, "Greer, Burns & Crain");
        assert_eq!(n.case_id, "14-cv-02317");
        assert_eq!(n.brand, "Chanel");
        assert_eq!(n.seized_domains, seized);
    }

    #[test]
    fn ordinary_pages_are_not_notices() {
        assert_eq!(parse_seizure_notice("<p>shop our catalog</p>"), None);
    }
}

//! Term selection: the two methodologies of §4.1.1.
//!
//! * **Doorway extraction** (used for the 13 KEY verticals): bootstrap
//!   queries find cloaked doorways; `site:` queries over those doorways
//!   list their indexed pages; keywords are pulled from the URLs
//!   (`?key=cheap+beats+by+dre`); 100 unique terms are sampled.
//! * **Suggest expansion** (used for Ed Hardy, Louis Vuitton, Uggs):
//!   recursive completion-service expansion of the brand, plus
//!   adjective+brand compositions; 100 unique strings sampled.
//!
//! Both run *before* the crawl window, as in the study, and both speak
//! only to public interfaces: SERPs, `site:` queries, suggest, and fetch.

use rand::seq::SliceRandom;
use ss_types::rng::sub_rng;
use ss_types::{SimDate, Url};

use ss_eco::World;

/// How a vertical's monitored terms were chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermMethodology {
    /// Keyword extraction from discovered doorway URLs.
    DoorwayExtraction,
    /// Recursive suggest expansion.
    SuggestExpansion,
}

/// Monitored terms for one vertical.
#[derive(Debug, Clone)]
pub struct MonitoredVertical {
    /// The vertical's display name.
    pub name: String,
    /// How terms were selected.
    pub methodology: TermMethodology,
    /// The monitored term strings (≤ the configured count).
    pub terms: Vec<String>,
}

/// Bootstrap seed queries for a vertical: adjective+brand compositions.
fn bootstrap_queries(brands: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    for b in brands {
        for adj in ss_types::market::TERM_ADJECTIVES {
            out.push(format!("{adj} {}", b.to_ascii_lowercase()));
        }
    }
    out
}

/// Methodology A: discover doorways via bootstrap queries + Dagger, then
/// extract keywords from their `site:`-listed URLs.
pub fn doorway_extraction_terms(
    world: &World,
    vertical_index: usize,
    probe_day: SimDate,
    want: usize,
    seed: u64,
) -> Vec<String> {
    let spec = world.verticals[vertical_index].spec;
    let mut rng = sub_rng(seed, &format!("termsel/doorway/{}", spec.name));
    let mut pool: Vec<String> = Vec::new();

    for q in bootstrap_queries(spec.brands) {
        let Some(serp) = query_by_text(world, &q, probe_day, 40) else {
            continue;
        };
        for (_, url, _) in serp {
            // Probe with Dagger; only confirmed-cloaked doorways are mined.
            let verdict = crate::dagger::check(world, &url, &q, 5);
            if verdict.cloaked.is_none() {
                continue;
            }
            // `site:` query over the doorway, keyword out of each URL.
            if let Some(domain_id) = world.domains.lookup(&url.host) {
                for doc in world.engine.site_query(domain_id) {
                    if let Some(term) = doc.url.query_param("key") {
                        if !pool.contains(&term) {
                            pool.push(term);
                        }
                    }
                }
            }
        }
        if pool.len() > want * 4 {
            break; // plenty of candidates already
        }
    }
    pool.shuffle(&mut rng);
    pool.truncate(want);
    pool.sort();
    pool
}

/// Methodology B: recursive suggest expansion, keeping only strings that
/// actually return results (the study's operators sanity-checked queries
/// by hand), then sampling `want`.
pub fn suggest_expansion_terms(
    world: &World,
    vertical_index: usize,
    probe_day: SimDate,
    want: usize,
    seed: u64,
) -> Vec<String> {
    let spec = world.verticals[vertical_index].spec;
    let mut rng = sub_rng(seed, &format!("termsel/suggest/{}", spec.name));
    let mut candidates: Vec<String> = Vec::new();
    for brand in spec.brands {
        for s in world.suggest.expand_recursive(brand, 2) {
            if !candidates.contains(&s) {
                candidates.push(s);
            }
        }
    }
    candidates.shuffle(&mut rng);
    let mut out = Vec::new();
    for c in candidates {
        if out.len() >= want {
            break;
        }
        if query_by_text(world, &c, probe_day, 10)
            .map(|r| !r.is_empty())
            .unwrap_or(false)
        {
            out.push(c);
        }
    }
    // If live-result filtering ran dry, accept unverified strings.
    if out.len() < want {
        for brand in spec.brands {
            for s in world.suggest.expand_recursive(brand, 3) {
                if out.len() >= want {
                    break;
                }
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
    }
    out.truncate(want);
    out.sort();
    out
}

/// Selects monitored terms for every vertical in the world, using doorway
/// extraction for KEY-targeted verticals and suggest expansion otherwise —
/// the exact split of §4.1.1. Returns one [`MonitoredVertical`] per world
/// vertical, in order. `sample_bootstrap_verticals` caps how many verticals
/// run the (expensive) doorway probe before falling back to suggest.
pub fn select_all(
    world: &World,
    probe_day: SimDate,
    want: usize,
    seed: u64,
) -> Vec<MonitoredVertical> {
    let n = world.verticals.len();
    let mut out = Vec::with_capacity(n);
    for vi in 0..n {
        let spec = world.verticals[vi].spec;
        let (methodology, mut terms) = if spec.key_targeted {
            (
                TermMethodology::DoorwayExtraction,
                doorway_extraction_terms(world, vi, probe_day, want, seed),
            )
        } else {
            (
                TermMethodology::SuggestExpansion,
                suggest_expansion_terms(world, vi, probe_day, want, seed),
            )
        };
        // A thin doorway harvest falls back to suggest to fill the set.
        if terms.len() < want {
            let extra = suggest_expansion_terms(world, vi, probe_day, want - terms.len(), seed + 1);
            for e in extra {
                if !terms.contains(&e) {
                    terms.push(e);
                }
            }
            terms.truncate(want);
        }
        out.push(MonitoredVertical {
            name: spec.name.to_owned(),
            methodology,
            terms,
        });
    }
    out
}

/// Queries the engine by term *text* (the only way a crawler can), mapping
/// to the engine's term table. Returns `(rank, url, labeled)` triples.
///
/// Reads go through the published [`ss_search::EngineEpoch`] — the same
/// immutable snapshot the traffic planner queried when the day was
/// committed, so the crawler's `(term, day)` keys are usually warm cache
/// hits. URLs are resolved here because fetching them is exactly this
/// boundary's job; the epoch itself hands out ids only.
pub fn query_by_text(
    world: &World,
    text: &str,
    day: SimDate,
    k: usize,
) -> Option<Vec<(u32, Url, bool)>> {
    let term = world
        .engine
        .terms()
        .iter()
        .position(|t| t.text == text)
        .map(ss_types::TermId::from_index)?;
    let ranked = world.engine.epoch().ranked(term, day, k);
    Some(
        ranked
            .results()
            .iter()
            .map(|h| (h.rank, world.engine.doc(h.doc).url.clone(), h.hacked_label))
            .collect(),
    )
}

/// Overlap between two term sets (the §4.1.1 bias check counted 4 / 1000
/// overlapping terms between the two methodologies).
pub fn term_overlap(a: &[String], b: &[String]) -> usize {
    a.iter().filter(|t| b.contains(t)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_eco::ScenarioConfig;

    fn probe_world() -> World {
        let mut w = World::build(ScenarioConfig::tiny(17)).unwrap();
        // Advance into the crawl window so campaigns are ranking.
        w.run_until(SimDate::from_day_index(ss_types::CRAWL_START_DAY + 4));
        w
    }

    #[test]
    fn doorway_extraction_finds_kit_terms() {
        let w = probe_world();
        let day = SimDate::from_day_index(ss_types::CRAWL_START_DAY + 4);
        let terms = doorway_extraction_terms(&w, 0, day, 6, 1);
        assert!(!terms.is_empty(), "no terms extracted");
        // Extracted terms must come from the engine's universe (they were
        // pulled out of indexed URLs).
        for t in &terms {
            assert!(
                w.engine.terms().iter().any(|r| r.text == *t),
                "extracted term {t:?} is not a real indexed term"
            );
        }
    }

    #[test]
    fn suggest_expansion_returns_live_terms() {
        let w = probe_world();
        let day = SimDate::from_day_index(ss_types::CRAWL_START_DAY + 4);
        let terms = suggest_expansion_terms(&w, 1, day, 6, 1);
        assert_eq!(terms.len(), 6);
    }

    #[test]
    fn select_all_uses_the_papers_split() {
        let w = probe_world();
        let day = SimDate::from_day_index(ss_types::CRAWL_START_DAY + 4);
        let selected = select_all(&w, day, 5, 9);
        assert_eq!(selected.len(), w.verticals.len());
        for (vi, mv) in selected.iter().enumerate() {
            let expected = if w.verticals[vi].spec.key_targeted {
                TermMethodology::DoorwayExtraction
            } else {
                TermMethodology::SuggestExpansion
            };
            assert_eq!(mv.methodology, expected, "{}", mv.name);
            assert!(!mv.terms.is_empty());
        }
    }

    #[test]
    fn overlap_counts_shared_strings() {
        let a = vec!["x".to_owned(), "y".to_owned()];
        let b = vec!["y".to_owned(), "z".to_owned()];
        assert_eq!(term_overlap(&a, &b), 1);
    }
}

//! VanGogh: the rendering crawler that catches iframe cloaking (§4.1.2).
//!
//! VanGogh fetches the page as a search-referred browser, runs every
//! script through the JS interpreter, and inspects the *rendered* document
//! for iframes "attempting to occupy the entire page visually": width and
//! height both either `100%` or larger than 800 pixels. Because rendering
//! is expensive, the orchestrator samples at most three pages per doorway
//! domain — the same workload trim the paper applies.

use ss_obs::{charge, Registry, WorkKind};
use ss_types::Url;
use ss_web::http::{Fetcher, Request, UserAgent};
use ss_web::js::render::render_with;
use ss_web::js::{JsCache, JsEngine};

use crate::dagger::{google_referrer, CloakSignal, DaggerVerdict};

/// The geometric rule from §4.1.2.
pub fn is_fullpage(width: &str, height: &str) -> bool {
    fn big(dim: &str) -> bool {
        if dim.trim() == "100%" {
            return true;
        }
        dim.trim()
            .trim_end_matches("px")
            .parse::<f64>()
            .map(|v| v > 800.0)
            .unwrap_or(false)
    }
    big(width) && big(height)
}

/// Renders `url` as a search-referred user and reports iframe cloaking.
/// Pure read-plane work: any reported fetch effects are dropped. Uses the
/// default JS engine and the process-wide compile cache.
pub fn check(web: &impl Fetcher, url: &Url, term: &str, max_hops: usize) -> DaggerVerdict {
    check_with(
        web,
        url,
        term,
        max_hops,
        JsEngine::default(),
        JsCache::global(),
        &Registry::new(),
    )
}

/// [`check`] with an explicit JS engine and compile cache — the crawler's
/// entry point (per-run cache, configurable engine). Phase costs record
/// into `obs`, the caller's per-work-item registry.
#[allow(clippy::too_many_arguments)]
pub fn check_with(
    web: &impl Fetcher,
    url: &Url,
    term: &str,
    max_hops: usize,
    engine: JsEngine,
    cache: &JsCache,
    obs: &Registry,
) -> DaggerVerdict {
    let req = Request {
        url: url.clone(),
        user_agent: UserAgent::Browser,
        referrer: Some(google_referrer(term)),
    };
    let (chain, resp) = {
        let _fetch = obs.cost_scope("crawl/fetch");
        charge(WorkKind::DocsFetched, 1);
        let (chain, resp, _) = web.fetch_following(&req, max_hops);
        (chain, resp)
    };
    let final_url = chain.last().expect("chain non-empty").clone();
    let rendered = {
        let _render = obs.cost_scope("crawl/render");
        render_with(
            &resp.body,
            &final_url.to_string(),
            UserAgent::Browser,
            Some(google_referrer(term).to_string().as_str()),
            engine,
            cache,
        )
    };

    // A JS redirect can also surface here when Dagger was skipped.
    if let Some(target) = rendered.js_redirect.clone() {
        let (landing, follow) = {
            let _fetch = obs.cost_scope("crawl/fetch");
            charge(WorkKind::DocsFetched, 1);
            crate::dagger::follow_js(web, &target, &req, max_hops)
        };
        return DaggerVerdict {
            cloaked: Some(CloakSignal::JsRedirect),
            landing,
            user_body: follow.map(|r| r.body).unwrap_or(resp.body),
            cookies: Vec::new(),
        };
    }

    let iframe_landing = {
        let _detect = obs.cost_scope("crawl/detect");
        rendered
            .iframes()
            .into_iter()
            .find(|(w, h, _)| is_fullpage(w, h))
            .map(|(_, _, src)| Url::parse(&src).ok())
    };
    if let Some(landing) = iframe_landing {
        return DaggerVerdict {
            cloaked: Some(CloakSignal::Iframe),
            landing,
            user_body: resp.body,
            cookies: resp.cookies,
        };
    }
    DaggerVerdict {
        cloaked: None,
        landing: None,
        user_body: resp.body,
        cookies: resp.cookies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_web::http::Response;

    struct IframeWeb;
    impl Fetcher for IframeWeb {
        fn fetch(&self, req: &Request) -> (Response, Vec<ss_web::SideEffect>) {
            let resp = match req.url.host.as_str() {
                // Obfuscated dynamic iframe — only a renderer sees it.
                "dyn.com" => Response::ok(
                    "<p>door</p><script>var p = ['http://sto', 're.com/'];\
                     var f = document.createElement('ifr' + 'ame');\
                     f.setAttribute('width', '100%'); f.setAttribute('height', '100%');\
                     f.src = p.join(''); document.body.appendChild(f);</script>"
                        .into(),
                ),
                // Static big-pixel iframe.
                "static.com" => Response::ok(
                    r#"<iframe src="http://store.com/" width="1280" height="900"></iframe>"#.into(),
                ),
                // Benign ad-sized iframe: must not trip the rule.
                "ads.com" => Response::ok(
                    r#"<p>article text</p><iframe src="http://adnet.com/banner" width="728" height="90"></iframe>"#
                        .into(),
                ),
                _ => Response::ok("<p>plain</p>".into()),
            };
            (resp, Vec::new())
        }
    }

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn catches_dynamic_obfuscated_iframe() {
        let v = check(&IframeWeb, &url("http://dyn.com/p"), "cheap bags", 5);
        assert_eq!(v.cloaked, Some(CloakSignal::Iframe));
        assert_eq!(v.landing.unwrap().host.as_str(), "store.com");
    }

    #[test]
    fn catches_static_fullpage_iframe() {
        let v = check(&IframeWeb, &url("http://static.com/"), "cheap bags", 5);
        assert_eq!(v.cloaked, Some(CloakSignal::Iframe));
    }

    #[test]
    fn ignores_banner_iframes() {
        let v = check(&IframeWeb, &url("http://ads.com/"), "cheap bags", 5);
        assert_eq!(v.cloaked, None);
    }

    #[test]
    fn geometry_rule_matches_the_paper() {
        assert!(is_fullpage("100%", "100%"));
        assert!(is_fullpage("900", "801"));
        assert!(is_fullpage("100%", "1024"));
        assert!(!is_fullpage("100%", "90"));
        assert!(!is_fullpage("728", "90"));
        assert!(!is_fullpage("800", "800"), "strictly larger than 800");
        assert!(!is_fullpage("", ""));
    }
}

//! The crawl database: compact, interned, columnar storage for a
//! paper-scale crawl (millions of PSR observations).
//!
//! Crawler-side identifiers are deliberately independent of the
//! simulator's ids — the apparatus only ever sees strings on the wire,
//! exactly like the original study.
//!
//! # Columnar layout
//!
//! PSR observations live in [`PsrStore`], a struct-of-arrays store: one
//! typed column per field (day, vertical, term, rank, domain, root-ness,
//! label, landing). Analyses that touch one or two fields per row scan
//! only those columns, and a borrowed [`ColumnView`] hands the whole set
//! to aggregation code without copying. Because the crawler replays event
//! logs day by day and vertical by vertical, rows arrive sorted by
//! `(day, vertical)`; the store records the start of each such run, which
//! turns day-window and per-vertical queries into range lookups instead
//! of full scans. Should an out-of-order append ever happen (hand-built
//! stores in tests), the index is dropped and every query transparently
//! falls back to a filtered scan — results never change, only speed.

use std::collections::HashMap;
use std::ops::Range;

use ss_types::snapshot::{fnv1a64, Reader, Snapshot, SnapshotError, Writer};
use ss_types::SimDate;

use crate::dagger::CloakSignal;
use crate::stores::SeizureNotice;

// The intern table moved to `ss_types` so the simulator's component tables
// can share it; the crawl-side path stays stable.
pub use ss_types::Interner;

/// One observed poisoned search result (a cloaked result in a monitored
/// SERP on one day).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PsrRecord {
    /// Observation day.
    pub day: SimDate,
    /// Vertical index (crawler-side, ordered as monitored).
    pub vertical: u16,
    /// Interned term text.
    pub term: u32,
    /// 1-based rank in the SERP.
    pub rank: u8,
    /// Interned doorway domain name.
    pub domain: u32,
    /// Whether the result URL was the domain root (label policy analysis).
    pub is_root: bool,
    /// Whether the result carried the "hacked" label.
    pub labeled: bool,
    /// Interned landing (store) domain at observation time, if resolved.
    pub landing: Option<u32>,
}

/// Landing-column sentinel for "no landing resolved". Interner ids are
/// dense from zero, so the maximum is unreachable as a real id.
const NO_LANDING: u32 = u32::MAX;

/// Start of one maximal `(day, vertical)` run of rows.
#[derive(Debug, Clone, Copy)]
struct Run {
    day: SimDate,
    vertical: u16,
    start: u32,
}

/// Columnar (struct-of-arrays) PSR storage with `(day, vertical)` range
/// indices. Logically a `Vec<PsrRecord>` in append order — `push`, `len`,
/// `get`, and `iter` behave exactly like the row-store it replaced, and
/// equality compares only row content — but scans read per-field column
/// slices via [`PsrStore::columns`].
#[derive(Debug, Clone)]
pub struct PsrStore {
    day: Vec<SimDate>,
    vertical: Vec<u16>,
    term: Vec<u32>,
    rank: Vec<u8>,
    domain: Vec<u32>,
    is_root: Vec<bool>,
    labeled: Vec<bool>,
    landing: Vec<u32>,
    /// Run starts, valid while rows arrive `(day, vertical)`-sorted (the
    /// crawler's replay order); dropped on the first out-of-order append,
    /// after which queries fall back to filtered scans.
    runs: Vec<Run>,
    ordered: bool,
}

impl Default for PsrStore {
    fn default() -> Self {
        PsrStore {
            day: Vec::new(),
            vertical: Vec::new(),
            term: Vec::new(),
            rank: Vec::new(),
            domain: Vec::new(),
            is_root: Vec::new(),
            labeled: Vec::new(),
            landing: Vec::new(),
            runs: Vec::new(),
            ordered: true,
        }
    }
}

impl PartialEq for PsrStore {
    /// Row-content equality; the index is derived state and two stores
    /// holding the same rows are equal however they were built.
    fn eq(&self, other: &Self) -> bool {
        self.day == other.day
            && self.vertical == other.vertical
            && self.term == other.term
            && self.rank == other.rank
            && self.domain == other.domain
            && self.is_root == other.is_root
            && self.labeled == other.labeled
            && self.landing == other.landing
    }
}

impl Eq for PsrStore {}

impl PsrStore {
    /// Appends a record, maintaining the run index while appends stay
    /// `(day, vertical)`-sorted.
    pub fn push(&mut self, r: PsrRecord) {
        debug_assert_ne!(
            r.landing,
            Some(NO_LANDING),
            "landing id collides with sentinel"
        );
        let row = self.day.len() as u32;
        if self.ordered {
            match self.runs.last() {
                Some(last) if (r.day, r.vertical) < (last.day, last.vertical) => {
                    self.ordered = false;
                    self.runs.clear();
                }
                Some(last) if (r.day, r.vertical) == (last.day, last.vertical) => {}
                _ => self.runs.push(Run {
                    day: r.day,
                    vertical: r.vertical,
                    start: row,
                }),
            }
        }
        self.day.push(r.day);
        self.vertical.push(r.vertical);
        self.term.push(r.term);
        self.rank.push(r.rank);
        self.domain.push(r.domain);
        self.is_root.push(r.is_root);
        self.labeled.push(r.labeled);
        self.landing.push(r.landing.unwrap_or(NO_LANDING));
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.day.len()
    }

    /// Whether the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.day.is_empty()
    }

    /// The row at `row`, materialized.
    pub fn get(&self, row: usize) -> PsrRecord {
        self.columns().record(row)
    }

    /// Iterates rows in append order.
    pub fn iter(&self) -> PsrIter<'_> {
        PsrIter {
            cols: self.columns(),
            next: 0,
        }
    }

    /// Borrowed views of every column.
    pub fn columns(&self) -> ColumnView<'_> {
        ColumnView {
            day: &self.day,
            vertical: &self.vertical,
            term: &self.term,
            rank: &self.rank,
            domain: &self.domain,
            is_root: &self.is_root,
            labeled: &self.labeled,
            landing: &self.landing,
        }
    }

    /// End row (exclusive) of run `i`.
    fn run_end(&self, i: usize) -> usize {
        self.runs
            .get(i + 1)
            .map(|r| r.start as usize)
            .unwrap_or(self.len())
    }

    /// Contiguous row range holding `day` (index path; empty when absent).
    fn day_span(&self, day: SimDate) -> Range<usize> {
        let lo_run = self.runs.partition_point(|r| r.day < day);
        let hi_run = self.runs.partition_point(|r| r.day <= day);
        let at = |run: usize| {
            self.runs
                .get(run)
                .map(|r| r.start as usize)
                .unwrap_or(self.len())
        };
        at(lo_run)..at(hi_run)
    }

    /// Row indices observed on `day` — a binary-searched range when the
    /// store is ordered, a filtered scan otherwise.
    pub fn day_rows(&self, day: SimDate) -> impl Iterator<Item = usize> + '_ {
        let span = if self.ordered {
            self.day_span(day)
        } else {
            0..self.len()
        };
        let days = &self.day;
        span.filter(move |&i| days[i] == day)
    }

    /// Row indices of `vertical` — the per-day run ranges when the store
    /// is ordered, a filtered scan otherwise.
    pub fn vertical_rows(&self, vertical: u16) -> impl Iterator<Item = usize> + '_ {
        let spans: Vec<Range<usize>> = if self.ordered {
            (0..self.runs.len())
                .filter(|&i| self.runs[i].vertical == vertical)
                .map(|i| self.runs[i].start as usize..self.run_end(i))
                .collect()
        } else {
            std::iter::once(0..self.len()).collect()
        };
        let verts = &self.vertical;
        spans
            .into_iter()
            .flatten()
            .filter(move |&i| verts[i] == vertical)
    }

    /// Splits the rows into at most `max_shards` contiguous chunks that
    /// never split a day, for parallel scans whose per-day accumulators
    /// must each be filled by exactly one worker. Deterministic for a
    /// given `(rows, max_shards)`; a single full-range chunk when the
    /// store is unordered or `max_shards <= 1`.
    pub fn day_shards(&self, max_shards: usize) -> Vec<Range<usize>> {
        let len = self.len();
        if len == 0 {
            return Vec::new();
        }
        if max_shards <= 1 || !self.ordered {
            return std::iter::once(0..len).collect();
        }
        let mut day_starts: Vec<usize> = Vec::new();
        let mut prev_day = None;
        for r in &self.runs {
            if prev_day != Some(r.day) {
                day_starts.push(r.start as usize);
                prev_day = Some(r.day);
            }
        }
        day_starts.push(len);
        let target = len.div_ceil(max_shards);
        let mut shards = Vec::new();
        let mut begin = 0usize;
        for w in day_starts.windows(2) {
            if w[1] - begin >= target && shards.len() + 1 < max_shards {
                shards.push(begin..w[1]);
                begin = w[1];
            }
        }
        if begin < len {
            shards.push(begin..len);
        }
        shards
    }
}

impl PsrStore {
    /// Order-sensitive fingerprint of the full row set — folded into the
    /// study-level `run_fingerprint` so checkpoint/resume equivalence
    /// covers the measurement plane, not just the `World`.
    pub fn state_fingerprint(&self) -> u64 {
        fnv1a64(&self.encode())
    }
}

impl Snapshot for PsrStore {
    const TAG: &'static str = "psr-store";
    const VERSION: u16 = 1;

    /// Rows in append order. Decode replays them through [`PsrStore::push`],
    /// which rebuilds the `(day, vertical)` run index — including the
    /// dropped-index state of a store that ever saw an out-of-order append —
    /// rather than trusting serialized derived state.
    fn write_body(&self, w: &mut Writer) {
        w.put_len(self.len());
        for i in 0..self.len() {
            w.put_date(self.day[i]);
            w.put_u16(self.vertical[i]);
            w.put_u32(self.term[i]);
            w.put_u8(self.rank[i]);
            w.put_u32(self.domain[i]);
            w.put_bool(self.is_root[i]);
            w.put_bool(self.labeled[i]);
            w.put_u32(self.landing[i]);
        }
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let mut store = PsrStore::default();
        for _ in 0..r.get_len()? {
            let day = r.get_date()?;
            let vertical = r.get_u16()?;
            let term = r.get_u32()?;
            let rank = r.get_u8()?;
            let domain = r.get_u32()?;
            let is_root = r.get_bool()?;
            let labeled = r.get_bool()?;
            let landing = r.get_u32()?;
            store.push(PsrRecord {
                day,
                vertical,
                term,
                rank,
                domain,
                is_root,
                labeled,
                landing: (landing != NO_LANDING).then_some(landing),
            });
        }
        Ok(store)
    }
}

impl<'a> IntoIterator for &'a PsrStore {
    type Item = PsrRecord;
    type IntoIter = PsrIter<'a>;
    fn into_iter(self) -> PsrIter<'a> {
        self.iter()
    }
}

/// Row iterator over a [`PsrStore`], yielding materialized records.
#[derive(Debug, Clone)]
pub struct PsrIter<'a> {
    cols: ColumnView<'a>,
    next: usize,
}

impl Iterator for PsrIter<'_> {
    type Item = PsrRecord;
    fn next(&mut self) -> Option<PsrRecord> {
        if self.next >= self.cols.len() {
            return None;
        }
        let r = self.cols.record(self.next);
        self.next += 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.cols.len() - self.next;
        (n, Some(n))
    }
}

impl ExactSizeIterator for PsrIter<'_> {}

/// Borrowed column slices of a [`PsrStore`] — what aggregation code scans.
#[derive(Debug, Clone, Copy)]
pub struct ColumnView<'a> {
    /// Observation day per row.
    pub day: &'a [SimDate],
    /// Vertical index per row.
    pub vertical: &'a [u16],
    /// Interned term id per row.
    pub term: &'a [u32],
    /// SERP rank per row.
    pub rank: &'a [u8],
    /// Interned doorway domain id per row.
    pub domain: &'a [u32],
    /// Root-URL flag per row.
    pub is_root: &'a [bool],
    /// Hacked-label flag per row.
    pub labeled: &'a [bool],
    landing: &'a [u32],
}

impl ColumnView<'_> {
    /// Number of rows in view.
    pub fn len(&self) -> usize {
        self.day.len()
    }

    /// Whether the view covers no rows.
    pub fn is_empty(&self) -> bool {
        self.day.is_empty()
    }

    /// Landing (store) domain id of a row, if one was resolved.
    pub fn landing(&self, row: usize) -> Option<u32> {
        let l = self.landing[row];
        (l != NO_LANDING).then_some(l)
    }

    /// Materializes one row.
    pub fn record(&self, row: usize) -> PsrRecord {
        PsrRecord {
            day: self.day[row],
            vertical: self.vertical[row],
            term: self.term[row],
            rank: self.rank[row],
            domain: self.domain[row],
            is_root: self.is_root[row],
            labeled: self.labeled[row],
            landing: self.landing(row),
        }
    }
}

/// Per-doorway-domain knowledge accumulated by the crawler.
#[derive(Debug, Clone)]
pub struct DomainInfo {
    /// First day the domain appeared in any monitored SERP.
    pub first_seen: SimDate,
    /// Last day it appeared.
    pub last_seen: SimDate,
    /// Cloaking verdict (None = checked and clean).
    pub cloak: Option<CloakSignal>,
    /// Landing history: `(day, interned store domain)` transitions.
    pub landings: Vec<(SimDate, u32)>,
    /// Days on which this domain's results carried the hacked label
    /// (first and last observation).
    pub label_seen: Option<(SimDate, SimDate)>,
    /// Last day the result was seen *without* a label before the first
    /// labeled sighting (for censored delay estimation).
    pub last_unlabeled_before: Option<SimDate>,
    /// How many pages VanGogh has rendered for this domain (≤ sample cap).
    pub rendered_pages: u8,
    /// Day the landing was last re-verified.
    pub last_verified: SimDate,
}

/// Per-store-domain knowledge.
#[derive(Debug, Clone)]
pub struct StoreInfo {
    /// First day this store domain was reached through a PSR.
    pub first_seen: SimDate,
    /// Last day it was reached.
    pub last_seen: SimDate,
    /// Store-detection verdict.
    pub is_store: bool,
    /// Captured landing-page HTML (classifier input).
    pub html: String,
    /// Cookie names observed.
    pub cookie_names: Vec<String>,
    /// Seizure notice observed at this domain, with first observation day.
    pub seizure: Option<(SimDate, SeizureNotice)>,
    /// Last day the store was seen alive (non-notice) before the first
    /// notice observation.
    pub last_alive_before_seizure: Option<SimDate>,
}

/// The crawl database.
#[derive(Debug, Default)]
pub struct CrawlDb {
    /// Interned domain names (doorways and stores share the table).
    pub domains: Interner,
    /// Interned term texts.
    pub terms: Interner,
    /// All PSR observations, columnar, in crawl order.
    pub psrs: PsrStore,
    /// Doorway knowledge, keyed by interned domain id.
    pub doorway_info: HashMap<u32, DomainInfo>,
    /// Store knowledge, keyed by interned domain id.
    pub store_info: HashMap<u32, StoreInfo>,
    /// Total results crawled (PSR or not), for rate denominators:
    /// `(day, vertical, top10_seen, top10_poisoned, total_seen, total_poisoned)`.
    pub daily_counts: Vec<DailyCount>,
}

/// Per-(day, vertical) SERP counting for Figures 2 and 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DailyCount {
    /// Day.
    pub day: SimDate,
    /// Crawler-side vertical index.
    pub vertical: u16,
    /// Results seen in top-10 positions.
    pub top10_seen: u32,
    /// Poisoned results among them.
    pub top10_poisoned: u32,
    /// Results seen across the crawled depth.
    pub total_seen: u32,
    /// Poisoned results among them.
    pub total_poisoned: u32,
}

impl CrawlDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Unique doorway domains confirmed cloaked.
    pub fn poisoned_domains(&self) -> impl Iterator<Item = (&u32, &DomainInfo)> {
        self.doorway_info.iter().filter(|(_, i)| i.cloak.is_some())
    }

    /// Unique store domains that passed store detection.
    pub fn detected_stores(&self) -> impl Iterator<Item = (&u32, &StoreInfo)> {
        self.store_info.iter().filter(|(_, s)| s.is_store)
    }

    /// Interned ids of detected stores, sorted by domain name. `store_info`
    /// is a `HashMap` with unstable iteration order; every consumer that
    /// enrolls, caps, or sweeps the store set needs the same deterministic
    /// order, so the sort lives here once. Names are unique per id, so
    /// sorting ids by resolved name equals sorting the names themselves.
    pub fn detected_store_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.detected_stores().map(|(id, _)| *id).collect();
        ids.sort_unstable_by(|a, b| self.domains.resolve(*a).cmp(self.domains.resolve(*b)));
        ids
    }

    /// Detected store domain names, sorted — the owned-string view of
    /// [`CrawlDb::detected_store_ids`] for report boundaries.
    pub fn detected_store_domains(&self) -> Vec<String> {
        self.detected_store_ids()
            .into_iter()
            .map(|id| self.domains.resolve(id).to_owned())
            .collect()
    }

    /// All PSRs for a vertical, through the store's range index.
    pub fn psrs_of_vertical(&self, vertical: u16) -> impl Iterator<Item = PsrRecord> + '_ {
        let cols = self.psrs.columns();
        self.psrs
            .vertical_rows(vertical)
            .map(move |i| cols.record(i))
    }
}

fn put_cloak_signal(w: &mut Writer, c: &CloakSignal) {
    w.put_u8(match c {
        CloakSignal::HttpRedirect => 0,
        CloakSignal::JsRedirect => 1,
        CloakSignal::ContentDiff => 2,
        CloakSignal::Iframe => 3,
    });
}

fn get_cloak_signal(r: &mut Reader<'_>) -> Result<CloakSignal, SnapshotError> {
    Ok(match r.get_u8()? {
        0 => CloakSignal::HttpRedirect,
        1 => CloakSignal::JsRedirect,
        2 => CloakSignal::ContentDiff,
        3 => CloakSignal::Iframe,
        b => return Err(SnapshotError::Corrupt(format!("cloak signal byte {b}"))),
    })
}

fn put_domain_info(w: &mut Writer, i: &DomainInfo) {
    w.put_date(i.first_seen);
    w.put_date(i.last_seen);
    w.put_opt(i.cloak.as_ref(), put_cloak_signal);
    w.put_seq(&i.landings, |w, (day, store)| {
        w.put_date(*day);
        w.put_u32(*store);
    });
    w.put_opt(i.label_seen.as_ref(), |w, (first, last)| {
        w.put_date(*first);
        w.put_date(*last);
    });
    w.put_opt(i.last_unlabeled_before.as_ref(), |w, d| w.put_date(*d));
    w.put_u8(i.rendered_pages);
    w.put_date(i.last_verified);
}

fn get_domain_info(r: &mut Reader<'_>) -> Result<DomainInfo, SnapshotError> {
    Ok(DomainInfo {
        first_seen: r.get_date()?,
        last_seen: r.get_date()?,
        cloak: r.get_opt(get_cloak_signal)?,
        landings: r.get_seq(|r| Ok((r.get_date()?, r.get_u32()?)))?,
        label_seen: r.get_opt(|r| Ok((r.get_date()?, r.get_date()?)))?,
        last_unlabeled_before: r.get_opt(|r| r.get_date())?,
        rendered_pages: r.get_u8()?,
        last_verified: r.get_date()?,
    })
}

fn put_store_info(w: &mut Writer, s: &StoreInfo) {
    w.put_date(s.first_seen);
    w.put_date(s.last_seen);
    w.put_bool(s.is_store);
    w.put_str(&s.html);
    w.put_seq(&s.cookie_names, |w, c| w.put_str(c));
    w.put_opt(s.seizure.as_ref(), |w, (day, notice)| {
        w.put_date(*day);
        w.put_str(&notice.firm);
        w.put_str(&notice.case_id);
        w.put_str(&notice.brand);
        w.put_seq(&notice.seized_domains, |w, d| w.put_str(d));
    });
    w.put_opt(s.last_alive_before_seizure.as_ref(), |w, d| w.put_date(*d));
}

fn get_store_info(r: &mut Reader<'_>) -> Result<StoreInfo, SnapshotError> {
    Ok(StoreInfo {
        first_seen: r.get_date()?,
        last_seen: r.get_date()?,
        is_store: r.get_bool()?,
        html: r.get_str()?,
        cookie_names: r.get_seq(|r| r.get_str())?,
        seizure: r.get_opt(|r| {
            Ok((
                r.get_date()?,
                SeizureNotice {
                    firm: r.get_str()?,
                    case_id: r.get_str()?,
                    brand: r.get_str()?,
                    seized_domains: r.get_seq(|r| r.get_str())?,
                },
            ))
        })?,
        last_alive_before_seizure: r.get_opt(|r| r.get_date())?,
    })
}

impl Snapshot for CrawlDb {
    const TAG: &'static str = "crawl-db";
    const VERSION: u16 = 1;

    fn write_body(&self, w: &mut Writer) {
        w.put_nested(&self.domains);
        w.put_nested(&self.terms);
        w.put_nested(&self.psrs);
        // HashMap iteration order is unstable; the frame is canonical, so
        // both maps are written sorted by interned key.
        let mut doorways: Vec<(&u32, &DomainInfo)> = self.doorway_info.iter().collect();
        doorways.sort_by_key(|(id, _)| **id);
        w.put_len(doorways.len());
        for (id, info) in doorways {
            w.put_u32(*id);
            put_domain_info(w, info);
        }
        let mut stores: Vec<(&u32, &StoreInfo)> = self.store_info.iter().collect();
        stores.sort_by_key(|(id, _)| **id);
        w.put_len(stores.len());
        for (id, info) in stores {
            w.put_u32(*id);
            put_store_info(w, info);
        }
        w.put_seq(&self.daily_counts, |w, c| {
            w.put_date(c.day);
            w.put_u16(c.vertical);
            w.put_u32(c.top10_seen);
            w.put_u32(c.top10_poisoned);
            w.put_u32(c.total_seen);
            w.put_u32(c.total_poisoned);
        });
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let domains = r.get_nested()?;
        let terms = r.get_nested()?;
        let psrs = r.get_nested()?;
        let mut doorway_info = HashMap::new();
        for _ in 0..r.get_len()? {
            let id = r.get_u32()?;
            if doorway_info.insert(id, get_domain_info(r)?).is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate doorway key {id}"
                )));
            }
        }
        let mut store_info = HashMap::new();
        for _ in 0..r.get_len()? {
            let id = r.get_u32()?;
            if store_info.insert(id, get_store_info(r)?).is_some() {
                return Err(SnapshotError::Corrupt(format!("duplicate store key {id}")));
            }
        }
        let daily_counts = r.get_seq(|r| {
            Ok(DailyCount {
                day: r.get_date()?,
                vertical: r.get_u16()?,
                top10_seen: r.get_u32()?,
                top10_poisoned: r.get_u32()?,
                total_seen: r.get_u32()?,
                total_poisoned: r.get_u32()?,
            })
        })?;
        Ok(CrawlDb {
            domains,
            terms,
            psrs,
            doorway_info,
            store_info,
            daily_counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_roundtrips() {
        let mut i = Interner::default();
        let a = i.intern("door.com");
        let b = i.intern("store.com");
        let a2 = i.intern("door.com");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "door.com");
        assert_eq!(i.get("store.com"), Some(b));
        assert_eq!(i.get("missing.com"), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn interner_len_and_resolve_roundtrip_many() {
        let mut i = Interner::default();
        let names: Vec<String> = (0..100).map(|k| format!("host{k}.com")).collect();
        let ids: Vec<u32> = names.iter().map(|n| i.intern(n)).collect();
        assert_eq!(i.len(), names.len());
        for (n, id) in names.iter().zip(&ids) {
            assert_eq!(i.resolve(*id), n.as_str());
            assert_eq!(i.get(n), Some(*id));
            // Re-interning is id-stable and does not grow the table.
            assert_eq!(i.intern(n), *id);
        }
        assert_eq!(i.len(), names.len());
    }

    fn rec(day: u32, vertical: u16, domain: u32, rank: u8, landing: Option<u32>) -> PsrRecord {
        PsrRecord {
            day: SimDate::from_day_index(day),
            vertical,
            term: 0,
            rank,
            domain,
            is_root: rank == 1,
            labeled: domain.is_multiple_of(2),
            landing,
        }
    }

    /// Rows in crawl order: days ascending, verticals ascending per day.
    fn ordered_store() -> PsrStore {
        let mut s = PsrStore::default();
        for day in 140..145 {
            for vertical in 0..3u16 {
                for k in 0..(1 + (day + u32::from(vertical)) % 3) {
                    s.push(rec(day, vertical, day * 10 + k, (k + 1) as u8, Some(7)));
                }
            }
        }
        s
    }

    #[test]
    fn store_round_trips_records() {
        let s = ordered_store();
        assert!(!s.is_empty());
        let via_iter: Vec<PsrRecord> = s.iter().collect();
        let via_get: Vec<PsrRecord> = (0..s.len()).map(|i| s.get(i)).collect();
        assert_eq!(via_iter, via_get);
        assert_eq!(s.iter().len(), s.len());
        let cols = s.columns();
        assert_eq!(cols.len(), s.len());
        assert_eq!(cols.landing(0), Some(7));
    }

    #[test]
    fn indexed_queries_match_filtered_scans() {
        let s = ordered_store();
        for day in 139..146 {
            let d = SimDate::from_day_index(day);
            let fast: Vec<usize> = s.day_rows(d).collect();
            let slow: Vec<usize> = (0..s.len()).filter(|&i| s.get(i).day == d).collect();
            assert_eq!(fast, slow, "day {day}");
        }
        for vertical in 0..4u16 {
            let fast: Vec<usize> = s.vertical_rows(vertical).collect();
            let slow: Vec<usize> = (0..s.len())
                .filter(|&i| s.get(i).vertical == vertical)
                .collect();
            assert_eq!(fast, slow, "vertical {vertical}");
        }
    }

    #[test]
    fn out_of_order_appends_fall_back_to_scans() {
        let mut s = ordered_store();
        let expected_eq = s.clone();
        s.push(rec(140, 0, 999, 3, None)); // day earlier than the tail
        let d = SimDate::from_day_index(140);
        let got: Vec<usize> = s.day_rows(d).collect();
        let want: Vec<usize> = (0..s.len()).filter(|&i| s.get(i).day == d).collect();
        assert_eq!(got, want);
        let v0: Vec<usize> = (0..s.len()).filter(|&i| s.get(i).vertical == 0).collect();
        assert_eq!(s.vertical_rows(0).collect::<Vec<_>>(), v0);
        assert_eq!(s.day_shards(4), vec![0..s.len()]);
        // Equality is row content, not index state.
        assert_ne!(s, expected_eq);
    }

    #[test]
    fn day_shards_cover_all_rows_and_respect_day_boundaries() {
        let s = ordered_store();
        for max_shards in [1usize, 2, 3, 8, 64] {
            let shards = s.day_shards(max_shards);
            assert!(shards.len() <= max_shards);
            let mut next = 0usize;
            for r in &shards {
                assert_eq!(r.start, next, "shards must be contiguous");
                assert!(r.end > r.start);
                next = r.end;
                // A day never straddles a shard boundary.
                if r.end < s.len() {
                    assert_ne!(s.get(r.end - 1).day, s.get(r.end).day);
                }
            }
            assert_eq!(next, s.len());
        }
        assert!(PsrStore::default().day_shards(4).is_empty());
    }

    #[test]
    fn psr_store_snapshot_roundtrips_and_rebuilds_the_index() {
        let s = ordered_store();
        let restored = PsrStore::decode(&s.encode()).unwrap();
        assert_eq!(restored, s);
        assert_eq!(restored.state_fingerprint(), s.state_fingerprint());
        for day in 139..146 {
            let d = SimDate::from_day_index(day);
            assert_eq!(
                restored.day_rows(d).collect::<Vec<_>>(),
                s.day_rows(d).collect::<Vec<_>>()
            );
        }
        assert_eq!(restored.day_shards(4), s.day_shards(4));

        // An unordered store round-trips too, and the replayed pushes
        // re-derive the dropped-index state.
        let mut unordered = ordered_store();
        unordered.push(rec(140, 0, 999, 3, None));
        let restored = PsrStore::decode(&unordered.encode()).unwrap();
        assert_eq!(restored, unordered);
        assert!(!restored.ordered);
        assert_eq!(restored.day_shards(4), vec![0..unordered.len()]);
    }

    #[test]
    fn crawl_db_snapshot_roundtrips() {
        let mut db = CrawlDb::new();
        let d1 = db.domains.intern("door.com");
        let store = db.domains.intern("store.com");
        let t = db.terms.intern("cheap gucci");
        let day = SimDate::from_day_index(140);
        db.psrs.push(rec(140, 0, d1, 1, Some(store)));
        db.doorway_info.insert(
            d1,
            DomainInfo {
                first_seen: day,
                last_seen: day + 3,
                cloak: Some(CloakSignal::JsRedirect),
                landings: vec![(day, store)],
                label_seen: Some((day + 1, day + 2)),
                last_unlabeled_before: Some(day),
                rendered_pages: 2,
                last_verified: day + 3,
            },
        );
        db.store_info.insert(
            store,
            StoreInfo {
                first_seen: day,
                last_seen: day + 3,
                is_store: true,
                html: "<html>store</html>".into(),
                cookie_names: vec!["cart".into()],
                seizure: Some((
                    day + 2,
                    SeizureNotice {
                        firm: "GBC".into(),
                        case_id: "14-cv-00100".into(),
                        brand: "Gucci".into(),
                        seized_domains: vec!["store.com".into()],
                    },
                )),
                last_alive_before_seizure: Some(day + 1),
            },
        );
        db.daily_counts.push(DailyCount {
            day,
            vertical: 0,
            top10_seen: 10,
            top10_poisoned: 2,
            total_seen: 50,
            total_poisoned: 5,
        });

        let restored = CrawlDb::decode(&db.encode()).unwrap();
        assert_eq!(restored.domains.resolve(d1), "door.com");
        assert_eq!(restored.terms.resolve(t), "cheap gucci");
        assert_eq!(restored.psrs, db.psrs);
        assert_eq!(
            restored.doorway_info[&d1].label_seen,
            db.doorway_info[&d1].label_seen
        );
        assert_eq!(
            restored.store_info[&store].seizure,
            db.store_info[&store].seizure
        );
        assert_eq!(restored.daily_counts, db.daily_counts);
        // Canonical frame: re-encoding the restored database is
        // byte-identical despite the HashMap columns.
        assert_eq!(restored.encode(), db.encode());
    }

    #[test]
    fn db_filters_poisoned_and_stores() {
        let mut db = CrawlDb::new();
        let d1 = db.domains.intern("clean.com");
        let d2 = db.domains.intern("dirty.com");
        let day = SimDate::from_day_index(140);
        db.doorway_info.insert(
            d1,
            DomainInfo {
                first_seen: day,
                last_seen: day,
                cloak: None,
                landings: vec![],
                label_seen: None,
                last_unlabeled_before: None,
                rendered_pages: 0,
                last_verified: day,
            },
        );
        db.doorway_info.insert(
            d2,
            DomainInfo {
                first_seen: day,
                last_seen: day,
                cloak: Some(CloakSignal::Iframe),
                landings: vec![(day, 7)],
                label_seen: None,
                last_unlabeled_before: None,
                rendered_pages: 1,
                last_verified: day,
            },
        );
        assert_eq!(db.poisoned_domains().count(), 1);
        assert_eq!(*db.poisoned_domains().next().unwrap().0, d2);
        assert_eq!(db.detected_stores().count(), 0);
    }
}

//! The crawl database: compact, interned storage for a paper-scale crawl
//! (millions of PSR observations).
//!
//! Crawler-side identifiers are deliberately independent of the
//! simulator's ids — the apparatus only ever sees strings on the wire,
//! exactly like the original study.

use std::collections::HashMap;

use ss_types::SimDate;

use crate::dagger::CloakSignal;
use crate::stores::SeizureNotice;

/// Interned string table with dense `u32` ids.
#[derive(Debug, Default)]
pub struct Interner {
    by_str: HashMap<String, u32>,
    strings: Vec<String>,
}

impl Interner {
    /// Interns a string, returning its id.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.by_str.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_owned());
        self.by_str.insert(s.to_owned(), id);
        id
    }

    /// Looks up an id without interning.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.by_str.get(s).copied()
    }

    /// Resolves an id back to its string.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// One observed poisoned search result (a cloaked result in a monitored
/// SERP on one day).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PsrRecord {
    /// Observation day.
    pub day: SimDate,
    /// Vertical index (crawler-side, ordered as monitored).
    pub vertical: u16,
    /// Interned term text.
    pub term: u32,
    /// 1-based rank in the SERP.
    pub rank: u8,
    /// Interned doorway domain name.
    pub domain: u32,
    /// Whether the result URL was the domain root (label policy analysis).
    pub is_root: bool,
    /// Whether the result carried the "hacked" label.
    pub labeled: bool,
    /// Interned landing (store) domain at observation time, if resolved.
    pub landing: Option<u32>,
}

/// Per-doorway-domain knowledge accumulated by the crawler.
#[derive(Debug, Clone)]
pub struct DomainInfo {
    /// First day the domain appeared in any monitored SERP.
    pub first_seen: SimDate,
    /// Last day it appeared.
    pub last_seen: SimDate,
    /// Cloaking verdict (None = checked and clean).
    pub cloak: Option<CloakSignal>,
    /// Landing history: `(day, interned store domain)` transitions.
    pub landings: Vec<(SimDate, u32)>,
    /// Days on which this domain's results carried the hacked label
    /// (first and last observation).
    pub label_seen: Option<(SimDate, SimDate)>,
    /// Last day the result was seen *without* a label before the first
    /// labeled sighting (for censored delay estimation).
    pub last_unlabeled_before: Option<SimDate>,
    /// How many pages VanGogh has rendered for this domain (≤ sample cap).
    pub rendered_pages: u8,
    /// Day the landing was last re-verified.
    pub last_verified: SimDate,
}

/// Per-store-domain knowledge.
#[derive(Debug, Clone)]
pub struct StoreInfo {
    /// First day this store domain was reached through a PSR.
    pub first_seen: SimDate,
    /// Last day it was reached.
    pub last_seen: SimDate,
    /// Store-detection verdict.
    pub is_store: bool,
    /// Captured landing-page HTML (classifier input).
    pub html: String,
    /// Cookie names observed.
    pub cookie_names: Vec<String>,
    /// Seizure notice observed at this domain, with first observation day.
    pub seizure: Option<(SimDate, SeizureNotice)>,
    /// Last day the store was seen alive (non-notice) before the first
    /// notice observation.
    pub last_alive_before_seizure: Option<SimDate>,
}

/// The crawl database.
#[derive(Debug, Default)]
pub struct CrawlDb {
    /// Interned domain names (doorways and stores share the table).
    pub domains: Interner,
    /// Interned term texts.
    pub terms: Interner,
    /// All PSR observations, in crawl order.
    pub psrs: Vec<PsrRecord>,
    /// Doorway knowledge, keyed by interned domain id.
    pub doorway_info: HashMap<u32, DomainInfo>,
    /// Store knowledge, keyed by interned domain id.
    pub store_info: HashMap<u32, StoreInfo>,
    /// Total results crawled (PSR or not), for rate denominators:
    /// `(day, vertical, top10_seen, top10_poisoned, total_seen, total_poisoned)`.
    pub daily_counts: Vec<DailyCount>,
}

/// Per-(day, vertical) SERP counting for Figures 2 and 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DailyCount {
    /// Day.
    pub day: SimDate,
    /// Crawler-side vertical index.
    pub vertical: u16,
    /// Results seen in top-10 positions.
    pub top10_seen: u32,
    /// Poisoned results among them.
    pub top10_poisoned: u32,
    /// Results seen across the crawled depth.
    pub total_seen: u32,
    /// Poisoned results among them.
    pub total_poisoned: u32,
}

impl CrawlDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Unique doorway domains confirmed cloaked.
    pub fn poisoned_domains(&self) -> impl Iterator<Item = (&u32, &DomainInfo)> {
        self.doorway_info.iter().filter(|(_, i)| i.cloak.is_some())
    }

    /// Unique store domains that passed store detection.
    pub fn detected_stores(&self) -> impl Iterator<Item = (&u32, &StoreInfo)> {
        self.store_info.iter().filter(|(_, s)| s.is_store)
    }

    /// Detected store domain names, sorted. `store_info` is a `HashMap`
    /// with unstable iteration order; every consumer that enrolls, caps,
    /// or sweeps the store set needs the same deterministic order, so the
    /// sort lives here once.
    pub fn detected_store_domains(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .detected_stores()
            .map(|(id, _)| self.domains.resolve(*id).to_owned())
            .collect();
        names.sort();
        names
    }

    /// All PSRs for a vertical.
    pub fn psrs_of_vertical(&self, vertical: u16) -> impl Iterator<Item = &PsrRecord> {
        self.psrs.iter().filter(move |p| p.vertical == vertical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_roundtrips() {
        let mut i = Interner::default();
        let a = i.intern("door.com");
        let b = i.intern("store.com");
        let a2 = i.intern("door.com");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "door.com");
        assert_eq!(i.get("store.com"), Some(b));
        assert_eq!(i.get("missing.com"), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn db_filters_poisoned_and_stores() {
        let mut db = CrawlDb::new();
        let d1 = db.domains.intern("clean.com");
        let d2 = db.domains.intern("dirty.com");
        let day = SimDate::from_day_index(140);
        db.doorway_info.insert(
            d1,
            DomainInfo {
                first_seen: day,
                last_seen: day,
                cloak: None,
                landings: vec![],
                label_seen: None,
                last_unlabeled_before: None,
                rendered_pages: 0,
                last_verified: day,
            },
        );
        db.doorway_info.insert(
            d2,
            DomainInfo {
                first_seen: day,
                last_seen: day,
                cloak: Some(CloakSignal::Iframe),
                landings: vec![(day, 7)],
                label_seen: None,
                last_unlabeled_before: None,
                rendered_pages: 1,
                last_verified: day,
            },
        );
        assert_eq!(db.poisoned_domains().count(), 1);
        assert_eq!(*db.poisoned_domains().next().unwrap().0, d2);
        assert_eq!(db.detected_stores().count(), 0);
    }
}

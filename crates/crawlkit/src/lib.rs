//! # ss-crawl
//!
//! The paper's measurement apparatus, rebuilt: everything in §4.1 that
//! turns daily search results into a PSR dataset.
//!
//! * [`terms`] — the two term-selection methodologies of §4.1.1
//!   (KEY-doorway keyword extraction via `site:` queries, and recursive
//!   Google-Suggest expansion);
//! * [`dagger`] — the Dagger cloaking detector: fetch each page as
//!   Googlebot and as a search-referred browser, follow redirects, diff the
//!   results semantically, and render to catch JS redirects;
//! * [`vangogh`] — the VanGogh renderer: full JS execution, flagging
//!   iframes that visually occupy the page (width/height 100% or >800px),
//!   sampling at most three pages per doorway domain;
//! * [`stores`] — storefront detection via cookie fingerprints and
//!   cart/checkout substrings (§4.1.3), plus seizure-notice parsing with
//!   court-document extraction (§5.3);
//! * [`db`] — the compact crawl database (interned strings; a paper-scale
//!   crawl holds millions of PSR records);
//! * [`crawler`] — the daily crawl orchestrator with churn-based workload
//!   trimming, exactly as §4.1.2 describes.
//!
//! **Honesty rule:** this crate observes the world only through
//! `ss_web::Web::fetch` and the public search interface. It never reads
//! ground-truth fields of the simulation; campaign attribution comes from
//! `ss-ml`, not from the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crawler;
pub mod dagger;
pub mod db;
pub mod stores;
pub mod terms;
pub mod vangogh;

pub use crawler::{Crawler, CrawlerConfig};
pub use db::CrawlDb;
